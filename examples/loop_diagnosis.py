#!/usr/bin/env python
"""Loop diagnosis: "what would it take to parallelize this loop?"

For each loop of a program, walk the paper's relaxation ladder and report
the first configuration at which the loop goes parallel — i.e. which
architectural/compiler feature (reduction hardware, value prediction,
per-LCD synchronization, call support) is the binding constraint. This is
the cost/benefit view of §IV's "lessons learnt".

Run:  python examples/loop_diagnosis.py
"""

from repro.core import LPConfig, Loopapalooza

# The ladder: each rung names the capability it adds.
LADDER = [
    ("doall:reduc0-dep0-fn0", "plain speculative DOALL"),
    ("doall:reduc1-dep0-fn0", "+ reduction hardware (tree/chain units)"),
    ("pdoall:reduc1-dep0-fn0", "+ transactional restart (Partial-DOALL)"),
    ("pdoall:reduc1-dep2-fn0", "+ run-time value prediction"),
    ("pdoall:reduc1-dep2-fn2", "+ parallel calls (cactus stacks, fn2)"),
    ("helix:reduc1-dep1-fn2", "+ per-LCD synchronization (HELIX ring)"),
    ("pdoall:reduc0-dep3-fn3", "+ perfect prediction, all calls (oracle)"),
]

PROGRAM = """
int STREAM[4000];
int HIST[128];
int OUT[4000];
float ENERGY = 0.0;
int smooth(int a, int b) { return (a * 3 + b) >> 2; }
int main() {
  int i;
  int pos = 0;
  float energy = 0.0;
  // loop 1: serial decode chain
  STREAM[0] = 90001;
  for (i = 1; i < 4000; i = i + 1) {
    STREAM[i] = (STREAM[i - 1] * 69069 + 12345 + i) & 2147483647;
  }
  // loop 2: cursor walk with early resolution + histogram
  while (pos < 3900) {
    int at = pos;
    pos = pos + 1 + ((STREAM[at] >> 16) & 3);
    HIST[(STREAM[at] >> 8) & 127] = HIST[(STREAM[at] >> 8) & 127] + 1;
  }
  // loop 3: data-parallel smoothing through a helper
  for (i = 1; i < 4000; i = i + 1) {
    OUT[i] = smooth(STREAM[i], STREAM[i - 1]);
  }
  // loop 4: energy reduction
  for (i = 0; i < 4000; i = i + 1) {
    energy = energy + (float)(OUT[i] & 255);
  }
  ENERGY = energy;
  return pos;
}
"""


def main():
    lp = Loopapalooza(PROGRAM, name="diagnosis")
    lp.profile()
    print("Relaxation ladder (first rung at which each loop parallelizes):\n")
    loop_ids = lp.loop_ids()
    verdicts = {loop_id: None for loop_id in loop_ids}
    for config_name, label in LADDER:
        result = lp.evaluate(LPConfig.parse(config_name))
        for loop_id in loop_ids:
            summary = result.loops.get(loop_id)
            if summary is None or verdicts[loop_id] is not None:
                continue
            if summary.is_parallel and summary.speedup > 1.05:
                verdicts[loop_id] = (label, summary.speedup)

    for loop_id in loop_ids:
        verdict = verdicts[loop_id]
        if verdict is None:
            print(f"  {loop_id:24s} never parallel (frequent "
                  "late-producer chain: HELIX marks it serial)")
        else:
            label, speedup = verdict
            print(f"  {loop_id:24s} unlocks at {label!r} ({speedup:.1f}x)")

    print("\nWhole-program speedups along the ladder:")
    for config_name, label in LADDER:
        result = lp.evaluate(config_name)
        print(f"  {result.speedup:>7.2f}x  {label}")


if __name__ == "__main__":
    main()
