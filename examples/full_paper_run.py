#!/usr/bin/env python
"""Full paper run: regenerate every table and figure and (optionally)
rewrite EXPERIMENTS.md with the measured numbers.

Run:  python examples/full_paper_run.py [options]

Options:
  --write-experiments-md   rewrite EXPERIMENTS_MEASURED.md
  --jobs N                 fan the sweep out over N worker processes
  --cache-dir DIR          profile-store location (default: shared user
                           cache; set REPRO_NO_PROFILE_CACHE=1 to disable)
  --resume RUN_ID          resume an interrupted run from its ledger;
                           completed (benchmark, config) cells are restored
                           and skipped (see `python -m repro runs`)
  --task-timeout SECONDS   per-task result timeout in the pool sweep
  --retries N              retries (exponential backoff) before a failing
                           task is quarantined to the serial path
  --runs-dir DIR           run-ledger location (default:
                           ~/.cache/repro/runs or REPRO_RUNS_DIR)
  --no-jit                 run on the closure interpreter instead of the
                           JIT backend (REPRO_NO_JIT=1); output is
                           byte-identical, only slower
  --no-vec                 disable the vectorized kernel tier and run the
                           scalar JIT (REPRO_NO_VEC=1); output is
                           byte-identical
  --parexec                add the parallel-tier section: the loop-kernel
                           predicted-vs-achieved speedup join plus the
                           worker-count determinism gate (adds a few
                           minutes of wall-clock; counters land in the
                           run manifest)

A cold run profiles the 48 synthetic benchmarks and sweeps the
14-configuration grid (~30 s). Warm runs reuse the persistent profile
store and re-profile nothing. Every run checkpoints each completed task
to a JSONL run ledger, so a killed run continues with --resume RUN_ID
and produces byte-identical output.
"""

import argparse
import os
import pathlib
import sys
import time

from repro.bench import SuiteRunner
from repro.reporting import (
    crosscheck_suites,
    figure2_nonnumeric,
    figure3_numeric,
    figure4_per_benchmark,
    figure5_coverage,
    format_census,
    format_coverage,
    format_crosscheck,
    format_figure4,
    format_speedup_figure,
    format_transform_figure,
    table1_census,
    transform_suites,
)
from repro.runtime.telemetry import RunTelemetry, format_run_summary

PAPER_HEADLINES = """
Paper headline numbers for comparison (absolute values are not expected to
match — the substrate here is a synthetic-benchmark simulator; the shapes
are; see DESIGN.md and EXPERIMENTS.md):

  Fig. 2 best HELIX (reduc1-dep1-fn2):  4.6x SpecINT2000, 7.2x SpecINT2006
  Fig. 3 best HELIX:                    21.6x-50.6x numeric suites
  Fig. 4: PDOALL wins art, soplex, sphinx, mcf; HELIX wins the rest
  Fig. 5: coverage explains the HELIX gains on non-numeric codes
""".rstrip()


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--write-experiments-md", action="store_true")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the sweep")
    parser.add_argument("--cache-dir", default=None,
                        help="profile-store directory")
    parser.add_argument("--resume", default=None, metavar="RUN_ID",
                        help="resume an interrupted run from its ledger")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS", help="per-task result timeout")
    parser.add_argument("--retries", type=int, default=2,
                        help="retries before quarantining a task")
    parser.add_argument("--runs-dir", default=None,
                        help="run-ledger directory")
    parser.add_argument("--no-jit", action="store_true",
                        help="use the closure interpreter backend")
    parser.add_argument("--no-vec", action="store_true",
                        help="disable the vectorized kernel tier")
    parser.add_argument("--parexec", action="store_true",
                        help="add the parallel-tier predicted-vs-achieved "
                             "section and determinism gate")
    args = parser.parse_args(argv)
    if args.no_jit:
        # Environment so pool workers inherit the backend choice.
        os.environ["REPRO_NO_JIT"] = "1"
    if args.no_vec:
        os.environ["REPRO_NO_VEC"] = "1"

    start = time.time()
    runner = SuiteRunner(cache_dir=args.cache_dir)
    jobs = args.jobs
    if args.resume:
        telemetry = RunTelemetry.resume(args.resume, root=args.runs_dir)
        print(f"resuming run {telemetry.run_id} "
              f"(ledger covers {telemetry.ledger_tasks} tasks)")
    else:
        telemetry = RunTelemetry.create(root=args.runs_dir)
        print(f"run id: {telemetry.run_id} "
              f"(resume an interrupted run with --resume {telemetry.run_id})")
    sweep = {
        "telemetry": telemetry,
        "task_timeout": args.task_timeout,
        "retries": args.retries,
    }

    sections = []
    try:
        print("evaluating the 14-configuration sweep (Fig. 2)...", flush=True)
        sections.append(("Figure 2", format_speedup_figure(
            figure2_nonnumeric(runner, jobs=jobs, sweep=sweep),
            "Fig. 2 (reproduced) — non-numeric GEOMEAN speedups")))
        print("Fig. 3...", flush=True)
        sections.append(("Figure 3", format_speedup_figure(
            figure3_numeric(runner, jobs=jobs, sweep=sweep),
            "Fig. 3 (reproduced) — numeric GEOMEAN speedups")))
        print("Fig. 4...", flush=True)
        sections.append(("Figure 4", format_figure4(
            figure4_per_benchmark(runner, jobs=jobs, sweep=sweep))))
        print("Fig. 5...", flush=True)
        sections.append(("Figure 5", format_coverage(
            figure5_coverage(runner, jobs=jobs, sweep=sweep))))
        print("Table I census...", flush=True)
        sections.insert(0, ("Table I", format_census(
            table1_census(runner, jobs=jobs, sweep=sweep))))
        print("static x dynamic crosscheck...", flush=True)
        sections.insert(1, ("Static crosscheck", format_crosscheck(
            crosscheck_suites(runner))))
        print("transform unlock figure...", flush=True)
        sections.insert(2, ("Transform unlock", format_transform_figure(
            transform_suites())))
        print("parallelizability advisor...", flush=True)
        from repro.reporting.advisor import advise_suites, format_advice

        sections.insert(3, ("Parallelizability advisor", format_advice(
            advise_suites(runner, crosscheck=True))))
        if args.parexec:
            from repro.reporting.speedup_report import (
                format_kernel_report,
                format_soundness_report,
                kernel_speedup_report,
                parexec_soundness,
            )

            print("parallel tier: predicted vs achieved...", flush=True)
            kernel_report = kernel_speedup_report(
                workers_list=(1, 2), repeats=2
            )
            print("parallel tier: determinism gate...", flush=True)
            soundness = parexec_soundness(workers_list=(1, 2))
            sections.append((
                "Parallel tier",
                format_kernel_report(kernel_report) + "\n\n"
                + format_soundness_report(soundness),
            ))
            telemetry.record_par_stats({
                "achieved_vs_jit_geomeans": {
                    str(n): v
                    for n, v in kernel_report["achieved_geomeans"].items()
                },
                "achieved_vs_vec_geomeans": {
                    str(n): v for n, v in
                    kernel_report["achieved_vs_vec_geomeans"].items()
                },
                "soundness": {
                    key: soundness[key]
                    for key in ("programs", "runs_checked", "doall_loops",
                                "pool_commits", "tls_commits",
                                "tls_rollbacks")
                },
                "soundness_mismatches": len(soundness["mismatches"]),
            })
    except BaseException:
        # Mark the run interrupted; its ledger already holds every
        # completed task, so --resume RUN_ID picks up from here.
        telemetry.finish(status="interrupted")
        raise
    telemetry.record_cache_stats(_cache_stats(runner))
    telemetry.record_vec_decisions(_vec_decisions())
    telemetry.finish()

    for title, text in sections:
        print()
        print(f"##### {title} " + "#" * max(0, 60 - len(title)))
        print(text)
    print()
    print(PAPER_HEADLINES)
    print(f"\ntotal wall time: {time.time() - start:.1f}s")
    print(f"profiles measured this run: {runner.profiles_measured} "
          f"(cache hits skip re-profiling)")
    if runner.store is not None:
        print(f"profile store: {runner.store.root} "
              f"[{runner.store.stats.describe()}]")
    print()
    print("run telemetry " + "-" * 46)
    print(format_run_summary(telemetry.summary()))
    print(f"ledger: {telemetry.ledger_path}")

    if args.write_experiments_md:
        _write_experiments_md(sections)
        print("EXPERIMENTS.md updated.")


def _cache_stats(runner):
    """End-of-run cache snapshot for the manifest. Entry counts and sizes
    are read from disk (global truth); hit/miss counters only cover this
    process — pool workers keep their own tallies."""
    from repro.runtime.profile_store import default_code_cache

    stats = {}
    if runner.store is not None:
        stats["profile_store"] = runner.store.info()
    code_cache = default_code_cache()
    if code_cache is not None:
        stats["code_cache"] = code_cache.info()
    return stats


def _vec_decisions():
    """Vectorizer decision summary over the run's workload (the bundled
    suites): how many innermost loops the vector tier takes and why the
    rest bail out. Planner-only — no execution — so it is cheap even on
    a warm run where every profile came from the cache."""
    from repro.bench import all_programs
    from repro.frontend.codegen import compile_source
    from repro.interp.veccodegen import (
        summarize_vec_decisions,
        vector_decisions,
    )

    decisions = []
    for program in all_programs():
        decisions.extend(vector_decisions(compile_source(program.source)))
    return summarize_vec_decisions(decisions)


def _write_experiments_md(sections):
    root = pathlib.Path(__file__).resolve().parent.parent
    body = [
        "# EXPERIMENTS — measured results",
        "",
        "Regenerated by `python examples/full_paper_run.py "
        "--write-experiments-md`.",
        "See DESIGN.md for the substitution rationale; absolute numbers are",
        "not expected to match the paper (synthetic suites), the shapes are.",
        "",
    ]
    for title, text in sections:
        body.append(f"## {title}")
        body.append("")
        body.append("```")
        body.append(text)
        body.append("```")
        body.append("")
    (root / "EXPERIMENTS_MEASURED.md").write_text("\n".join(body))


if __name__ == "__main__":
    main(sys.argv[1:])
