#!/usr/bin/env python
"""Dependence census: the Table-I view of a program and of the suites.

Shows how Loopapalooza's compile-time component classifies every loop-header
phi (computable IV/MIV, reduction accumulator, non-computable LCD) and every
call site (pure / thread-safe / instrumented / unsafe), then prints the
aggregated census across the five synthetic suites.

Run:  python examples/dependence_census.py
"""

from repro.bench import ALL_SUITES, default_runner
from repro.core import (
    PHI_COMPUTABLE,
    PHI_NONCOMPUTABLE,
    PHI_REDUCTION,
    Loopapalooza,
)
from repro.reporting import format_census, table1_census

DEMO = """
float OUT = 0.0;
int A[256];
int main() {
  int i;
  int tri = 0;             // mutual induction variable (computable)
  float acc = 0.0;         // reduction accumulator
  int state = 7;           // non-computable, unpredictable LCD
  float drift = 0.5;       // non-computable but stride-predictable LCD
  for (i = 0; i < 256; i = i + 1) {
    tri = tri + i;
    state = (state * 1103515245 + 12345) & 2147483647;
    drift = drift + 0.125;
    A[i] = (state >> 9) & 255;
    acc = acc + (float)A[i] * drift + (float)tri * 0.001;
  }
  OUT = acc;
  return state & 65535;
}
"""

CLASS_LABELS = {
    PHI_COMPUTABLE: "computable (IV/MIV)  -- never a constraint",
    PHI_REDUCTION: "reduction accumulator -- free under reduc1",
    PHI_NONCOMPUTABLE: "non-computable LCD    -- dep0/1/2/3 territory",
}


def main():
    print("=== per-loop classification of the demo kernel ===\n")
    lp = Loopapalooza(DEMO, name="census_demo")
    for loop_id in lp.loop_ids():
        static = lp.describe_loop(loop_id)
        print(f"loop {loop_id} (depth {static.depth})")
        for key, cls in sorted(static.phi_classes.items()):
            name = key.rsplit(":", 1)[1]
            print(f"  phi %{name:8s} {CLASS_LABELS[cls]}")
        if static.call_classes:
            print(f"  calls: {', '.join(sorted(static.call_classes))}")
        print()

    print("=== Table I (measured): census across the synthetic suites ===\n")
    runner = default_runner()
    print(format_census(table1_census(runner)))
    print()
    from repro.reporting import format_dynamic_census, suite_dynamic_census

    dynamic_rows = {
        suite: suite_dynamic_census(runner, suite) for suite in ALL_SUITES
    }
    print(format_dynamic_census(dynamic_rows))
    print()
    print("Reading it the paper's way: the non-numeric suites (specint*) "
          "carry proportionally more non-computable register LCDs, while "
          "the numeric suites are dominated by computable IVs and "
          "reductions — which is exactly why only dep1-fn2 HELIX unlocks "
          "the former.")


if __name__ == "__main__":
    main()
