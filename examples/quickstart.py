#!/usr/bin/env python
"""Quickstart: compile a MiniC kernel, profile it once, and ask Loopapalooza
what speedup each execution model / configuration could extract in the limit.

Run:  python examples/quickstart.py
"""

from repro.core import Loopapalooza

# A small image-processing kernel with the three classic ingredients:
# a data-parallel map, a reduction, and a serial input phase.
SOURCE = """
int W = 1024;
int RAW[1024];
int OUT[1024];
int CHK = 0;

int clamp8(int v) {
  if (v < 0) { return 0; }
  if (v > 255) { return 255; }
  return v;
}

int main() {
  int i;
  int sum = 0;
  // Serial input phase: each pixel depends on the previous one (think:
  // decoding a compressed stream).
  RAW[0] = 12345;
  for (i = 1; i < W; i = i + 1) {
    RAW[i] = (RAW[i - 1] * 1103515245 + 12345 + i) & 2147483647;
  }
  // Data-parallel transform through a helper call.
  for (i = 0; i < W; i = i + 1) {
    OUT[i] = clamp8((RAW[i] >> 12) & 511);
  }
  // Reduction.
  for (i = 0; i < W; i = i + 1) { sum = sum + OUT[i]; }
  CHK = sum;
  return sum & 65535;
}
"""


def main():
    lp = Loopapalooza(SOURCE, name="quickstart")
    profile = lp.profile()
    print(f"program ran: result={profile.result}, "
          f"dynamic IR instructions={profile.total_cost}")
    print(f"loops found: {', '.join(lp.loop_ids())}")
    print()
    print(f"{'configuration':32s}{'speedup':>10s}{'coverage':>10s}")
    for name in (
        "doall:reduc0-dep0-fn0",    # strictest: calls + reductions block all
        "doall:reduc1-dep0-fn0",    # reductions decoupled
        "pdoall:reduc1-dep2-fn0",   # + value prediction
        "pdoall:reduc1-dep2-fn2",   # + calls allowed: the transform unlocks
        "helix:reduc1-dep1-fn2",    # + synchronized chains: the input phase
                                    #   pipelines too
    ):
        result = lp.evaluate(name)
        print(f"{name:32s}{result.speedup:>9.2f}x{result.coverage * 100:>9.1f}%")

    print()
    print("Per-loop view at the best configuration:")
    best = lp.evaluate("helix:reduc1-dep1-fn2")
    for loop_id, summary in sorted(best.loops.items()):
        state = "parallel" if summary.is_parallel else (
            "serial (" + ", ".join(summary.reasons) + ")"
        )
        print(f"  {loop_id:24s} {summary.speedup:>8.2f}x  {state}")


if __name__ == "__main__":
    main()
