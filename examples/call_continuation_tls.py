#!/usr/bin/env python
"""Function-call/continuation TLS (the paper's §I extension).

The paper's experiments target loop-level TLS, but its dependency taxonomy
"applies also to function-call/continuation level TLS": spawn the code
*after* a call speculatively, let it overlap the callee, and squash it on
the first true dependence. This example contrasts three call shapes and
then ranks the biggest call-TLS opportunities across the synthetic suites.

Run:  python examples/call_continuation_tls.py
"""

from repro.bench import default_runner, suite_programs
from repro.core import Loopapalooza, estimate_call_tls, format_call_tls

DEMO = """
int LOG[512];
int TAB[512];
int OUT[256];
int CHK = 0;

// Shape 1: the continuation consumes the result immediately -> no overlap.
int score(int x) {
  int k; int acc = x;
  for (k = 0; k < 25; k = k + 1) { acc = (acc * 13 + k) & 8191; }
  return acc;
}

// Shape 2: a fire-and-forget logger -> the continuation is independent.
void log_event(int i, int v) {
  LOG[(i * 7) & 511] = v;
}

// Shape 3: a producer whose output is consumed only late in the
// continuation -> partial overlap.
void build_row(int i) {
  int k;
  for (k = 0; k < 20; k = k + 1) { TAB[(i * 16 + k) & 511] = i + k; }
}

int main() {
  int i;
  int sum = 0;
  for (i = 0; i < 60; i = i + 1) {
    sum = sum + score(i);                 // shape 1
  }
  for (i = 0; i < 60; i = i + 1) {
    log_event(i, sum & 255);              // shape 2
    int k; int w = 0;
    for (k = 0; k < 30; k = k + 1) { w = w + ((i * k) & 31); }
    OUT[i & 255] = w;
    sum = sum + (w & 3);
  }
  for (i = 0; i < 60; i = i + 1) {
    build_row(i);                          // shape 3
    int k; int w = 0;
    for (k = 0; k < 25; k = k + 1) { w = w + ((i + k) & 15); }
    sum = sum + w + TAB[(i * 16) & 511];   // late RAW on the row
  }
  CHK = sum;
  return sum & 32767;
}
"""


def main():
    print("=== three call shapes ===\n")
    lp = Loopapalooza(DEMO, name="call_shapes")
    print(format_call_tls(lp.call_tls_report()))
    print()
    print("score():     result consumed immediately -> ~0% hidden")
    print("log_event(): independent continuation    -> fully hidden")
    print("build_row(): RAW lands late enough that the whole callee hides;")
    print("             move the TAB read before the k-loop and it drops to 0")

    print("\n=== biggest call-TLS opportunities across the suites ===\n")
    runner = default_runner()
    rows = []
    for suite in ("specint2000", "specint2006", "eembc"):
        for program in suite_programs(suite):
            report = estimate_call_tls(runner.instance(program).profile())
            if report.sites:
                rows.append((program.full_name, report.speedup,
                             report.call_coverage))
    rows.sort(key=lambda row: row[1], reverse=True)
    print(f"{'benchmark':36s}{'call-TLS speedup':>18s}{'in-call time':>14s}")
    for name, speedup, coverage in rows[:10]:
        print(f"{name:36s}{speedup:>17.2f}x{coverage * 100:>13.1f}%")
    print("\nCall-continuation TLS alone is modest next to loop-level TLS "
          "(compare Fig. 2/3) — consistent with the paper's choice to focus "
          "on loops, and with Warg & Stenström's module-level limits.")


if __name__ == "__main__":
    main()
