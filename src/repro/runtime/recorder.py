"""ProfilingRuntime — the run-time component of Loopapalooza (§III-B).

Receives the instrumentation callbacks from the interpreter and builds the
:class:`~repro.runtime.profile.ProgramProfile`:

* maintains the dynamic loop-invocation stack (properly nested; early
  function returns force-exit the invocations of that frame);
* tracks cross-iteration memory RAW dependencies per active invocation with
  cactus-stack privatization (accesses to storage born inside the current
  iteration of an invocation are iteration-private for it);
* records register-LCD latch values and producer/consumer offsets for the
  tracked (non-computable) header phis.
"""

from __future__ import annotations

from ..errors import FrameworkError
from .call_records import CallRecord, CallSiteSummary
from .profile import LoopInvocation, ProgramProfile


class _ActiveLoop:
    """Stack entry: the invocation plus its live tracking state."""

    __slots__ = ("invocation", "last_write", "last_def_ts", "first_use_off")

    def __init__(self, invocation):
        self.invocation = invocation
        self.last_write = {}     # addr -> (iter_idx, ts)
        self.last_def_ts = {}    # phi_key -> ts (most recent producer def)
        self.first_use_off = {}  # phi_key -> offset within current iteration


class ProfilingRuntime:
    """Implements the interpreter's callback interface and owns the profile."""

    def __init__(self, name="program"):
        self.profile = ProgramProfile(name)
        self.stack = []             # list[_ActiveLoop]
        self.frame_markers = []     # loop-stack depth at each function entry
        self.by_loop = {}           # loop_id -> list[_ActiveLoop] (recursion-safe)
        self.machine = None
        # Function-call/continuation TLS tracking (paper §I extension).
        self.call_summaries = {}    # site_id -> CallSiteSummary
        self.active_calls = []      # CallRecord stack (user calls in flight)
        self.pending_calls = {}     # frame depth -> last completed CallRecord

    def attach(self, machine):
        """Give the runtime access to the interpreter (cost counter, memory)."""
        self.machine = machine

    # -- function events ------------------------------------------------------

    def func_enter(self, function):
        self.frame_markers.append(len(self.stack))

    def func_exit(self, function):
        ts = self.machine.cost if self.machine is not None else 0
        # The exiting frame's continuation window closes here.
        self._finalize_pending(len(self.frame_markers), ts)
        depth = self.frame_markers.pop()
        while len(self.stack) > depth:
            self._pop_invocation(ts)

    # -- call-continuation events ------------------------------------------------

    def call_start(self, site_id, ts):
        # A new call at this depth ends the previous call's continuation.
        self._finalize_pending(len(self.frame_markers), ts)
        self.active_calls.append(CallRecord(site_id, ts))

    def call_end(self, site_id, ts):
        record = self.active_calls.pop()
        record.end_ts = ts
        self.pending_calls[len(self.frame_markers)] = record

    def call_result_use(self, site_id, ts):
        record = self.pending_calls.get(len(self.frame_markers))
        if record is not None and record.site_id == site_id:
            record.note_dependence(ts)

    def _finalize_pending(self, depth, horizon_ts):
        record = self.pending_calls.pop(depth, None)
        if record is None:
            return
        saving = record.finalize(horizon_ts)
        summary = self.call_summaries.get(record.site_id)
        if summary is None:
            summary = self.call_summaries[record.site_id] = CallSiteSummary(
                record.site_id
            )
        summary.absorb(record, saving)

    # -- loop events -------------------------------------------------------------

    def loop_enter(self, loop_id, ts):
        if self.stack:
            parent_entry = self.stack[-1]
            parent = parent_entry.invocation
            parent_iter = parent.current_iter
        else:
            parent = None
            parent_iter = -1
        invocation = LoopInvocation(loop_id, parent, parent_iter, ts)
        if parent is not None:
            parent.children.append(invocation)
        else:
            self.profile.top_level.append(invocation)
        entry = _ActiveLoop(invocation)
        self.stack.append(entry)
        self.by_loop.setdefault(loop_id, []).append(entry)

    def loop_iter(self, loop_id, ts, lcd_values):
        entry = self._top_for(loop_id)
        self._finalize_iteration(entry, lcd_values)
        entry.invocation.iter_starts.append(ts)
        if entry.first_use_off:
            entry.first_use_off = {}

    def loop_exit(self, loop_id, ts):
        entry = self._top_for(loop_id)
        if self.stack[-1] is not entry:
            # Mis-nesting should be impossible with edge-derived events.
            raise FrameworkError(
                f"loop_exit for {loop_id} while {self.stack[-1].invocation.loop_id} "
                f"is innermost"
            )
        self._pop_invocation(ts)

    def _pop_invocation(self, ts):
        entry = self.stack.pop()
        invocation = entry.invocation
        # The last iteration produced no loop_iter event; finalize it without
        # latch values (they never fed another iteration).
        self._finalize_iteration(entry, ())
        invocation.end_ts = ts
        invocation.exited = True
        stack_for_loop = self.by_loop.get(invocation.loop_id)
        if stack_for_loop:
            stack_for_loop.pop()

    def vec_loop(self, loop_id, enter_ts, trip, step_cost, exit_ts,
                 accesses=()):
        """Closed-form delivery of one whole loop invocation, emitted by
        the vector tier after a kernel commits: equivalent to one
        ``loop_enter``, ``trip`` ``loop_iter`` events at ``enter_ts +
        k * step_cost``, the loop's memory events in iteration-major
        program order, and the ``loop_exit`` — byte-identical to what the
        scalar tiers produce for the same (hook-free, DOALL) loop.

        ``accesses`` holds ``(is_write, offset, base, stride)`` per
        static access: iteration ``k`` touches ``base + stride * k`` at
        ``enter_ts + k * step_cost + offset``.

        The kernel's own invocation can never record a conflict (the
        static DOALL proof excludes cross-iteration overlaps, and a
        same-iteration pair never trips the ``last[0] < cur`` test), so
        memory events only matter to *enclosing* trackers: when this
        invocation is outermost and no call records are live, they are
        unobservable and skipped wholesale — that short-circuit is where
        the closed form's speed comes from."""
        self.loop_enter(loop_id, enter_ts)
        entry = self.stack[-1]
        entry.invocation.iter_starts.extend(
            enter_ts + k * step_cost for k in range(1, trip + 1)
        )
        if accesses and (len(self.stack) > 1 or self.pending_calls
                         or self.active_calls):
            self.mem_batch(
                (is_write, base + stride * k, enter_ts + k * step_cost + off)
                for k in range(trip)
                for is_write, off, base, stride in accesses
            )
        self.loop_exit(loop_id, exit_ts)

    def _top_for(self, loop_id):
        entries = self.by_loop.get(loop_id)
        if not entries:
            raise FrameworkError(f"event for inactive loop {loop_id}")
        return entries[-1]

    def _finalize_iteration(self, entry, lcd_values):
        """Close out the iteration that just ended: ship latch values and
        per-iteration def/use offsets into the invocation record."""
        if not lcd_values and not entry.first_use_off:
            return  # nothing observed this iteration (the common case)
        invocation = entry.invocation
        iter_start = invocation.iter_starts[-1]
        for phi_key, value in lcd_values:
            invocation.lcd_values.setdefault(phi_key, []).append(value)
            def_ts = entry.last_def_ts.get(phi_key)
            def_off = max(0, def_ts - iter_start) if def_ts is not None else 0
            invocation.lcd_def_offsets.setdefault(phi_key, []).append(def_off)
        # Use offsets recorded for any tracked phi that was consumed this
        # iteration (keyed independently of production).
        for phi_key, use_off in entry.first_use_off.items():
            uses = invocation.lcd_use_offsets.setdefault(phi_key, [])
            # Pad skipped iterations (no use observed) with None.
            while len(uses) < invocation.num_iterations - 1:
                uses.append(None)
            uses.append(use_off)

    # -- register LCD events ---------------------------------------------------

    def lcd_def(self, loop_id, phi_key, ts):
        entries = self.by_loop.get(loop_id)
        if entries:
            entries[-1].last_def_ts[phi_key] = ts

    def lcd_use(self, loop_id, phi_key, ts):
        entries = self.by_loop.get(loop_id)
        if not entries:
            return
        entry = entries[-1]
        if phi_key not in entry.first_use_off:
            offset = ts - entry.invocation.iter_starts[-1]
            entry.first_use_off[phi_key] = max(0, offset)

    # -- memory events ------------------------------------------------------------

    def mem_read(self, address, ts):
        pending = self.pending_calls
        if pending:
            record = pending.get(len(self.frame_markers))
            if (
                record is not None
                and record.first_dep_ts is None
                and address in record.write_set
            ):
                record.note_dependence(ts)
        stack = self.stack
        if not stack:
            return
        marks = self.machine.marks_for(address)
        for entry in stack:
            invocation = entry.invocation
            if marks is not None and marks.get(id(invocation)) == invocation.current_iter:
                continue  # iteration-private storage (cactus-stack rule)
            last = entry.last_write.get(address)
            if last is not None and last[0] < invocation.current_iter:
                invocation.record_conflict(
                    last[0], last[1], invocation.current_iter, ts
                )

    def mem_write(self, address, ts):
        for record in self.active_calls:
            record.write_set.add(address)
        stack = self.stack
        if not stack:
            return
        marks = self.machine.marks_for(address)
        for entry in stack:
            invocation = entry.invocation
            if marks is not None and marks.get(id(invocation)) == invocation.current_iter:
                continue
            entry.last_write[address] = (invocation.current_iter, ts)

    def mem_batch(self, events):
        """Deliver a block's batched ``(is_write, address, ts)`` events in
        program order; semantics match per-event mem_read/mem_write exactly.

        The interpreter only batches call-free blocks, so the loop stack,
        frame depth, and call records are constant across the batch and can
        be hoisted out of the loop.
        """
        stack = self.stack
        pending = self.pending_calls
        active_calls = self.active_calls
        if not stack and not pending and not active_calls:
            return
        if stack:
            # One Python frame per event instead of two: the interpreter's
            # marks_for only delegates to the memory space.
            marks_for = self.machine.space.marks_for
            # Per-entry tracking state is loop-invariant across the batch
            # (batched blocks carry no loop or call events), so hoist the
            # dicts, ids, and current iteration indices out of the event loop.
            tracks = [
                (
                    entry.last_write,
                    entry.invocation,
                    id(entry.invocation),
                    len(entry.invocation.iter_starts) - 1,
                )
                for entry in stack
            ]
        else:
            marks_for = None
            tracks = ()
        # The pending-call record for this depth is equally batch-invariant.
        record = pending.get(len(self.frame_markers)) if pending else None
        for is_write, address, ts in events:
            if is_write:
                for call in active_calls:
                    call.write_set.add(address)
                if tracks:
                    marks = marks_for(address)
                    if marks is None:
                        for last_write, _invocation, _inv_id, cur in tracks:
                            last_write[address] = (cur, ts)
                    else:
                        for last_write, _invocation, inv_id, cur in tracks:
                            if marks.get(inv_id) == cur:
                                continue  # iteration-private (cactus-stack rule)
                            last_write[address] = (cur, ts)
            else:
                if (
                    record is not None
                    and record.first_dep_ts is None
                    and address in record.write_set
                ):
                    record.note_dependence(ts)
                if tracks:
                    marks = marks_for(address)
                    if marks is None:
                        for last_write, invocation, _inv_id, cur in tracks:
                            last = last_write.get(address)
                            if last is not None and last[0] < cur:
                                invocation.record_conflict(
                                    last[0], last[1], cur, ts
                                )
                    else:
                        for last_write, invocation, inv_id, cur in tracks:
                            if marks.get(inv_id) == cur:
                                continue
                            last = last_write.get(address)
                            if last is not None and last[0] < cur:
                                invocation.record_conflict(
                                    last[0], last[1], cur, ts
                                )

    def deliver_block_events(self, mem_events, lcd_events):
        """One call per JIT basic block: the block's batched memory events
        (``(is_write, address, ts)``) plus its register-LCD events
        (``(is_def, loop_id, phi_key, ts)``), each list in program order.

        LCD and memory events touch disjoint tracking state (``last_def_ts``
        / ``first_use_off`` vs ``last_write`` / conflicts) and carry explicit
        timestamps, so replaying them as two ordered lists is equivalent to
        the closure backend's interleaved per-event delivery. Loop and call
        events never occur inside a batched block, so the stacks are stable
        across the batch.
        """
        if lcd_events:
            by_loop = self.by_loop
            for is_def, loop_id, phi_key, ts in lcd_events:
                entries = by_loop.get(loop_id)
                if not entries:
                    continue
                entry = entries[-1]
                if is_def:
                    entry.last_def_ts[phi_key] = ts
                elif phi_key not in entry.first_use_off:
                    offset = ts - entry.invocation.iter_starts[-1]
                    entry.first_use_off[phi_key] = max(0, offset)
        if mem_events:
            self.mem_batch(mem_events)

    # -- allocation provenance -----------------------------------------------------

    def current_marks(self):
        """Snapshot ``{id(invocation): current_iter}`` for new allocations."""
        if not self.stack:
            return None
        return {
            id(entry.invocation): entry.invocation.current_iter
            for entry in self.stack
        }

    # -- finishing ------------------------------------------------------------------

    def finish(self, total_cost, result=None):
        ts = total_cost
        while self.stack:
            self._pop_invocation(ts)
        for depth in list(self.pending_calls):
            self._finalize_pending(depth, ts)
        self.profile.total_cost = total_cost
        self.profile.result = result
        self.profile.call_sites = dict(self.call_summaries)
        return self.profile
