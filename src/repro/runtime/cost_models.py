"""Parallel execution cost models: DOALL, Partial-DOALL, HELIX (paper §III-B).

All three consume the *effective* per-iteration costs of one loop invocation
(raw iteration spans with inner-loop parallel savings already subtracted) and
the manifesting-LCD observations, and return a :class:`ModelOutcome` with the
loop's parallel execution cost, or the serial cost if the model rejects the
loop.

Semantics, straight from the paper:

* **DOALL** — any manifesting LCD makes the loop serial; otherwise the loop
  costs its slowest iteration.
* **Partial-DOALL** — conflicting iterations split execution into phases;
  each phase costs its slowest iteration and the conflicting iteration
  restarts at the end of the previous phase. If more than
  ``PDOALL_SERIAL_THRESHOLD`` (80 %) of iterations conflict, the loop is
  serial.
* **HELIX** — ``cost = iter_slowest + delta_largest * num_iter`` where
  ``delta_largest`` is the largest per-iteration producer->consumer skew over
  every manifesting LCD; if the result is not below the serial cost the loop
  is marked serial.
"""

from __future__ import annotations

import numpy as np

PDOALL_SERIAL_THRESHOLD = 0.80


class ModelOutcome:
    """Result of applying one execution model to one loop invocation."""

    __slots__ = ("cost", "parallel", "reason")

    def __init__(self, cost, parallel, reason=""):
        self.cost = cost
        self.parallel = parallel
        self.reason = reason

    def __repr__(self):
        state = "parallel" if self.parallel else f"serial({self.reason})"
        return f"<ModelOutcome {state} cost={self.cost:.0f}>"


def serial_outcome(iter_costs, reason, serial=None):
    """``serial`` lets callers that already summed the array skip the
    re-sum; the value is identical either way."""
    if serial is None:
        serial = float(np.sum(iter_costs)) if len(iter_costs) else 0.0
    return ModelOutcome(serial, False, reason)


def doall_cost(iter_costs, has_any_conflict, serial=None, iter_max=None):
    """DOALL: all iterations start together; a single conflict aborts.

    ``iter_max`` mirrors ``serial``: callers that already know
    ``float(np.max(iter_costs))`` pass it to skip the re-scan.
    """
    if len(iter_costs) == 0:
        return ModelOutcome(0.0, True)
    if has_any_conflict:
        return serial_outcome(iter_costs, "conflict", serial)
    if iter_max is None:
        iter_max = float(np.max(iter_costs))
    return ModelOutcome(iter_max, True)


def pdoall_phase_breaks(conflict_pairs, n):
    """Phase boundaries under Partial-DOALL restart semantics.

    ``conflict_pairs`` maps consumer iteration -> latest producer iteration.
    All iterations of a phase start together; a RAW from producer ``w`` to
    consumer ``c`` aborts ``c`` (and starts a new phase there) only when
    ``w`` is in the *same* phase — once a phase break separates them, the
    producer committed before the consumer started and the read is
    satisfied. Returns the sorted break positions.
    """
    breaks = []
    phase_start = 0
    for consumer in sorted(conflict_pairs):
        if not 0 < consumer < n:
            continue
        producer = conflict_pairs[consumer]
        if producer >= phase_start:
            breaks.append(consumer)
            phase_start = consumer
    return breaks


def pdoall_cost(iter_costs, breaks, serial=None, conflicts=None,
                iter_max=None):
    """Partial-DOALL phase simulation over precomputed phase breaks.

    ``conflicts`` is the number of *conflicting iterations* — the quantity
    the paper's 80 % serial cutoff is defined on. It can exceed
    ``len(breaks)``: a conflict whose producer committed in an earlier
    phase is absorbed (no restart, no break) but still counts against the
    threshold. Callers that only know the breaks may omit it, in which
    case the break count is used as a lower bound.
    """
    n = len(iter_costs)
    if n == 0:
        return ModelOutcome(0.0, True)
    if conflicts is None:
        conflicts = len(breaks)
    if conflicts / n > PDOALL_SERIAL_THRESHOLD:
        return serial_outcome(iter_costs, "conflict-rate", serial)
    if breaks:
        # Segment maxima over [0, b1), [b1, b2), ..., [bm, n).
        costs = np.asarray(iter_costs, dtype=float)
        starts = np.concatenate(([0], np.asarray(breaks, dtype=int)))
        total = float(np.sum(np.maximum.reduceat(costs, starts)))
    elif iter_max is not None:
        total = iter_max
    else:
        total = float(np.max(np.asarray(iter_costs, dtype=float)))
    if serial is None:
        serial = float(np.sum(np.asarray(iter_costs, dtype=float)))
    if total >= serial:
        return serial_outcome(iter_costs, "no-gain", serial)
    return ModelOutcome(total, True)


def helix_cost(iter_costs, delta_largest, serial=None, iter_max=None):
    """HELIX-style synchronized execution.

    ``delta_largest`` is the largest per-iteration producer->consumer skew
    over all manifesting LCDs (memory and, per configuration, lowered or
    mispredicted register LCDs), in IR instructions.
    """
    n = len(iter_costs)
    if n == 0:
        return ModelOutcome(0.0, True)
    if iter_max is None:
        iter_max = float(np.max(iter_costs))
    cost = iter_max + float(delta_largest) * n
    if serial is None:
        serial = float(np.sum(iter_costs))
    if cost >= serial:
        return serial_outcome(iter_costs, "sync-bound", serial)
    return ModelOutcome(cost, True)


def doacross_cost(iter_costs, producer_offsets, consumer_offsets):
    """Classic single-sync-point DOACROSS (for the ablation benchmark).

    With only one synchronization point the wait must cover the *span* from
    the earliest consumer to the latest producer: effectively
    ``delta = max_producer_off - min_consumer_off`` per iteration.
    """
    n = len(iter_costs)
    if n == 0:
        return ModelOutcome(0.0, True)
    if not producer_offsets:
        return ModelOutcome(float(np.max(iter_costs)), True)
    delta = max(0.0, max(producer_offsets) - min(consumer_offsets))
    return helix_cost(iter_costs, delta)
