"""Persistent profile cache — profile once, evaluate everywhere.

Profiling is the expensive stage of the pipeline (an instrumented
interpreter run over millions of dynamic IR instructions); evaluation is
cheap and purely analytical. This module gives the expensive stage a
versioned, content-addressed on-disk home so warm starts of the suite
runner, the figure harnesses, and pytest skip re-profiling entirely.

Cache key
---------

``sha256(cache_schema | profile_format | instrumentation_version |
fuel | inline | source)`` — any change to the benchmark source, the fuel
budget, the inlining mode, the serialized profile layout, or the
instrumentation planner invalidates the entry. Bump
:data:`PROFILE_CACHE_SCHEMA` whenever the *payload* layout changes (the
other two versions live with the code they describe:
``repro.runtime.serialize.FORMAT_VERSION`` and
``repro.core.instrument.INSTRUMENTATION_VERSION``).

Entries are single JSON files named ``<key>.json`` holding the serialized
:class:`~repro.runtime.profile.ProgramProfile`, the static loop
classification, the program output, and a payload checksum. Corruption
(truncated writes, bit rot, schema drift) is detected on load and the
entry is discarded — the caller falls back to re-profiling and the entry
is rewritten.

The default location is ``~/.cache/repro/profiles`` (override with the
``REPRO_CACHE_DIR`` environment variable; set ``REPRO_NO_PROFILE_CACHE=1``
to disable the default store entirely, e.g. for cold-start timing runs).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile

from .serialize import FORMAT_VERSION, profile_from_dict, profile_to_dict

#: Version of the on-disk cache payload layout (not of the profile format
#: itself — that is ``serialize.FORMAT_VERSION``). Bumping this invalidates
#: every existing cache entry.
PROFILE_CACHE_SCHEMA = 1


def _instrumentation_version():
    from ..core.instrument import INSTRUMENTATION_VERSION

    return INSTRUMENTATION_VERSION


def default_cache_root():
    """The store directory used when none is given explicitly."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return pathlib.Path(override)
    return pathlib.Path.home() / ".cache" / "repro" / "profiles"


#: Environment values that do NOT disable the cache. Historically any
#: non-empty value (including "0" and "false") turned caching off.
_FALSY_ENV = frozenset({"", "0", "false", "no", "off"})


def cache_enabled():
    """False when the user disabled the default cache via the environment.

    ``REPRO_NO_PROFILE_CACHE`` follows the usual boolean-env contract:
    ``1``/``true``/``yes`` (any casing) disable the cache; unset, empty,
    ``0``, ``false``, ``no``, and ``off`` leave it enabled.
    """
    value = os.environ.get("REPRO_NO_PROFILE_CACHE")
    if value is None:
        return True
    return value.strip().lower() in _FALSY_ENV


class ProfileStoreStats:
    """Hit/miss/corruption counters for one :class:`ProfileStore`."""

    __slots__ = ("hits", "misses", "stores", "corrupt", "errors")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        self.errors = 0

    def as_dict(self):
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "errors": self.errors,
        }

    def describe(self):
        """One-line human-readable summary for run footers."""
        parts = [f"{self.hits} hits", f"{self.misses} misses"]
        if self.stores:
            parts.append(f"{self.stores} stored")
        if self.corrupt:
            parts.append(f"{self.corrupt} corrupt")
        if self.errors:
            parts.append(f"{self.errors} errors")
        return ", ".join(parts)

    def __repr__(self):
        return (
            f"<ProfileStoreStats hits={self.hits} misses={self.misses} "
            f"stores={self.stores} corrupt={self.corrupt}>"
        )


class CachedRun:
    """What a warm start gets back: the profile plus everything else the
    framework would have learned by running the program."""

    __slots__ = ("profile", "static_loops", "output")

    def __init__(self, profile, static_loops, output):
        self.profile = profile
        self.static_loops = static_loops
        self.output = output


class ProfileStore:
    """Content-addressed on-disk store for execution profiles.

    All methods degrade gracefully: IO or serialization failures count as
    misses/errors and never propagate — a broken cache must never break a
    profiling run.
    """

    def __init__(self, root=None, schema=None):
        self.root = pathlib.Path(root) if root is not None else default_cache_root()
        self.schema = PROFILE_CACHE_SCHEMA if schema is None else schema
        self.stats = ProfileStoreStats()

    # -- keys -----------------------------------------------------------------

    def cache_key(self, source, fuel, inline=False, transform=False):
        """Content hash identifying one (program, profiling setup) pair.

        ``transform`` is the structural-transform pipeline flag: the same
        source profiled with and without fission/peel/fusion yields
        different loop populations, so the entries must never collide.
        """
        tag = (
            f"{self.schema}|{FORMAT_VERSION}|{_instrumentation_version()}"
            f"|{fuel}|{int(bool(inline))}|{int(bool(transform))}|"
        )
        digest = hashlib.sha256()
        digest.update(tag.encode("utf-8"))
        digest.update(source.encode("utf-8"))
        return digest.hexdigest()

    def _path_for(self, key):
        return self.root / f"{key}.json"

    # -- load -----------------------------------------------------------------

    def load(self, source, fuel, inline=False, transform=False):
        """Return a :class:`CachedRun` on a hit, else ``None``.

        Corrupt entries (bad JSON, wrong schema, checksum mismatch, missing
        fields) are deleted and reported as a miss so the caller re-profiles
        and overwrites them.
        """
        key = self.cache_key(source, fuel, inline, transform)
        path = self._path_for(key)
        try:
            text = path.read_text()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            entry = json.loads(text)
            if entry.get("schema") != self.schema:
                raise ValueError("schema mismatch")
            payload = entry["payload"]
            if entry.get("checksum") != _checksum(payload):
                raise ValueError("checksum mismatch")
            profile = profile_from_dict(payload["profile"])
            static_loops = _static_loops_from_dict(payload["static_loops"])
            output = list(payload["output"])
        except Exception:
            # Anything unreadable is treated as corruption: drop the entry
            # and fall back to re-profiling.
            self.stats.corrupt += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return CachedRun(profile, static_loops, output)

    # -- store ----------------------------------------------------------------

    def store(self, source, fuel, profile, static_info, output, inline=False,
              transform=False):
        """Persist one profiling run. Failures are swallowed (and counted):
        caching is an optimization, never a correctness dependency."""
        key = self.cache_key(source, fuel, inline, transform)
        payload = {
            "profile": profile_to_dict(profile),
            "static_loops": _static_loops_to_dict(static_info.loops),
            "output": list(output),
        }
        # Serialize the (large) payload exactly once, in canonical form, and
        # reuse the text for both the checksum and the entry body.  json.dump
        # would stream through the pure-Python encoder; json.dumps uses the C
        # one, which is the difference between seconds and milliseconds on a
        # multi-megabyte profile.
        payload_json = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        checksum = hashlib.sha256(payload_json.encode("utf-8")).hexdigest()
        entry_text = '{"schema": %s, "key": %s, "payload": %s, "checksum": %s}' % (
            json.dumps(self.schema),
            json.dumps(key),
            payload_json,
            json.dumps(checksum),
        )
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            # Atomic publish: concurrent sweep workers may store the same
            # entry; the rename makes readers see old-or-new, never partial.
            fd, tmp_name = tempfile.mkstemp(
                dir=self.root, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(entry_text)
                os.replace(tmp_name, self._path_for(key))
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except Exception:
            self.stats.errors += 1
            return False
        self.stats.stores += 1
        return True

    # -- maintenance -----------------------------------------------------------

    def entries(self):
        """Paths of all cache entries currently on disk."""
        try:
            return sorted(self.root.glob("*.json"))
        except OSError:
            return []

    def size_bytes(self):
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def clear(self):
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def info(self):
        """Human-oriented summary used by ``repro cache info``."""
        entries = self.entries()
        return {
            "root": str(self.root),
            "entries": len(entries),
            "size_bytes": self.size_bytes(),
            "schema": self.schema,
            **self.stats.as_dict(),
        }

    def __repr__(self):
        return f"<ProfileStore {self.root} ({len(self.entries())} entries)>"


_DEFAULT_STORE = None


def default_store():
    """Process-wide shared store at the default location, or ``None`` when
    disabled via ``REPRO_NO_PROFILE_CACHE``."""
    global _DEFAULT_STORE
    if not cache_enabled():
        return None
    if _DEFAULT_STORE is None:
        _DEFAULT_STORE = ProfileStore()
    return _DEFAULT_STORE


# -- code cache ----------------------------------------------------------------

#: Version of the on-disk code-cache entry layout. The *content* of cached
#: sources is versioned separately by ``repro.interp.codegen.CODEGEN_VERSION``
#: (part of the entry key).
CODE_CACHE_SCHEMA = 1


def default_code_cache_root():
    """Where cached JIT sources live: ``<REPRO_CACHE_DIR>/code`` when the
    override is set, else ``~/.cache/repro/code`` (a sibling of the
    profile store)."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return pathlib.Path(override) / "code"
    return pathlib.Path.home() / ".cache" / "repro" / "code"


#: Entry cap for the on-disk code cache (oldest-access eviction). Sized so
#: a full bundled-suite sweep (48 programs x 2 variants x a few tiers) fits
#: with headroom; long-lived fuzzing hosts stay bounded.
CODE_CACHE_CAP_ENV = "REPRO_CODE_CACHE_CAP"
CODE_CACHE_CAP_DEFAULT = 1024


def code_cache_cap():
    raw = os.environ.get(CODE_CACHE_CAP_ENV)
    if not raw:
        return CODE_CACHE_CAP_DEFAULT
    try:
        return max(1, int(raw))
    except ValueError:
        return CODE_CACHE_CAP_DEFAULT


class CodeCache:
    """Content-addressed on-disk store for JIT-generated Python sources.

    Keys come from :func:`repro.interp.codegen.jit_cache_key` (IR text +
    plan + codegen version), so a warm sweep skips source generation
    entirely and goes straight to ``compile()``. Same degradation contract
    as :class:`ProfileStore`: IO failures count as misses/errors and never
    propagate.
    """

    def __init__(self, root=None, schema=None, cap=None):
        self.root = (
            pathlib.Path(root) if root is not None else default_code_cache_root()
        )
        self.schema = CODE_CACHE_SCHEMA if schema is None else schema
        self.stats = ProfileStoreStats()
        #: Entry cap (LRU by file mtime); ``None`` re-reads the env var at
        #: every store so tests and long-lived hosts can tune it live.
        self._cap = cap
        self.evictions = 0

    def _path_for(self, key):
        return self.root / f"{key}.json"

    def load(self, key):
        """The cached source for ``key``, or ``None``. Corrupt entries are
        deleted and counted, then reported as a miss."""
        path = self._path_for(key)
        try:
            text = path.read_text()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            entry = json.loads(text)
            if entry.get("schema") != self.schema:
                raise ValueError("schema mismatch")
            source = entry["source"]
            if not isinstance(source, str):
                raise ValueError("bad source payload")
            checksum = hashlib.sha256(source.encode("utf-8")).hexdigest()
            if entry.get("checksum") != checksum:
                raise ValueError("checksum mismatch")
        except Exception:
            self.stats.corrupt += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        try:
            os.utime(path)  # LRU touch: eviction is oldest-mtime-first
        except OSError:
            pass
        return source

    def store(self, key, source, meta=None):
        """Persist one generated source; failures are swallowed and
        counted (caching is never a correctness dependency)."""
        entry = {
            "schema": self.schema,
            "key": key,
            "source": source,
            "checksum": hashlib.sha256(source.encode("utf-8")).hexdigest(),
            "meta": dict(meta) if meta else {},
        }
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=self.root, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(json.dumps(entry))
                os.replace(tmp_name, self._path_for(key))
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except Exception:
            self.stats.errors += 1
            return False
        self.stats.stores += 1
        self._evict_to_cap()
        return True

    def cap(self):
        return self._cap if self._cap is not None else code_cache_cap()

    def _evict_to_cap(self):
        """Drop least-recently-used entries until the cap holds. Races
        with concurrent processes are benign: eviction of an entry another
        process is about to read just costs that process a miss."""
        cap = self.cap()
        entries = self.entries()
        if len(entries) <= cap:
            return
        by_age = []
        for path in entries:
            try:
                by_age.append((path.stat().st_mtime, str(path), path))
            except OSError:
                pass
        by_age.sort()
        for _, _, path in by_age[: max(0, len(by_age) - cap)]:
            try:
                path.unlink()
                self.evictions += 1
            except OSError:
                pass

    def entries(self):
        try:
            return sorted(self.root.glob("*.json"))
        except OSError:
            return []

    def size_bytes(self):
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def clear(self):
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def info(self):
        """Human-oriented summary used by ``repro cache info``/``stats``."""
        entries = self.entries()
        return {
            "root": str(self.root),
            "entries": len(entries),
            "size_bytes": self.size_bytes(),
            "schema": self.schema,
            "cap": self.cap(),
            "evictions": self.evictions,
            **self.stats.as_dict(),
        }

    def __repr__(self):
        return f"<CodeCache {self.root} ({len(self.entries())} entries)>"


_DEFAULT_CODE_CACHE = None


def default_code_cache():
    """Process-wide shared code cache, or ``None`` when caching is
    disabled via ``REPRO_NO_PROFILE_CACHE`` (one switch governs both the
    profile store and the code cache, so cold-start timing runs stay
    cold)."""
    global _DEFAULT_CODE_CACHE
    if not cache_enabled():
        return None
    if _DEFAULT_CODE_CACHE is None:
        _DEFAULT_CODE_CACHE = CodeCache()
    return _DEFAULT_CODE_CACHE


# -- payload helpers -----------------------------------------------------------


def _checksum(payload):
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _static_loops_to_dict(loops):
    from ..core.static_info import loop_static_to_dict

    return {loop_id: loop_static_to_dict(s) for loop_id, s in loops.items()}


def _static_loops_from_dict(data):
    from ..core.static_info import loop_static_from_dict

    return {loop_id: loop_static_from_dict(entry) for loop_id, entry in data.items()}
