"""Fault-injection hooks for worker tiers (sweep engine + parallel tier).

A sentinel environment variable arms a self-inflicted fault inside a worker
process, letting smoke tests exercise the recovery paths (retry, quarantine,
TLS rollback) without real crashes:

- ``always``          — every worker task SIGKILLs itself.
- ``<path>``          — exactly one task fleet-wide dies: the sentinel file
                        is created with ``O_EXCL`` so concurrent workers race
                        for a single SIGKILL.
- ``kill:<path>``     — explicit spelling of the single-kill mode.
- ``hang:<path>``     — exactly one task fleet-wide hangs (sleeps far past
                        any task timeout), exercising the hung-chunk retry.

The sweep engine listens on ``REPRO_SWEEP_FAULT_SENTINEL``; the parallel
execution tier listens on ``REPRO_PAR_FAULT_SENTINEL`` so arming one tier
never perturbs the other.
"""

from __future__ import annotations

import os
import signal
import time

FAULT_SENTINEL_ENV = "REPRO_SWEEP_FAULT_SENTINEL"
PAR_FAULT_SENTINEL_ENV = "REPRO_PAR_FAULT_SENTINEL"

#: How long a "hung" worker sleeps; anything far beyond the task timeout.
HANG_SECONDS = 3600.0


def _claim(path):
    """Atomically claim the sentinel file; True for exactly one caller."""
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except OSError:
        return False
    os.close(fd)
    return True


def maybe_inject_fault(env_var=FAULT_SENTINEL_ENV):
    """Fault this process if the sentinel for ``env_var`` is armed."""
    sentinel = os.environ.get(env_var)
    if not sentinel:
        return
    if sentinel == "always":
        os.kill(os.getpid(), signal.SIGKILL)
    mode, sep, path = sentinel.partition(":")
    if sep and mode == "hang":
        if _claim(path):
            time.sleep(HANG_SECONDS)
        return
    target = path if (sep and mode == "kill") else sentinel
    if _claim(target):
        os.kill(os.getpid(), signal.SIGKILL)
