"""repro.runtime — the Loopapalooza run-time component.

Profile data structures (the loop-invocation tree), the profiling runtime
that implements the instrumentation callbacks (conflict tracking, register
LCD recording, cactus-stack privatization), and the DOALL / Partial-DOALL /
HELIX cost models.
"""

from .cost_models import (
    PDOALL_SERIAL_THRESHOLD,
    ModelOutcome,
    doacross_cost,
    doall_cost,
    helix_cost,
    pdoall_cost,
    pdoall_phase_breaks,
    serial_outcome,
)
from .call_records import CallRecord, CallSiteSummary
from .profile import LoopInvocation, ProgramProfile
from .serialize import (
    load_profile,
    profile_from_dict,
    profile_to_dict,
    save_profile,
)
from .recorder import ProfilingRuntime
from .telemetry import (
    RunTelemetry,
    format_run_summary,
    format_runs_table,
    list_runs,
    load_manifest,
    purge_runs,
    runs_root,
)

__all__ = [
    "CallRecord",
    "CallSiteSummary",
    "LoopInvocation",
    "ModelOutcome",
    "PDOALL_SERIAL_THRESHOLD",
    "ProfilingRuntime",
    "ProgramProfile",
    "RunTelemetry",
    "format_run_summary",
    "format_runs_table",
    "list_runs",
    "load_manifest",
    "purge_runs",
    "runs_root",
    "doacross_cost",
    "doall_cost",
    "helix_cost",
    "load_profile",
    "pdoall_cost",
    "pdoall_phase_breaks",
    "profile_from_dict",
    "profile_to_dict",
    "save_profile",
    "serial_outcome",
]
