"""repro.runtime — the Loopapalooza run-time component.

Profile data structures (the loop-invocation tree), the profiling runtime
that implements the instrumentation callbacks (conflict tracking, register
LCD recording, cactus-stack privatization), and the DOALL / Partial-DOALL /
HELIX cost models.
"""

from .cost_models import (
    PDOALL_SERIAL_THRESHOLD,
    ModelOutcome,
    doacross_cost,
    doall_cost,
    helix_cost,
    pdoall_cost,
    pdoall_phase_breaks,
    serial_outcome,
)
from .call_records import CallRecord, CallSiteSummary
from .profile import LoopInvocation, ProgramProfile
from .serialize import (
    load_profile,
    profile_from_dict,
    profile_to_dict,
    save_profile,
)
from .recorder import ProfilingRuntime

__all__ = [
    "CallRecord",
    "CallSiteSummary",
    "LoopInvocation",
    "ModelOutcome",
    "PDOALL_SERIAL_THRESHOLD",
    "ProfilingRuntime",
    "ProgramProfile",
    "doacross_cost",
    "doall_cost",
    "helix_cost",
    "load_profile",
    "pdoall_cost",
    "pdoall_phase_breaks",
    "profile_from_dict",
    "profile_to_dict",
    "save_profile",
    "serial_outcome",
]
