"""Software thread-level speculation (TLS) runtime for the parallel tier.

Loops that fit the kernel structural model (straight-line body, closed-form
induction variables, single header exit) but are *not* proved STATIC_DOALL
can still run in parallel speculatively. The protocol is the lazy-versioning
scheme assumed by :mod:`repro.runtime.cost_models`:

1. The iteration space is chunked; each chunk executes in a worker against
   the shared pre-loop memory image, buffering every store in a private
   write log (reads check the own-chunk buffer first — read-your-own-write)
   and recording every address read from shared memory in a read log.
2. The parent commits chunks **in iteration order** into an overlay (a
   committed-writes map layered over memory). A chunk whose read log
   intersects the overlay observed a stale value for an address an earlier
   chunk wrote — a cross-chunk RAW violation — and is rolled back: its
   buffered writes are discarded and the chunk re-executes serially in the
   parent against overlay + memory.
3. Only after every chunk commits is the overlay applied to slot memory.
   Any bailout (trap, type surprise, non-canonical value) aborts the whole
   speculation with memory untouched; the caller falls back to the scalar
   loop, which replays every iteration exactly (traps included).

WAR and WAW need no detection: commit order is iteration order, so a later
chunk's write simply shadows an earlier one (WAW resolves to the serially
last write) and an earlier chunk's read of a later chunk's target saw the
pre-image exactly as serial execution would (WAR is harmless).

The three ``_tld*``/``_tst`` helpers are injected into TLS chunk-kernel
namespaces by :mod:`repro.interp.parexec`; they bail (raise ``_VBail``) on
anything the vector helpers would bail on — out-of-bounds addresses and
non-canonical slot values — so a speculative chunk can never fault, only
abort.
"""

from __future__ import annotations

from ..interp.veccodegen import _VBail


def _tldi(space, reads, writes, over, addr, spec):
    """Speculative integer load: own write buffer, then the committed
    overlay (serial re-execution only), then shared memory (logged)."""
    if addr in writes:
        value = writes[addr]
    elif over is not None and addr in over:
        value = over[addr]
    else:
        if addr < 0 or addr >= space._stack_pointer:
            raise _VBail
        value = space.load(addr)
        if spec:
            reads.add(addr)
    if type(value) is not int or not -2147483648 <= value < 2147483648:
        raise _VBail
    return value


def _tldf(space, reads, writes, over, addr, spec):
    """Speculative float load (same resolution order as :func:`_tldi`)."""
    if addr in writes:
        value = writes[addr]
    elif over is not None and addr in over:
        value = over[addr]
    else:
        if addr < 0 or addr >= space._stack_pointer:
            raise _VBail
        value = space.load(addr)
        if spec:
            reads.add(addr)
    if type(value) is not float:
        raise _VBail
    return value


def _tst(space, writes, addr, value):
    """Speculative store: bounds-check now (so an eventual trap aborts the
    chunk before anything commits), buffer the value."""
    if addr < 0 or addr >= space._stack_pointer:
        raise _VBail
    writes[addr] = value


def tls_namespace():
    """Names TLS chunk kernels reference beyond the vector helpers."""
    return {"_tldi": _tldi, "_tldf": _tldf, "_tst": _tst}


def commit_chunks(space, results, rerun):
    """Commit speculative chunk results in iteration order.

    ``results`` is one ``(reads, writes)`` pair per chunk, iteration order.
    ``rerun(index, overlay)`` re-executes chunk ``index`` serially against
    the committed overlay and returns its write map (it may raise ``_VBail``
    to abort the whole speculation). Returns ``(commits, rollbacks)`` after
    applying the merged overlay to ``space``; raises before any memory
    mutation on abort.
    """
    overlay = {}
    rollbacks = 0
    for index, (reads, writes) in enumerate(results):
        if overlay and reads and not reads.isdisjoint(overlay):
            writes = rerun(index, overlay)  # RAW violation: rollback
            rollbacks += 1
        overlay.update(writes)
    for addr, value in overlay.items():
        space.store(addr, value)
    return len(results), rollbacks
