"""Execution-profile data structures.

One profiling run per benchmark records *raw facts*; every Table-II
configuration is then evaluated analytically from the recorded profile (see
DESIGN.md for why this is observationally equivalent to the paper's
per-configuration instrumented runs).

The profile is a tree of :class:`LoopInvocation` records rooted at a
:class:`ProgramProfile` pseudo-invocation covering the whole run. Each
invocation stores:

* iteration start timestamps (dynamic IR instruction counts),
* aggregated memory-RAW conflicts: the set of consumer iterations (for the
  Partial-DOALL phase simulation and the 80 % rule), the per-iteration
  producer->consumer skew maximum (for the HELIX formula), and the raw count,
* per tracked register LCD: the latch value sequence (for value-predictor
  simulation) and per-iteration producer-definition / first-use offsets (for
  HELIX ``dep1`` lowering).
"""

from __future__ import annotations


class LoopInvocation:
    """One dynamic execution of a loop (entry to exit).

    Iteration boundaries are the header-entry edges, so a loop whose body
    runs N times records N+1 iteration starts: the final header execution
    (the failing exit test) forms a cheap trailing pseudo-iteration. All
    derived quantities (costs, conflicts, LCD indices) use this numbering
    consistently.
    """

    __slots__ = (
        "loop_id", "parent", "parent_iter", "iter_starts", "end_ts",
        "conflict_pairs", "max_mem_skew", "conflict_count",
        "lcd_values", "lcd_def_offsets", "lcd_use_offsets",
        "children", "exited",
    )

    def __init__(self, loop_id, parent, parent_iter, start_ts):
        self.loop_id = loop_id
        self.parent = parent
        self.parent_iter = parent_iter
        self.iter_starts = [start_ts]
        self.end_ts = start_ts
        # consumer iteration -> latest producer iteration observed for it.
        # The latest producer is the binding constraint: a Partial-DOALL
        # phase break before it commits every earlier producer too.
        self.conflict_pairs = {}
        self.max_mem_skew = 0.0
        self.conflict_count = 0
        self.lcd_values = {}
        self.lcd_def_offsets = {}
        self.lcd_use_offsets = {}
        self.children = []
        self.exited = False

    # -- derived quantities -------------------------------------------------------

    @property
    def num_iterations(self):
        return len(self.iter_starts)

    @property
    def current_iter(self):
        return len(self.iter_starts) - 1

    @property
    def start_ts(self):
        return self.iter_starts[0]

    @property
    def serial_cost(self):
        return self.end_ts - self.iter_starts[0]

    def iteration_costs(self):
        """Raw span of each iteration in IR instructions."""
        starts = self.iter_starts
        costs = [
            starts[index + 1] - starts[index]
            for index in range(len(starts) - 1)
        ]
        costs.append(self.end_ts - starts[-1])
        return costs

    def record_conflict(self, producer_iter, producer_ts, consumer_iter, consumer_ts):
        """Aggregate one cross-iteration RAW manifestation."""
        self.conflict_count += 1
        previous = self.conflict_pairs.get(consumer_iter, -1)
        if producer_iter > previous:
            self.conflict_pairs[consumer_iter] = producer_iter
        producer_off = producer_ts - self.iter_starts[producer_iter]
        consumer_off = consumer_ts - self.iter_starts[consumer_iter]
        distance = consumer_iter - producer_iter
        skew = (producer_off - consumer_off) / distance
        if skew > self.max_mem_skew:
            self.max_mem_skew = skew

    def __repr__(self):
        return (
            f"<LoopInvocation {self.loop_id} iters={self.num_iterations} "
            f"conflicts={self.conflict_count}>"
        )


class ProgramProfile:
    """Root of the invocation tree plus whole-run metadata."""

    def __init__(self, name="program"):
        self.name = name
        self.top_level = []       # LoopInvocation list (invocation order)
        self.total_cost = 0       # dynamic IR instructions of the whole run
        self.result = None        # program exit value
        self.call_sites = {}      # site_id -> CallSiteSummary (call TLS)

    def all_invocations(self):
        """Every invocation in the tree, parents before children."""
        result = []
        worklist = list(reversed(self.top_level))
        while worklist:
            invocation = worklist.pop()
            result.append(invocation)
            worklist.extend(reversed(invocation.children))
        return result

    def invocations_of(self, loop_id):
        return [inv for inv in self.all_invocations() if inv.loop_id == loop_id]

    def loop_ids(self):
        return sorted({inv.loop_id for inv in self.all_invocations()})

    def __repr__(self):
        return (
            f"<ProgramProfile {self.name}: cost={self.total_cost}, "
            f"{len(self.all_invocations())} invocations>"
        )
