"""Profile serialization: save/load execution profiles as JSON.

Profiling is the expensive step (an instrumented interpreter run); the
evaluation of Table-II configurations is cheap. Serializing profiles lets a
study run once and be re-analyzed offline — the same reason the paper
separates its compile-time and run-time components.

The format is versioned and self-contained; invocation trees round-trip
exactly (tests assert evaluation results are identical before and after).
"""

from __future__ import annotations

import json

from ..errors import FrameworkError
from .call_records import CallSiteSummary
from .profile import LoopInvocation, ProgramProfile

FORMAT_VERSION = 1


def _invocation_to_dict(invocation):
    return {
        "loop_id": invocation.loop_id,
        "parent_iter": invocation.parent_iter,
        "iter_starts": invocation.iter_starts,
        "end_ts": invocation.end_ts,
        "conflict_pairs": sorted(invocation.conflict_pairs.items()),
        "max_mem_skew": invocation.max_mem_skew,
        "conflict_count": invocation.conflict_count,
        "lcd_values": invocation.lcd_values,
        "lcd_def_offsets": invocation.lcd_def_offsets,
        "lcd_use_offsets": invocation.lcd_use_offsets,
        "exited": invocation.exited,
        "children": [
            _invocation_to_dict(child) for child in invocation.children
        ],
    }


def _invocation_from_dict(data, parent):
    invocation = LoopInvocation(
        data["loop_id"], parent, data["parent_iter"], data["iter_starts"][0]
    )
    invocation.iter_starts = list(data["iter_starts"])
    invocation.end_ts = data["end_ts"]
    invocation.conflict_pairs = {
        int(consumer): int(producer)
        for consumer, producer in data["conflict_pairs"]
    }
    invocation.max_mem_skew = data["max_mem_skew"]
    invocation.conflict_count = data["conflict_count"]
    invocation.lcd_values = dict(data["lcd_values"])
    invocation.lcd_def_offsets = dict(data["lcd_def_offsets"])
    invocation.lcd_use_offsets = dict(data["lcd_use_offsets"])
    invocation.exited = data["exited"]
    invocation.children = [
        _invocation_from_dict(child, invocation)
        for child in data["children"]
    ]
    return invocation


def profile_to_dict(profile):
    """Convert a :class:`ProgramProfile` to a JSON-safe dictionary."""
    return {
        "format": FORMAT_VERSION,
        "name": profile.name,
        "total_cost": profile.total_cost,
        "result": profile.result,
        "top_level": [
            _invocation_to_dict(invocation)
            for invocation in profile.top_level
        ],
        "call_sites": {
            site_id: {
                "calls": summary.calls,
                "total_duration": summary.total_duration,
                "total_saving": summary.total_saving,
                "dependent_calls": summary.dependent_calls,
            }
            for site_id, summary in profile.call_sites.items()
        },
    }


def profile_from_dict(data):
    """Rebuild a :class:`ProgramProfile` from :func:`profile_to_dict`
    output."""
    version = data.get("format")
    if version != FORMAT_VERSION:
        raise FrameworkError(
            f"unsupported profile format {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    profile = ProgramProfile(data["name"])
    profile.total_cost = data["total_cost"]
    profile.result = data["result"]
    profile.top_level = [
        _invocation_from_dict(entry, None) for entry in data["top_level"]
    ]
    for site_id, entry in data.get("call_sites", {}).items():
        summary = CallSiteSummary(site_id)
        summary.calls = entry["calls"]
        summary.total_duration = entry["total_duration"]
        summary.total_saving = entry["total_saving"]
        summary.dependent_calls = entry["dependent_calls"]
        profile.call_sites[site_id] = summary
    return profile


def save_profile(profile, path):
    """Write a profile to ``path`` as JSON."""
    with open(path, "w") as handle:
        handle.write(json.dumps(profile_to_dict(profile)))


def load_profile(path):
    """Read a profile previously written by :func:`save_profile`."""
    with open(path) as handle:
        return profile_from_dict(json.load(handle))
