"""Call-site records for function-call/continuation TLS (paper §I).

The paper notes its dependency categorization "applies also to broader
techniques such as function-call/continuation level TLS". This module holds
the profile side of that extension: for every dynamic call to a user
function we record when it ran and when its *continuation* (the code after
the call, in the caller) first truly depended on it — either by using the
return value or by reading a memory location the callee wrote.

Under call-continuation TLS the continuation is spawned speculatively when
the call starts; it can overlap the callee until that first dependence. The
per-call saving is therefore ``min(dep_ts - t_end, duration)`` — the
independent continuation span, capped by the callee time it can hide.
"""

from __future__ import annotations


class CallRecord:
    """One dynamic call to a user function, as seen by its continuation."""

    __slots__ = ("site_id", "start_ts", "end_ts", "first_dep_ts", "write_set")

    def __init__(self, site_id, start_ts):
        self.site_id = site_id
        self.start_ts = start_ts
        self.end_ts = start_ts
        self.first_dep_ts = None
        self.write_set = set()

    @property
    def duration(self):
        return self.end_ts - self.start_ts

    def note_dependence(self, ts):
        if self.first_dep_ts is None:
            self.first_dep_ts = ts

    def finalize(self, horizon_ts):
        """Close the continuation window (next call at this depth, or the
        caller returning); returns the saving this call contributes."""
        dep_ts = self.first_dep_ts if self.first_dep_ts is not None else horizon_ts
        independent_span = max(0, dep_ts - self.end_ts)
        return min(independent_span, self.duration)

    def __repr__(self):
        return f"<CallRecord {self.site_id} dur={self.duration}>"


class CallSiteSummary:
    """Aggregate over all dynamic calls from one static call site."""

    __slots__ = ("site_id", "calls", "total_duration", "total_saving",
                 "dependent_calls")

    def __init__(self, site_id):
        self.site_id = site_id
        self.calls = 0
        self.total_duration = 0
        self.total_saving = 0.0
        self.dependent_calls = 0

    def absorb(self, record, saving):
        self.calls += 1
        self.total_duration += record.duration
        self.total_saving += saving
        if record.first_dep_ts is not None:
            self.dependent_calls += 1

    @property
    def mean_duration(self):
        return self.total_duration / self.calls if self.calls else 0.0

    @property
    def hidden_fraction(self):
        """How much of the callee time the continuation could hide."""
        if self.total_duration == 0:
            return 0.0
        return self.total_saving / self.total_duration

    def __repr__(self):
        return (
            f"<CallSiteSummary {self.site_id} x{self.calls} "
            f"hidden={self.hidden_fraction * 100:.0f}%>"
        )
