"""Structured run telemetry: the JSONL run ledger and the run manifest.

A *run* is one logical sweep over a (benchmark x configuration) grid — a
``full_paper_run``, a ``repro figures`` invocation, or any direct
:meth:`~repro.bench.suites.SuiteRunner.evaluate_many` call that was handed
a :class:`RunTelemetry`. Each run owns a directory under the runs root
(default ``~/.cache/repro/runs``, override with ``REPRO_RUNS_DIR``):

``<run_id>/ledger.jsonl``
    Append-only event log, one JSON object per line. ``task`` events carry
    the *serialized evaluation results* for every configuration the task
    covered, so a later run can resume from them without re-evaluating;
    ``retry`` / ``quarantine`` / ``resumed`` events record the fault
    history. The ledger is the source of truth: the manifest is always
    recomputable from it.

``<run_id>/manifest.json``
    Aggregate view, rewritten after every event: task tallies (done /
    resumed / quarantined), retry count, profile-cache hits and misses,
    total interpreter instructions profiled, cumulative task wall time,
    and the model-outcome tally (parallel vs serial loop summaries across
    every recorded result). ``repro runs`` renders this file.

Resume semantics: :meth:`RunTelemetry.resume` replays the ledger; a task
whose recorded configurations cover the request is served from the ledger
(:meth:`completed_results`) and never re-executed. Results round-trip
through JSON floats exactly (``repr`` round-trip), so a resumed run's
figures are byte-identical to an uninterrupted one.

Telemetry must never break a sweep: every disk write is best-effort and
failures are counted, not raised (mirroring the profile store's contract).
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import time
import uuid

#: Version of the ledger/manifest layout. Bumping it orphans old runs (they
#: remain listable but are refused for resume).
RUN_LEDGER_SCHEMA = 1

LEDGER_NAME = "ledger.jsonl"
MANIFEST_NAME = "manifest.json"


def runs_root():
    """The runs directory used when none is given explicitly."""
    override = os.environ.get("REPRO_RUNS_DIR")
    if override:
        return pathlib.Path(override)
    return pathlib.Path.home() / ".cache" / "repro" / "runs"


def new_run_id():
    """Sortable, collision-resistant run identifier."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return f"{stamp}-{uuid.uuid4().hex[:6]}"


def _result_from_dict(data):
    from ..core.evaluator import EvaluationResult

    return EvaluationResult.from_dict(data)


class RunTelemetry:
    """One run's ledger + manifest, shared by every sweep in the run.

    Use :meth:`create` for a fresh run and :meth:`resume` to continue an
    interrupted one; the constructor itself is an implementation detail.
    """

    def __init__(self, run_id, root=None, _replay=False):
        self.run_id = run_id
        self.root = pathlib.Path(root) if root is not None else runs_root()
        self.run_dir = self.root / run_id
        self.ledger_path = self.run_dir / LEDGER_NAME
        self.manifest_path = self.run_dir / MANIFEST_NAME
        self.created = time.time()
        self.status = "running"
        self.write_errors = 0
        self.corrupt_lines = 0
        # task name -> {config_name: serialized result}
        self._completed = {}
        # Aggregate counters (recomputed from the ledger on resume).
        self._tasks = {}  # task -> last "task" event (without results)
        self._retries = 0
        self._resumed = 0
        self._quarantined = {}
        self._cache_hits = 0
        self._cache_misses = 0
        self._instructions = 0
        self._task_wall_s = 0.0
        self._outcomes = {"parallel_loops": 0, "serial_loops": 0}
        self._cache_stats = {}
        self._vec_decisions = {}
        self._par_stats = {}
        self._fuzz = {"cases": 0, "quarantined": 0, "by_oracle": {},
                      "wall_s": 0.0}
        if _replay:
            self._replay_ledger()

    # -- constructors ---------------------------------------------------------

    @classmethod
    def create(cls, root=None, run_id=None):
        """Start a new run (creates the directory and an empty manifest)."""
        telemetry = cls(run_id or new_run_id(), root)
        try:
            telemetry.run_dir.mkdir(parents=True, exist_ok=True)
        except OSError:
            telemetry.write_errors += 1
        telemetry._append({"type": "start", "schema": RUN_LEDGER_SCHEMA})
        return telemetry

    @classmethod
    def resume(cls, run_id, root=None):
        """Reopen an existing run, replaying its ledger so previously
        completed tasks are served without re-execution.

        Raises :class:`FileNotFoundError` for an unknown run id and
        :class:`ValueError` for a ledger written by an incompatible schema.
        """
        root_path = pathlib.Path(root) if root is not None else runs_root()
        ledger = root_path / run_id / LEDGER_NAME
        if not ledger.exists():
            raise FileNotFoundError(
                f"no run {run_id!r} under {root_path} (see `repro runs`)"
            )
        telemetry = cls(run_id, root_path, _replay=True)
        telemetry._append({"type": "resume", "schema": RUN_LEDGER_SCHEMA})
        return telemetry

    # -- events ---------------------------------------------------------------

    def sweep_started(self, num_programs, num_configs, jobs):
        self._append({
            "type": "sweep",
            "programs": num_programs,
            "configs": num_configs,
            "jobs": jobs,
        })

    def task_done(self, task, results, *, attempt=1, wall_s=0.0,
                  cache_hit=None, instructions=0, path="serial"):
        """Checkpoint one completed (benchmark x all-configs) task.

        ``results`` is ``{config_name: EvaluationResult}``; the serialized
        results ride in the ledger entry so a resumed run can restore them.
        """
        serialized = {
            name: result.to_dict() for name, result in results.items()
        }
        tally = {"parallel_loops": 0, "serial_loops": 0}
        for result in results.values():
            for summary in result.loops.values():
                key = (
                    "parallel_loops" if summary.is_parallel else "serial_loops"
                )
                tally[key] += 1
        event = {
            "type": "task",
            "task": task,
            "configs": sorted(serialized),
            "attempt": attempt,
            "wall_s": wall_s,
            "cache_hit": cache_hit,
            "instructions": instructions,
            "path": path,
            "tally": tally,
            "results": serialized,
        }
        self._absorb_task(event)
        self._completed.setdefault(task, {}).update(serialized)
        self._append(event)

    def task_retry(self, task, attempt, reason):
        self._retries += 1
        self._append({
            "type": "retry", "task": task, "attempt": attempt,
            "reason": reason,
        })

    def task_quarantined(self, task, reason):
        self._quarantined[task] = reason
        self._append({"type": "quarantine", "task": task, "reason": reason})

    def task_resumed(self, task):
        """Note that a task's cells were restored from the ledger."""
        self._resumed += 1
        self._append({"type": "resumed", "task": task})

    def record_cache_stats(self, stats):
        """Snapshot end-of-run cache counters (profile store + code cache):
        ``{cache_name: {"entries", "size_bytes", "hits", "misses", ...}}``.
        The latest snapshot wins; ``repro cache stats`` reads it from the
        manifest of the most recent run."""
        self._cache_stats = dict(stats)
        self._append({"type": "cache_stats", "caches": self._cache_stats})

    def record_vec_decisions(self, summary):
        """Snapshot the vectorizer's aggregate decisions for the run's
        workload (see :func:`repro.interp.veccodegen.summarize_vec_decisions`):
        ``{"loops", "vectorized", "static_trip", "runtime_trip",
        "bailouts": {reason: count}}``. The latest snapshot wins and lands
        in the manifest, so `repro runs show` answers "how much of this
        sweep ran vectorized" without rerunning the planner."""
        self._vec_decisions = dict(summary)
        self._append({
            "type": "vec_decisions", "summary": self._vec_decisions,
        })

    def record_par_stats(self, stats):
        """Snapshot the parallel tier's executor counters for the run's
        workload (see :class:`repro.interp.parexec.ParExecutor`):
        ``{"workers", "doall_dispatches", "doall_chunks", "tls_commits",
        "tls_rollbacks", "tls_aborts", ...}``. The latest snapshot wins and
        lands in the manifest, so ``repro runs show`` answers "how much of
        this run executed on the pool, and how often speculation rolled
        back" without rerunning anything."""
        self._par_stats = dict(stats)
        self._append({"type": "par_stats", "stats": self._par_stats})

    def fuzz_case(self, *, seed, profile, verdict, case_id=None,
                  oracles=(), wall_s=0.0):
        """One differential-fuzzing oracle run (see :mod:`repro.fuzz`).

        ``verdict`` is ``"ok"`` or ``"quarantined"``; ``oracles`` lists the
        oracle kinds that fired (empty on agreement). The event rides in
        the same JSONL ledger as sweep tasks, so one ``repro runs show``
        answers both "what did the sweep do" and "what did the fuzzer
        find"."""
        event = {
            "type": "fuzz_case",
            "seed": seed,
            "profile": profile,
            "verdict": verdict,
            "case_id": case_id,
            "oracles": sorted(oracles),
            "wall_s": wall_s,
        }
        self._absorb_fuzz_case(event)
        self._append(event)

    def _absorb_fuzz_case(self, event):
        self._fuzz["cases"] += 1
        self._fuzz["wall_s"] = round(
            self._fuzz["wall_s"] + float(event.get("wall_s") or 0.0), 6)
        if event.get("verdict") == "quarantined":
            self._fuzz["quarantined"] += 1
        for oracle in event.get("oracles") or ():
            by_oracle = self._fuzz["by_oracle"]
            by_oracle[oracle] = by_oracle.get(oracle, 0) + 1

    def finish(self, status="complete"):
        self.status = status
        self._append({"type": "finish", "status": status})

    # -- resume ---------------------------------------------------------------

    def completed_results(self, task, config_names):
        """``{config_name: EvaluationResult}`` when the ledger covers every
        requested configuration of ``task``, else ``None``."""
        recorded = self._completed.get(task)
        if recorded is None:
            return None
        if any(name not in recorded for name in config_names):
            return None
        try:
            return {
                name: _result_from_dict(recorded[name])
                for name in config_names
            }
        except Exception:
            # A half-written or stale entry degrades to re-evaluation.
            self.corrupt_lines += 1
            return None

    # -- aggregation ----------------------------------------------------------

    def _absorb_task(self, event):
        self._tasks[event["task"]] = {
            k: v for k, v in event.items() if k != "results"
        }
        if event.get("cache_hit") is True:
            self._cache_hits += 1
        elif event.get("cache_hit") is False:
            self._cache_misses += 1
        self._instructions += int(event.get("instructions") or 0)
        self._task_wall_s += float(event.get("wall_s") or 0.0)
        tally = event.get("tally") or {}
        for key in self._outcomes:
            self._outcomes[key] += int(tally.get(key, 0))

    def _replay_ledger(self):
        try:
            text = self.ledger_path.read_text()
        except OSError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                self.corrupt_lines += 1
                continue
            kind = event.get("type")
            if kind in ("start", "resume"):
                schema = event.get("schema")
                if schema is not None and schema != RUN_LEDGER_SCHEMA:
                    raise ValueError(
                        f"run {self.run_id!r} was written by ledger schema "
                        f"{schema}, this code speaks {RUN_LEDGER_SCHEMA}"
                    )
            elif kind == "task":
                try:
                    self._absorb_task(event)
                    self._completed.setdefault(event["task"], {}).update(
                        event.get("results") or {}
                    )
                except Exception:
                    self.corrupt_lines += 1
            elif kind == "retry":
                self._retries += 1
            elif kind == "resumed":
                self._resumed += 1
            elif kind == "quarantine":
                self._quarantined[event.get("task")] = event.get("reason")
            elif kind == "cache_stats":
                caches = event.get("caches")
                if isinstance(caches, dict):
                    self._cache_stats = caches
            elif kind == "vec_decisions":
                summary = event.get("summary")
                if isinstance(summary, dict):
                    self._vec_decisions = summary
            elif kind == "par_stats":
                stats = event.get("stats")
                if isinstance(stats, dict):
                    self._par_stats = stats
            elif kind == "fuzz_case":
                try:
                    self._absorb_fuzz_case(event)
                except Exception:
                    self.corrupt_lines += 1

    # -- persistence ----------------------------------------------------------

    def _append(self, event):
        event = dict(event)
        event.setdefault("time", time.time())
        try:
            self.run_dir.mkdir(parents=True, exist_ok=True)
            with open(self.ledger_path, "a") as handle:
                handle.write(json.dumps(event) + "\n")
        except (OSError, TypeError, ValueError):
            self.write_errors += 1
            return
        self._write_manifest()

    def _write_manifest(self):
        manifest = self.summary()
        try:
            tmp = self.manifest_path.with_suffix(".tmp")
            tmp.write_text(json.dumps(manifest, indent=1))
            os.replace(tmp, self.manifest_path)
        except OSError:
            self.write_errors += 1

    # -- reporting ------------------------------------------------------------

    def summary(self):
        """The manifest dict (also what ``repro runs show`` prints)."""
        return {
            "schema": RUN_LEDGER_SCHEMA,
            "run_id": self.run_id,
            "status": self.status,
            "updated": time.time(),
            "tasks_done": len(self._tasks),
            "tasks_resumed": self._resumed,
            "tasks_quarantined": dict(self._quarantined),
            "retries": self._retries,
            "cache_hits": self._cache_hits,
            "cache_misses": self._cache_misses,
            "instructions": self._instructions,
            "task_wall_s": round(self._task_wall_s, 6),
            "outcomes": dict(self._outcomes),
            "cache_stats": dict(self._cache_stats),
            "vec_decisions": dict(self._vec_decisions),
            "par_stats": dict(self._par_stats),
            "fuzz": {
                "cases": self._fuzz["cases"],
                "quarantined": self._fuzz["quarantined"],
                "by_oracle": dict(self._fuzz["by_oracle"]),
                "wall_s": self._fuzz["wall_s"],
            },
            "write_errors": self.write_errors,
            "corrupt_lines": self.corrupt_lines,
        }

    @property
    def ledger_tasks(self):
        """How many tasks the ledger currently covers (incl. prior runs)."""
        return len(self._completed)

    @property
    def retries(self):
        return self._retries

    @property
    def resumed(self):
        return self._resumed

    @property
    def quarantined(self):
        return dict(self._quarantined)

    def describe(self):
        """One-line summary for run footers."""
        s = self.summary()
        parts = [
            f"run {self.run_id}",
            f"{s['tasks_done']} tasks",
        ]
        if s["tasks_resumed"]:
            parts.append(f"{s['tasks_resumed']} resumed")
        if s["retries"]:
            parts.append(f"{s['retries']} retries")
        if s["tasks_quarantined"]:
            parts.append(f"{len(s['tasks_quarantined'])} quarantined")
        parts.append(f"{s['cache_hits']} cache hits")
        parts.append(f"{s['cache_misses']} misses")
        return ", ".join(parts)

    def __repr__(self):
        return f"<RunTelemetry {self.run_id} ({len(self._tasks)} tasks)>"


# -- run registry ----------------------------------------------------------------


def list_runs(root=None):
    """Manifest dicts of every run under ``root``, newest first."""
    root = pathlib.Path(root) if root is not None else runs_root()
    manifests = []
    try:
        run_dirs = sorted(root.iterdir(), reverse=True)
    except OSError:
        return []
    for run_dir in run_dirs:
        manifest = load_manifest(run_dir.name, root)
        if manifest is not None:
            manifests.append(manifest)
    return manifests


def load_manifest(run_id, root=None):
    """One run's manifest dict, or ``None`` when absent/unreadable."""
    root = pathlib.Path(root) if root is not None else runs_root()
    try:
        data = json.loads((root / run_id / MANIFEST_NAME).read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict):
        return None
    data.setdefault("run_id", run_id)
    return data


def purge_runs(root=None):
    """Delete every run directory; returns the number removed."""
    root = pathlib.Path(root) if root is not None else runs_root()
    removed = 0
    try:
        run_dirs = list(root.iterdir())
    except OSError:
        return 0
    for run_dir in run_dirs:
        if not run_dir.is_dir():
            continue
        try:
            shutil.rmtree(run_dir)
            removed += 1
        except OSError:
            pass
    return removed


# -- formatting ------------------------------------------------------------------


def format_runs_table(manifests):
    """The ``repro runs`` listing."""
    if not manifests:
        return "no recorded runs"
    lines = [
        f"{'run id':24s}{'status':>12s}{'tasks':>7s}{'resumed':>9s}"
        f"{'retries':>9s}{'quarantined':>13s}"
    ]
    for manifest in manifests:
        lines.append(
            f"{manifest.get('run_id', '?'):24s}"
            f"{manifest.get('status', '?'):>12s}"
            f"{manifest.get('tasks_done', 0):>7d}"
            f"{manifest.get('tasks_resumed', 0):>9d}"
            f"{manifest.get('retries', 0):>9d}"
            f"{len(manifest.get('tasks_quarantined') or {}):>13d}"
        )
    return "\n".join(lines)


def format_run_summary(manifest):
    """The ``repro runs show RUN_ID`` / full-paper-run summary block."""
    outcomes = manifest.get("outcomes") or {}
    quarantined = manifest.get("tasks_quarantined") or {}
    lines = [
        f"run {manifest.get('run_id', '?')} [{manifest.get('status', '?')}]",
        f"  tasks:        {manifest.get('tasks_done', 0)} done, "
        f"{manifest.get('tasks_resumed', 0)} resumed from ledger, "
        f"{len(quarantined)} quarantined",
        f"  retries:      {manifest.get('retries', 0)}",
        f"  profile cache: {manifest.get('cache_hits', 0)} hits, "
        f"{manifest.get('cache_misses', 0)} misses",
        f"  instructions: {manifest.get('instructions', 0)} profiled",
        f"  task wall:    {manifest.get('task_wall_s', 0.0):.2f}s summed "
        f"across workers",
        f"  outcomes:     {outcomes.get('parallel_loops', 0)} parallel / "
        f"{outcomes.get('serial_loops', 0)} serial loop summaries",
    ]
    for name, stats in sorted((manifest.get("cache_stats") or {}).items()):
        lines.append(
            f"  {name}: {stats.get('entries', 0)} entries, "
            f"{stats.get('size_bytes', 0)} bytes, "
            f"{stats.get('hits', 0)} hits, {stats.get('misses', 0)} misses"
        )
    vec = manifest.get("vec_decisions") or {}
    if vec:
        bailouts = vec.get("bailouts") or {}
        lines.append(
            f"  vectorizer:   {vec.get('vectorized', 0)}/"
            f"{vec.get('loops', 0)} innermost loops vectorized "
            f"({vec.get('static_trip', 0)} static / "
            f"{vec.get('runtime_trip', 0)} runtime trip), "
            f"{sum(bailouts.values())} bailouts"
        )
        for reason, count in sorted(
            bailouts.items(), key=lambda item: (-item[1], item[0])
        ):
            lines.append(f"    bailout {reason}: {count}")
    par = manifest.get("par_stats") or {}
    if par:
        soundness = par.get("soundness") or {}
        lines.append(
            f"  parallel:     {soundness.get('runs_checked', 0)} runs "
            f"checked, {soundness.get('pool_commits', 0)} pool commits, "
            f"{soundness.get('tls_commits', 0)} TLS commits "
            f"({soundness.get('tls_rollbacks', 0)} rollbacks), "
            f"{par.get('soundness_mismatches', 0)} mismatches"
        )
        for workers, geomean in sorted(
            (par.get("achieved_vs_jit_geomeans") or {}).items(),
            key=lambda item: int(item[0]),
        ):
            lines.append(
                f"    achieved @{workers}w: {geomean}x vs jit"
            )
    fuzz = manifest.get("fuzz") or {}
    if fuzz.get("cases"):
        lines.append(
            f"  fuzz:         {fuzz.get('cases', 0)} oracle runs, "
            f"{fuzz.get('quarantined', 0)} quarantined "
            f"({fuzz.get('wall_s', 0.0):.2f}s)"
        )
        for oracle, count in sorted((fuzz.get("by_oracle") or {}).items()):
            lines.append(f"    oracle {oracle}: {count} disagreement(s)")
    for task, reason in sorted(quarantined.items()):
        lines.append(f"  quarantined:  {task} ({reason})")
    return "\n".join(lines)
