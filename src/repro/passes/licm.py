"""Loop-invariant code motion (conservative LICM).

Hoists into the preheader:

* pure, non-trapping scalar computation (add/sub/mul/bitwise, compares,
  GEPs, casts, selects) whose operands are loop-invariant — division and
  remainder are excluded because speculating them can introduce traps;
* loads from loop-invariant addresses, when no store or memory-writing call
  inside the loop may alias the loaded location (base-object alias test:
  two distinct globals never alias; anything involving pointer arguments,
  loaded pointers, or escaping allocas conservatively may).

This matters to the study's baseline: without LICM, the bound re-load
(``i < N`` with global ``N``) charges one memory read per iteration that
``-Ofast`` would have hoisted, slightly inflating sequential cost and
injecting spurious per-iteration consumer events.
"""

from __future__ import annotations

from ..analysis.loop_info import LoopInfo
from ..ir.instructions import (
    GEP,
    BinaryOp,
    Call,
    Cast,
    FCmp,
    ICmp,
    Load,
    Select,
    Store,
)
from ..ir.values import GlobalVariable

_NON_TRAPPING_BINOPS = frozenset({
    "add", "sub", "mul", "and", "or", "xor", "shl", "ashr", "lshr",
    "fadd", "fsub", "fmul",
})


def _base_object(pointer):
    """Trace a pointer to its base object (global / alloca / other)."""
    while isinstance(pointer, GEP):
        pointer = pointer.pointer
    return pointer


def _may_alias(base_a, base_b):
    """Base-object alias test: distinct globals are disjoint; everything
    else conservatively aliases."""
    if base_a is base_b:
        return True
    if isinstance(base_a, GlobalVariable) and isinstance(base_b, GlobalVariable):
        return False
    return True


def _loop_memory_writes(loop, purity_classes):
    """All store bases in the loop, plus a flag for opaque writers (calls
    that may write memory)."""
    bases = []
    opaque = False
    for block in loop.blocks:
        for instruction in block.instructions:
            if isinstance(instruction, Store):
                bases.append(_base_object(instruction.pointer))
            elif isinstance(instruction, Call):
                callee = instruction.callee
                if callee.is_intrinsic:
                    info = callee.intrinsic
                    if info.writes_memory or info.global_state:
                        opaque = True
                else:
                    # User calls may write anything without mod-ref analysis.
                    opaque = True
    return bases, opaque


def _hoist_loop(loop, cfg, purity_classes):
    preheader = loop.preheader(cfg)
    if preheader is None:
        return 0
    store_bases, opaque_writes = _loop_memory_writes(loop, purity_classes)
    hoisted = 0
    changed = True
    # Walk the body in function block order, not `loop.blocks` set order:
    # the hoist sequence fixes the preheader's instruction order, and every
    # downstream profile timestamp depends on it being reproducible.
    body = loop.blocks_in_function_order()
    while changed:
        changed = False
        for block in body:
            for instruction in list(block.instructions):
                if not _hoistable(
                    instruction, loop, store_bases, opaque_writes
                ):
                    continue
                block.remove_instruction(instruction)
                preheader.insert_before(preheader.terminator, instruction)
                hoisted += 1
                changed = True
    return hoisted


def _hoistable(instruction, loop, store_bases, opaque_writes):
    if isinstance(instruction, BinaryOp):
        if instruction.opcode not in _NON_TRAPPING_BINOPS:
            return False
    elif isinstance(instruction, (ICmp, FCmp, GEP, Cast, Select)):
        pass
    elif isinstance(instruction, Load):
        if opaque_writes:
            return False
        # Only loads in the header are guaranteed to execute on every trip;
        # hoisting a conditionally-executed load could speculate a trap
        # (e.g. a guarded out-of-bounds access).
        if instruction.parent is not loop.header:
            return False
        base = _base_object(instruction.pointer)
        if any(_may_alias(base, store_base) for store_base in store_bases):
            return False
    else:
        return False
    return all(loop.is_invariant(operand) for operand in instruction.operands)


def run_licm(function):
    """Hoist invariant code in every loop (innermost first, so hoisted
    values can cascade outward); returns the number of hoists."""
    if function.is_declaration or function.is_intrinsic:
        return 0
    total = 0
    # Hoisting moves instructions between existing blocks only, so the CFG
    # and loop structure stay valid across the whole pass.
    loop_info = LoopInfo(function)
    for loop in loop_info.loops_in_postorder():
        total += _hoist_loop(loop, loop_info.cfg, None)
    return total


def run_licm_module(module):
    return sum(run_licm(function) for function in module.defined_functions())
