"""Constant folding: evaluate instructions whose operands are all constant.

A small but real optimization pass: the study's time metric is the dynamic
IR instruction count, so folding keeps frontend-generated arithmetic noise
from inflating sequential cost (mirroring the paper's use of ``-Ofast``
output as the baseline).
"""

from __future__ import annotations

from ..ir.instructions import BinaryOp, Cast, FCmp, ICmp, Select
from ..ir.values import ConstantFloat, ConstantInt

_ICMP = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b,
    "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b,
    "sge": lambda a, b: a >= b,
}

_FCMP = {
    "oeq": lambda a, b: a == b,
    "one": lambda a, b: a != b,
    "olt": lambda a, b: a < b,
    "ole": lambda a, b: a <= b,
    "ogt": lambda a, b: a > b,
    "oge": lambda a, b: a >= b,
}


def _fold_binop(instruction):
    lhs, rhs = instruction.lhs, instruction.rhs
    opcode = instruction.opcode
    if isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt):
        a, b = lhs.value, rhs.value
        if opcode == "add":
            result = a + b
        elif opcode == "sub":
            result = a - b
        elif opcode == "mul":
            result = a * b
        elif opcode == "sdiv":
            if b == 0:
                return None
            result = int(a / b)  # C-style truncation toward zero
        elif opcode == "srem":
            if b == 0:
                return None
            result = a - int(a / b) * b
        elif opcode == "and":
            result = a & b
        elif opcode == "or":
            result = a | b
        elif opcode == "xor":
            result = a ^ b
        elif opcode == "shl":
            result = a << (b % instruction.type.width)
        elif opcode == "ashr":
            result = a >> (b % instruction.type.width)
        elif opcode == "lshr":
            width = instruction.type.width
            result = (a & ((1 << width) - 1)) >> (b & (width - 1))
        elif opcode == "udiv":
            if b == 0:
                return None
            mask = (1 << instruction.type.width) - 1
            result = (a & mask) // (b & mask)
        elif opcode == "urem":
            if b == 0:
                return None
            mask = (1 << instruction.type.width) - 1
            result = (a & mask) % (b & mask)
        else:
            return None
        return ConstantInt(instruction.type, result)
    if isinstance(lhs, ConstantFloat) and isinstance(rhs, ConstantFloat):
        a, b = lhs.value, rhs.value
        if opcode == "fadd":
            return ConstantFloat(a + b)
        if opcode == "fsub":
            return ConstantFloat(a - b)
        if opcode == "fmul":
            return ConstantFloat(a * b)
        if opcode == "fdiv" and b != 0.0:
            return ConstantFloat(a / b)
    # Algebraic identities with one constant operand.
    if isinstance(rhs, ConstantInt):
        if rhs.value == 0 and opcode in ("add", "sub", "or", "xor", "shl", "ashr",
                                         "lshr"):
            return lhs
        if rhs.value == 1 and opcode in ("mul", "sdiv"):
            return lhs
        if rhs.value == 0 and opcode == "mul":
            return ConstantInt(instruction.type, 0)
    if isinstance(lhs, ConstantInt):
        if lhs.value == 0 and opcode in ("add", "or", "xor"):
            return rhs
        if lhs.value == 1 and opcode == "mul":
            return rhs
        if lhs.value == 0 and opcode == "mul":
            return ConstantInt(instruction.type, 0)
    return None


def _fold_instruction(instruction):
    if isinstance(instruction, BinaryOp):
        return _fold_binop(instruction)
    if isinstance(instruction, ICmp):
        lhs, rhs = instruction.lhs, instruction.rhs
        if isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt):
            from ..ir.types import I1

            return ConstantInt(I1, 1 if _ICMP[instruction.predicate](lhs.value, rhs.value) else 0)
    if isinstance(instruction, FCmp):
        lhs, rhs = instruction.lhs, instruction.rhs
        if isinstance(lhs, ConstantFloat) and isinstance(rhs, ConstantFloat):
            from ..ir.types import I1

            return ConstantInt(I1, 1 if _FCMP[instruction.predicate](lhs.value, rhs.value) else 0)
    if isinstance(instruction, Select):
        if isinstance(instruction.condition, ConstantInt):
            return (
                instruction.true_value
                if instruction.condition.value
                else instruction.false_value
            )
        if instruction.true_value is instruction.false_value:
            return instruction.true_value
    if isinstance(instruction, Cast):
        value = instruction.value
        if instruction.opcode == "sitofp" and isinstance(value, ConstantInt):
            return ConstantFloat(float(value.value))
        if instruction.opcode == "fptosi" and isinstance(value, ConstantFloat):
            return ConstantInt(instruction.type, int(value.value))
        if instruction.opcode in ("zext", "trunc") and isinstance(value, ConstantInt):
            return ConstantInt(instruction.type, value.value)
    return None


def run_constfold(function):
    """Fold constant expressions until fixpoint; returns folds performed."""
    if function.is_declaration or function.is_intrinsic:
        return 0
    folded = 0
    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            for instruction in list(block.instructions):
                replacement = _fold_instruction(instruction)
                if replacement is not None and replacement is not instruction:
                    instruction.replace_all_uses_with(replacement)
                    instruction.erase_from_parent()
                    folded += 1
                    changed = True
    return folded


def run_constfold_module(module):
    return sum(run_constfold(function) for function in module.defined_functions())
