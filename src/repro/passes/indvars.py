"""Induction-variable canonicalization (a focused ``indvars``).

For every loop in simplified form this pass guarantees a *canonical IV*: an
integer header phi with SCEV ``{0,+,1}``. If one exists it is reused;
otherwise — provided the loop already has some computable affine IV to sync
with — a fresh ``civ`` phi and latch increment are inserted. The canonical
IV is what lets the Loopapalooza instrumentation "uniquely identify loops
within arbitrarily complex loop nests" and index per-iteration records.

Returns an :class:`IndVarsResult` mapping each loop id to its canonical phi
(if any) and the constant trip count when SCEV can prove one.
"""

from __future__ import annotations

from ..analysis.loop_info import LoopInfo
from ..analysis.scev import SCEVAddRec, SCEVConstant, ScalarEvolution
from ..ir.instructions import BinaryOp, Phi
from ..ir.types import I32
from ..ir.values import ConstantInt


class IndVarsResult:
    """Per-function canonicalization summary."""

    def __init__(self):
        self.canonical_iv = {}   # loop_id -> Phi
        self.trip_counts = {}    # loop_id -> int
        self.inserted = 0

    def __repr__(self):
        return (
            f"<IndVarsResult {len(self.canonical_iv)} canonical IVs, "
            f"{self.inserted} inserted>"
        )


def _find_canonical(loop, scev):
    for phi in loop.header.phis():
        if not phi.type.is_integer:
            continue
        expr = scev.get(phi)
        if (
            isinstance(expr, SCEVAddRec)
            and expr.loop is loop
            and expr.start == SCEVConstant(0)
            and expr.step == SCEVConstant(1)
        ):
            return phi
    return None


def _has_affine_iv(loop, scev):
    for phi in loop.header.phis():
        expr = scev.get(phi)
        if isinstance(expr, SCEVAddRec) and expr.loop is loop and expr.is_affine():
            return True
    return False


def _insert_canonical(loop, cfg):
    preheader = loop.preheader(cfg)
    latch = loop.single_latch()
    if preheader is None or latch is None:
        return None
    civ = Phi(I32, "civ")
    loop.header.insert_phi(civ)
    increment = BinaryOp("add", civ, ConstantInt(I32, 1), "civ.next")
    latch.insert_before(latch.terminator, increment)
    civ.add_incoming(ConstantInt(I32, 0), preheader)
    civ.add_incoming(increment, latch)
    return civ


def run_indvars(function):
    """Canonicalize IVs in one function; returns an :class:`IndVarsResult`."""
    result = IndVarsResult()
    if function.is_declaration or function.is_intrinsic:
        return result
    loop_info = LoopInfo(function)
    scev = ScalarEvolution(function, loop_info)
    for loop in loop_info.all_loops():
        canonical = _find_canonical(loop, scev)
        if canonical is None and _has_affine_iv(loop, scev):
            canonical = _insert_canonical(loop, loop_info.cfg)
            if canonical is not None:
                result.inserted += 1
        if canonical is not None:
            result.canonical_iv[loop.loop_id] = canonical
        trip = scev.trip_count(loop)
        if trip is not None:
            result.trip_counts[loop.loop_id] = trip
    return result


def run_indvars_module(module):
    """Run on every defined function; returns ``{function_name: result}``."""
    return {
        function.name: run_indvars(function)
        for function in module.defined_functions()
    }
