"""Dead code elimination: remove unused, side-effect-free instructions."""

from __future__ import annotations

from ..ir.instructions import Phi


def run_dce(function):
    """Iteratively delete trivially dead instructions.

    An instruction is dead when it has no uses and no side effects
    (arithmetic, comparisons, loads, GEPs, casts, selects, phis, allocas
    whose address is unused). Returns the number of deletions.
    """
    if function.is_declaration or function.is_intrinsic:
        return 0
    removed = 0
    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            for instruction in list(block.instructions):
                if instruction.is_terminator or instruction.has_side_effects():
                    continue
                if instruction.num_uses == 0:
                    instruction.erase_from_parent()
                    removed += 1
                    changed = True
                elif isinstance(instruction, Phi) and all(
                    user is instruction for user in instruction.users()
                ):
                    instruction.erase_from_parent()
                    removed += 1
                    changed = True
    return removed


def run_dce_module(module):
    return sum(run_dce(function) for function in module.defined_functions())
