"""Loop fission (distribution) guided by the statement dependence graph.

A loop whose body mixes an order-carrying component (a serial chain, an
unproven-independence store) with independently-parallel statements is
split: the SCC condensation of its statement-level dependence graph
(:meth:`~repro.analysis.depend.DependenceAnalysis.statement_graph`) is
partitioned into groups, and each group becomes its own loop running the
full iteration space. The serial SCC is quarantined into a narrow loop
while the remainder becomes provably DOALL — the paper's limit study then
*measures* the parallelism this unlocks rather than assuming it.

Mechanics: the original loop keeps its header (and therefore its
``loop_id`` — profiles and figures join before/after on it) and hosts the
*last* group; every earlier group is cloned into a fresh counted loop
chained between the preheader and the original header. Each clone carries
the backward slice of its statements; values crossing group boundaries are
*replicated* (pure arithmetic, address computations, and loads proven
disjoint from every write of the loop) rather than communicated. Loops
where a slice would need a store, a possibly-overlapping load, or another
group's irreducible register recurrence are left alone.

Legality notes:

* calls and possibly-trapping divisions fail the statement graph outright,
  so no observable side effect is ever reordered;
* every memory pair that is not provably independent across iterations
  keeps its statements in one group (bidirectional edge), and
  same-iteration ordering between groups follows program order, so the
  memory state after the loop sequence equals the original;
* only header phis can be live out of a canonical loop; each one stays in
  the group that computes it, and outside uses are rewritten to the copy
  that survives.

Provenance: clones are tagged ``DISTR`` (ICC's opt-report taxonomy, see
SNIPPETS.md) with the source loop id; the host keeps its id and is tagged
``DISTR`` pointing at itself so reporting can tell it was restructured.
"""

from __future__ import annotations

import re

from ..analysis.depend import DependenceAnalysis, module_memory_summaries
from ..analysis.invalidation import invalidate_module_analyses
from ..analysis.loop_info import (
    ORIGIN_DISTR,
    LoopInfo,
    record_loop_origin,
)
from ..analysis.scev import ScalarEvolution
from ..ir.instructions import CondBr, Br, Load, Phi, Store
from .inline import _clone_instruction

# Safety valve: bounds the rescan loop even if a transformed loop were
# (wrongly) considered splittable again and again.
_MAX_FISSIONS_PER_FUNCTION = 64

_FISSION_TAG = re.compile(r"\.fiss(\d+)g\d+")


def _next_fission_tag(function):
    """Smallest unused ``fissN`` tag in ``function``. Derived from block
    names rather than a counter so compiling one source twice yields
    identically-named clones (loop ids feed cache keys and profiles)."""
    used = 0
    for block in function.blocks:
        for match in _FISSION_TAG.finditer(block.name):
            used = max(used, int(match.group(1)))
    return f"fiss{used + 1}"


def run_loop_fission_module(module, summaries=None):
    """Distribute every profitable loop in ``module``; returns the count."""
    if summaries is None:
        summaries = module_memory_summaries(module)
    applied = 0
    for function in module.defined_functions():
        applied += run_loop_fission(function, summaries)
    return applied


def run_loop_fission(function, summaries=None):
    """Distribute profitable loops of one function; returns the count."""
    module = function.module
    if summaries is None and module is not None:
        summaries = module_memory_summaries(module)
    applied = 0
    while applied < _MAX_FISSIONS_PER_FUNCTION:
        loop_info = LoopInfo(function)
        scev = ScalarEvolution(function, loop_info)
        dep = DependenceAnalysis(function, loop_info, scev, summaries)
        changed = False
        for loop in loop_info.loops_in_postorder():
            if _fission_loop(module, function, dep, loop):
                applied += 1
                changed = True
                invalidate_module_analyses(function=function)
                break  # analyses are stale; rescan from scratch
        if not changed:
            break
    return applied


def _merge_storeless_groups(groups, statements):
    """Fold groups that carry no store (and are not serial) into a
    neighbouring group. A pure-scalar component gets *replicated* into its
    consumers by the slicer anyway, so giving it a loop of its own would
    only compute dead values — and, worse, recreate a splittable
    serial/parallel mix in every clone, so fission would re-trigger on its
    own output until the safety valve tripped."""
    merged = []
    pending = []  # leading store-less members waiting for a real group
    for members, is_serial in groups:
        has_store = any(isinstance(statements[i], Store) for i in members)
        if not is_serial and not has_store:
            if merged:
                prev_members, prev_serial = merged[-1]
                merged[-1] = (sorted(prev_members + list(members)),
                              prev_serial)
            else:
                pending.extend(members)
            continue
        if pending:
            members = sorted(pending + list(members))
            pending = []
        merged.append((list(members), is_serial))
    if pending:
        if not merged:
            return []
        prev_members, prev_serial = merged[-1]
        merged[-1] = (sorted(prev_members + pending), prev_serial)
    return merged


def _load_pullable(dep, loop, statements, group_of, load_index, gi, trip):
    """May the load at ``load_index`` be re-executed inside group ``gi``'s
    loop and still read the value it read in place?

    When group ``gi`` runs, every earlier group has completed *all* its
    iterations and later groups none — so the memory image at the copy's
    iteration ``i`` differs from the original read point. The read is
    still exact when, for every store of the loop, either the store never
    touches the load's address, or it is the same-iteration producer the
    load always saw (same affine subscript, written earlier in program
    order by a group that is not later than ``gi``)."""
    load = statements[load_index]
    access = dep._statement_access(loop, load)
    if access is None:
        return True  # iteration-private storage
    fp_load = dep._footprint(access.pointer, loop, access.block)
    for store_index, statement in enumerate(statements):
        if not isinstance(statement, Store):
            continue
        write = dep._statement_access(loop, statement)
        if write is None:
            continue
        alias = dep._alias(access, write)
        if alias == "no":
            continue
        if alias == "may":
            return False
        fp_store = dep._footprint(write.pointer, loop, write.block)
        if fp_load is None or fp_store is None:
            return False
        if not (fp_load.exact and fp_store.exact):
            return False
        if fp_load.terms != fp_store.terms \
                or fp_load.stride != fp_store.stride:
            return False
        delta = fp_load.const - fp_store.const
        stride = fp_load.stride
        if stride == 0:
            if delta == 0:
                return False  # every store iteration hits the address
            continue
        if delta % stride != 0:
            continue  # subscripts never meet
        k = delta // stride
        if k == 0:
            # Same-iteration producer. Visible originally iff it precedes
            # the load; visible to the copy iff its group already ran (or
            # shares the copy's loop, where statement order is preserved).
            if store_index > load_index and group_of[store_index] < gi:
                return False
            continue
        if trip is not None and abs(k) >= trip:
            continue  # conflicting iteration is outside the trip space
        return False  # cross-iteration producer: order would change
    return True


def _fission_loop(module, function, dep, loop):
    """Attempt to distribute one loop. True when the IR was restructured."""
    graph = dep.statement_graph(loop)
    if graph.failure is not None:
        return False
    shape = graph.shape
    statements = graph.statements
    groups = _merge_storeless_groups(graph.fission_groups(), statements)
    if len(groups) < 2:
        return False
    serial_flags = [is_serial for _, is_serial in groups]
    if not any(serial_flags) or all(serial_flags):
        return False  # nothing to quarantine (or nothing parallel to free)

    index_of = {id(s): i for i, s in enumerate(statements)}
    header, latch = shape.header, shape.latch
    preheader, compare = shape.preheader, shape.compare
    total = len(groups)
    group_of = {}
    for gi, (members, _) in enumerate(groups):
        for i in members:
            group_of[i] = gi
    # Defensive: every dependence edge must point into the same or a later
    # group, or the partition would reorder dependent statements.
    for i in range(len(statements)):
        for j in graph.edges[i]:
            if group_of[i] > group_of[j]:
                return False

    # -- phi ownership: each irreducible recurrence lives in one group ------
    owner = {}       # id(phi) -> owning group index
    phi_class = {}   # id(phi) -> REG_* (only non-computable/reduction phis)
    for phi, reg_class, members in graph.phi_groups:
        phi_class[id(phi)] = reg_class
        if members:
            owning = {group_of[i] for i in members}
            if len(owning) != 1:
                return False  # clique split across groups (cannot happen)
            owner[id(phi)] = owning.pop()
        else:
            owner[id(phi)] = total - 1  # unused recurrence stays in the host

    header_phis = list(header.phis())
    trip = dep._trip(loop)
    write_accesses = []
    for statement in statements:
        if isinstance(statement, Store):
            access = dep._statement_access(loop, statement)
            if access is not None:
                write_accesses.append(access)

    def close_slice(roots, extra_phis=()):
        """Backward slice of ``roots``: the statement set and header phis a
        group's loop must materialize."""
        keep = set(roots)
        phis_needed = {}
        work = list(keep)

        def need_phi(phi):
            if id(phi) in phis_needed:
                return
            phis_needed[id(phi)] = phi
            latch_value = phi.incoming_for_block(latch)
            j = index_of.get(id(latch_value))
            if j is not None and j not in keep:
                keep.add(j)
                work.append(j)

        for phi in extra_phis:
            need_phi(phi)
        for operand in compare.operands:
            if isinstance(operand, Phi) and operand.parent is header:
                need_phi(operand)
        while work:
            statement = statements[work.pop()]
            for operand in statement.operands:
                j = index_of.get(id(operand))
                if j is not None:
                    if j not in keep:
                        keep.add(j)
                        work.append(j)
                elif isinstance(operand, Phi) and operand.parent is header:
                    need_phi(operand)
        return keep, phis_needed

    def replicable(i, gi):
        statement = statements[i]
        if isinstance(statement, Store):
            return False
        if isinstance(statement, Load):
            if dep.load_duplicable(loop, statement, write_accesses, trip):
                return True
            return _load_pullable(dep, loop, statements, group_of, i, gi,
                                  trip)
        return True  # pure ops (trapping divisions failed the graph build)

    # -- per-group slices + legality ----------------------------------------
    slices = []
    for gi, (members, _) in enumerate(groups):
        if gi == total - 1:
            extra = [phi for phi in header_phis
                     if phi_class.get(id(phi)) is None
                     or owner[id(phi)] == gi]
        else:
            extra = [phi for phi in header_phis
                     if phi_class.get(id(phi)) is not None
                     and owner[id(phi)] == gi]
        keep, phis_needed = close_slice(members, extra)
        for pid in phis_needed:
            if pid in phi_class and owner[pid] != gi:
                return False  # needs another group's recurrence value
        for i in keep:
            if group_of[i] != gi and not replicable(i, gi):
                return False
        slices.append((keep, phis_needed))

    # -- build the clone loops ----------------------------------------------
    tag = _next_fission_tag(function)
    clones = []  # (header clone, bridge, value_map)
    insert_after = preheader
    pred_block = preheader  # where each clone's phis receive their init
    for gi in range(total - 1):
        keep, phis_needed = slices[gi]
        suffix = f".{tag}g{gi + 1}"
        block_map = {}
        header_clone = function.insert_block_after(
            insert_after, header.name + suffix)
        block_map[id(header)] = header_clone
        insert_after = header_clone
        for block in shape.chain:
            clone = function.insert_block_after(
                insert_after, block.name + suffix)
            block_map[id(block)] = clone
            insert_after = clone
        bridge = function.insert_block_after(
            insert_after, f"{header.name}{suffix}.next")
        insert_after = bridge

        value_map = {}
        phi_clones = []
        for phi in header_phis:
            if id(phi) not in phis_needed:
                continue
            phi_clone = Phi(phi.type,
                            f"{phi.name}{suffix}" if phi.name else "")
            header_clone.append(phi_clone)
            phi_clone.add_incoming(phi.incoming_for_block(preheader),
                                   pred_block)
            value_map[id(phi)] = phi_clone
            phi_clones.append((phi, phi_clone))
        compare_clone = _clone_instruction(compare, value_map, block_map)
        header_clone.append(compare_clone)
        header_clone.append(CondBr(
            compare_clone, block_map[id(shape.body_entry)], bridge))
        for block in shape.chain:
            clone = block_map[id(block)]
            for instruction in block.instructions:
                if instruction.is_terminator:
                    clone.append(_clone_instruction(
                        instruction, value_map, block_map))
                    continue
                if index_of[id(instruction)] in keep:
                    copy = _clone_instruction(
                        instruction, value_map, block_map)
                    value_map[id(instruction)] = copy
                    clone.append(copy)
        latch_clone = block_map[id(latch)]
        for phi, phi_clone in phi_clones:
            latch_value = phi.incoming_for_block(latch)
            phi_clone.add_incoming(
                value_map.get(id(latch_value), latch_value), latch_clone)
        bridge.append(Br(header))  # retargeted below for non-final bridges
        clones.append((header_clone, bridge, value_map))
        pred_block = bridge

    # -- wire the chain: preheader -> clones... -> original loop ------------
    preheader.terminator.replace_successor(header, clones[0][0])
    for gi in range(len(clones) - 1):
        clones[gi][1].terminator.replace_successor(header, clones[gi + 1][0])
    last_bridge = clones[-1][1]
    for phi in header_phis:
        for index, block in enumerate(phi.incoming_blocks):
            if block is preheader:
                phi.incoming_blocks[index] = last_bridge

    # -- prune the host (original) loop down to its own slice ---------------
    host_keep, host_phis = slices[-1]
    for block in shape.chain:
        for instruction in reversed(list(block.instructions)):
            if instruction.is_terminator:
                continue
            if index_of[id(instruction)] not in host_keep:
                block.remove_instruction(instruction)
                instruction.drop_all_references()
    for phi in header_phis:
        if id(phi) in host_phis:
            continue
        replacement = clones[owner[id(phi)]][2][id(phi)]
        if phi.uses:
            phi.replace_all_uses_with(replacement)
        header.remove_instruction(phi)
        phi.drop_all_references()

    # -- provenance + log ----------------------------------------------------
    source_id = loop.loop_id
    new_ids = []
    if module is not None:
        for gi, (header_clone, _, _) in enumerate(clones):
            clone_id = f"{function.name}.{header_clone.name}"
            serial = "serial" if groups[gi][1] else "parallel"
            record_loop_origin(module, clone_id, ORIGIN_DISTR, source_id,
                               note=f"group {gi + 1}/{total} ({serial})")
            new_ids.append(clone_id)
        serial = "serial" if groups[-1][1] else "parallel"
        record_loop_origin(module, source_id, ORIGIN_DISTR, source_id,
                           note=f"fission host: group {total}/{total} "
                                f"({serial})")
        module.transform_log.append({
            "pass": "fission",
            "function": function.name,
            "source": source_id,
            "loops": new_ids + [source_id],
            "groups": total,
            "serial_groups": sum(serial_flags),
        })
    return True
