"""Pass manager: the fixed optimization pipeline the study compiles with.

The paper feeds LP the IR "after [it has] been optimized (using -Ofast)" and
then canonicalizes with loopsimplify/indvars. Our equivalent pipeline is:

    simplify-cfg -> mem2reg -> constfold -> gvn -> dce -> simplify-cfg
    -> loop-simplify -> licm -> indvars

with verification after every stage when ``verify_each`` is set (the default
in tests; off by default for speed in large sweeps). Setting the
``REPRO_VERIFY_PASSES=1`` environment variable forces inter-pass
verification everywhere — CI runs the full suite under it — and verifier
failures are attributed to the stage that introduced them.

With ``transform=True`` (or ``REPRO_TRANSFORM=1``) the opt-in structural
stage runs after canonicalization:

    fission -> peel -> fusion -> loop-simplify -> dce

Each stage boundary *explicitly invalidates* every live CFG/LoopInfo
snapshot of the module: a pass that cached an analysis across a mutation
now raises :class:`~repro.errors.StaleAnalysisError` instead of silently
computing with blocks that no longer exist (the bug this invalidation
protocol flushed out). The pipeline configuration is fingerprinted onto
``module.pipeline_fingerprint`` so code caches keyed on the printed IR can
tell apart entries produced under different pipelines.
"""

from __future__ import annotations

import os

from ..analysis.invalidation import invalidate_module_analyses
from ..errors import VerificationError
from ..ir.verifier import verify_module
from .constfold import run_constfold_module
from .dce import run_dce_module
from .gvn import run_gvn_module
from .indvars import run_indvars_module
from .licm import run_licm_module
from .loop_fission import run_loop_fission_module
from .loop_fusion import run_loop_fusion_module
from .loop_peel import run_loop_peel_module
from .loop_simplify import run_loop_simplify_module
from .mem2reg import run_mem2reg_module
from .simplify_cfg import run_simplify_cfg_module

# Bumped whenever a pipeline stage changes behaviour in a way that alters
# the IR it can produce; part of every pipeline fingerprint, so stale code
# caches die on upgrade instead of replaying old codegen.
PIPELINE_VERSION = 1


class PipelineResult:
    """What the standard pipeline did to a module."""

    def __init__(self):
        self.promoted_allocas = 0
        self.folded_constants = 0
        self.gvn_removed = 0
        self.removed_instructions = 0
        self.cfg_edits = 0
        self.loop_edits = 0
        self.hoisted = 0
        self.indvars = {}
        self.fissioned = 0
        self.peeled = 0
        self.fused = 0

    def __repr__(self):
        return (
            f"<PipelineResult promoted={self.promoted_allocas} "
            f"folded={self.folded_constants} dce={self.removed_instructions} "
            f"cfg={self.cfg_edits} loops={self.loop_edits}>"
        )


def verify_passes_forced():
    """Is inter-pass verification forced via ``REPRO_VERIFY_PASSES``?"""
    return os.environ.get("REPRO_VERIFY_PASSES", "0") not in ("", "0")


def transform_enabled():
    """Is the structural transform stage opted in via ``REPRO_TRANSFORM``?"""
    return os.environ.get("REPRO_TRANSFORM", "0") not in ("", "0")


def pipeline_fingerprint(transform):
    """A short stable token naming the pipeline configuration that produced
    a module. Folded into code-cache keys (see ``interp.codegen``): two
    modules whose final IR prints identically may still behave differently
    to a cache that also stores pipeline-derived metadata, and a version
    bump must always miss."""
    return f"pipe{PIPELINE_VERSION}:{'T' if transform else '-'}"


def _checkpoint(module, stage):
    """Verify and attribute any failure to the pipeline stage that ran."""
    try:
        verify_module(module)
    except VerificationError as error:
        raise VerificationError(
            [f"after {stage}: {problem}" for problem in error.problems]
        ) from None


def run_standard_pipeline(module, verify_each=False, transform=None):
    """Run the study's compilation pipeline on ``module`` in place.

    ``transform`` opts into the structural stage (fission/peel/fusion);
    ``None`` defers to the ``REPRO_TRANSFORM`` environment variable.
    """
    result = PipelineResult()
    verify_each = verify_each or verify_passes_forced()
    if transform is None:
        transform = transform_enabled()

    def checkpoint(stage):
        # Every pass just mutated the IR: any CFG/LoopInfo snapshot built
        # against the previous stage is now a lie. Kill them all so a
        # stale reuse raises StaleAnalysisError instead of returning
        # blocks that were merged or erased (the bug this fixed: a cached
        # LoopInfo surviving simplify-cfg handed licm dead headers).
        invalidate_module_analyses(module)
        if verify_each:
            _checkpoint(module, stage)

    result.cfg_edits += run_simplify_cfg_module(module)
    checkpoint("simplify-cfg")
    result.promoted_allocas = run_mem2reg_module(module)
    checkpoint("mem2reg")
    result.folded_constants = run_constfold_module(module)
    checkpoint("constfold")
    result.gvn_removed = run_gvn_module(module)
    checkpoint("gvn")
    result.removed_instructions = run_dce_module(module)
    checkpoint("dce")
    result.cfg_edits += run_simplify_cfg_module(module)
    checkpoint("simplify-cfg (late)")
    result.loop_edits = run_loop_simplify_module(module)
    checkpoint("loop-simplify")
    result.hoisted = run_licm_module(module)
    checkpoint("licm")
    result.indvars = run_indvars_module(module)
    _checkpoint(module, "indvars")
    invalidate_module_analyses(module)
    if transform:
        run_transform_pipeline(module, result=result,
                               verify_each=verify_each)
    module.pipeline_fingerprint = pipeline_fingerprint(transform)
    return result


def run_transform_pipeline(module, result=None, verify_each=False):
    """The opt-in structural stage: dependence-guided fission, peeling and
    fusion, followed by re-canonicalization and cleanup. Runs after the
    standard pipeline (the passes assume simplified, indvars-canonical
    loops). Returns the :class:`PipelineResult` it updated."""
    if result is None:
        result = PipelineResult()
    verify_each = verify_each or verify_passes_forced()

    def checkpoint(stage):
        invalidate_module_analyses(module)
        if verify_each:
            _checkpoint(module, stage)

    result.fissioned = run_loop_fission_module(module)
    checkpoint("loop-fission")
    result.peeled = run_loop_peel_module(module)
    checkpoint("loop-peel")
    result.fused = run_loop_fusion_module(module)
    checkpoint("loop-fusion")
    result.loop_edits += run_loop_simplify_module(module)
    checkpoint("loop-simplify (post-transform)")
    result.removed_instructions += run_dce_module(module)
    _checkpoint(module, "dce (post-transform)")
    invalidate_module_analyses(module)
    return result
