"""Pass manager: the fixed optimization pipeline the study compiles with.

The paper feeds LP the IR "after [it has] been optimized (using -Ofast)" and
then canonicalizes with loopsimplify/indvars. Our equivalent pipeline is:

    simplify-cfg -> mem2reg -> constfold -> gvn -> dce -> simplify-cfg
    -> loop-simplify -> licm -> indvars

with verification after every stage when ``verify_each`` is set (the default
in tests; off by default for speed in large sweeps). Setting the
``REPRO_VERIFY_PASSES=1`` environment variable forces inter-pass
verification everywhere — CI runs the full suite under it — and verifier
failures are attributed to the stage that introduced them.
"""

from __future__ import annotations

import os

from ..errors import VerificationError
from ..ir.verifier import verify_module
from .constfold import run_constfold_module
from .dce import run_dce_module
from .gvn import run_gvn_module
from .indvars import run_indvars_module
from .licm import run_licm_module
from .loop_simplify import run_loop_simplify_module
from .mem2reg import run_mem2reg_module
from .simplify_cfg import run_simplify_cfg_module


class PipelineResult:
    """What the standard pipeline did to a module."""

    def __init__(self):
        self.promoted_allocas = 0
        self.folded_constants = 0
        self.gvn_removed = 0
        self.removed_instructions = 0
        self.cfg_edits = 0
        self.loop_edits = 0
        self.hoisted = 0
        self.indvars = {}

    def __repr__(self):
        return (
            f"<PipelineResult promoted={self.promoted_allocas} "
            f"folded={self.folded_constants} dce={self.removed_instructions} "
            f"cfg={self.cfg_edits} loops={self.loop_edits}>"
        )


def verify_passes_forced():
    """Is inter-pass verification forced via ``REPRO_VERIFY_PASSES``?"""
    return os.environ.get("REPRO_VERIFY_PASSES", "0") not in ("", "0")


def _checkpoint(module, stage):
    """Verify and attribute any failure to the pipeline stage that ran."""
    try:
        verify_module(module)
    except VerificationError as error:
        raise VerificationError(
            [f"after {stage}: {problem}" for problem in error.problems]
        ) from None


def run_standard_pipeline(module, verify_each=False):
    """Run the study's compilation pipeline on ``module`` in place."""
    result = PipelineResult()
    verify_each = verify_each or verify_passes_forced()

    def checkpoint(stage):
        if verify_each:
            _checkpoint(module, stage)

    result.cfg_edits += run_simplify_cfg_module(module)
    checkpoint("simplify-cfg")
    result.promoted_allocas = run_mem2reg_module(module)
    checkpoint("mem2reg")
    result.folded_constants = run_constfold_module(module)
    checkpoint("constfold")
    result.gvn_removed = run_gvn_module(module)
    checkpoint("gvn")
    result.removed_instructions = run_dce_module(module)
    checkpoint("dce")
    result.cfg_edits += run_simplify_cfg_module(module)
    checkpoint("simplify-cfg (late)")
    result.loop_edits = run_loop_simplify_module(module)
    checkpoint("loop-simplify")
    result.hoisted = run_licm_module(module)
    checkpoint("licm")
    result.indvars = run_indvars_module(module)
    _checkpoint(module, "indvars")
    return result
