"""Pass manager: the fixed optimization pipeline the study compiles with.

The paper feeds LP the IR "after [it has] been optimized (using -Ofast)" and
then canonicalizes with loopsimplify/indvars. Our equivalent pipeline is:

    simplify-cfg -> mem2reg -> constfold -> gvn -> dce -> simplify-cfg
    -> loop-simplify -> licm -> indvars

with verification after every stage when ``verify_each`` is set (the default
in tests; off by default for speed in large sweeps).
"""

from __future__ import annotations

from ..ir.verifier import verify_module
from .constfold import run_constfold_module
from .dce import run_dce_module
from .gvn import run_gvn_module
from .indvars import run_indvars_module
from .licm import run_licm_module
from .loop_simplify import run_loop_simplify_module
from .mem2reg import run_mem2reg_module
from .simplify_cfg import run_simplify_cfg_module


class PipelineResult:
    """What the standard pipeline did to a module."""

    def __init__(self):
        self.promoted_allocas = 0
        self.folded_constants = 0
        self.gvn_removed = 0
        self.removed_instructions = 0
        self.cfg_edits = 0
        self.loop_edits = 0
        self.hoisted = 0
        self.indvars = {}

    def __repr__(self):
        return (
            f"<PipelineResult promoted={self.promoted_allocas} "
            f"folded={self.folded_constants} dce={self.removed_instructions} "
            f"cfg={self.cfg_edits} loops={self.loop_edits}>"
        )


def run_standard_pipeline(module, verify_each=False):
    """Run the study's compilation pipeline on ``module`` in place."""
    result = PipelineResult()

    def checkpoint():
        if verify_each:
            verify_module(module)

    result.cfg_edits += run_simplify_cfg_module(module)
    checkpoint()
    result.promoted_allocas = run_mem2reg_module(module)
    checkpoint()
    result.folded_constants = run_constfold_module(module)
    checkpoint()
    result.gvn_removed = run_gvn_module(module)
    checkpoint()
    result.removed_instructions = run_dce_module(module)
    checkpoint()
    result.cfg_edits += run_simplify_cfg_module(module)
    checkpoint()
    result.loop_edits = run_loop_simplify_module(module)
    checkpoint()
    result.hoisted = run_licm_module(module)
    checkpoint()
    result.indvars = run_indvars_module(module)
    verify_module(module)
    return result
