"""Loop fusion: merge adjacent counted loops that run in lockstep.

Two loops are fused when the second starts right where the first ends (the
first loop's dedicated exit block is the second loop's preheader and does
nothing but branch), both have the same *proven constant* trip count, no
SSA value crosses from the first body into the second, and no memory pair
would have its order reversed. The fused loop runs body A then body B each
iteration, keeps loop A's header (and therefore its ``loop_id``), and is
tagged ``FUSED`` in the module's provenance map; the absorbed loop's id is
also tagged ``FUSED`` pointing at the survivor so before/after figures can
fold the pair onto one row.

Order-reversal test: originally *every* iteration of A ran before *any*
iteration of B, so a dependence from A's iteration ``j`` to B's iteration
``i`` with ``j > i`` is the only ordering fusion can break (``j <= i``
pairs keep their order because iteration ``i`` still runs A's part first).
For same-base affine accesses with equal strides ``s`` that means: bail
exactly when ``(c_b - c_a) / s`` is an integer ``k`` with ``1 <= k <=
trip - 1``. Anything may-aliased, non-affine, spanning, or stride-mismatched
bails conservatively.

By default loops tagged ``DISTR`` are skipped so fusion does not undo what
fission just separated; ``ignore_origins=True`` lifts that (used by the
fission→fusion round-trip property test).
"""

from __future__ import annotations

from ..analysis.depend import DependenceAnalysis, module_memory_summaries
from ..analysis.invalidation import invalidate_module_analyses
from ..analysis.loop_info import (
    ORIGIN_DISTR,
    ORIGIN_FUSED,
    LoopInfo,
    record_loop_origin,
)
from ..analysis.scev import ScalarEvolution
from ..ir.instructions import Br, Instruction, Load, Store

_MAX_FUSIONS_PER_FUNCTION = 64


def run_loop_fusion_module(module, summaries=None, ignore_origins=False):
    """Fuse every legal adjacent pair in ``module``; returns the count."""
    if summaries is None:
        summaries = module_memory_summaries(module)
    applied = 0
    for function in module.defined_functions():
        applied += run_loop_fusion(function, summaries,
                                   ignore_origins=ignore_origins)
    return applied


def run_loop_fusion(function, summaries=None, ignore_origins=False):
    module = function.module
    if summaries is None and module is not None:
        summaries = module_memory_summaries(module)
    applied = 0
    while applied < _MAX_FUSIONS_PER_FUNCTION:
        loop_info = LoopInfo(function)
        scev = ScalarEvolution(function, loop_info)
        dep = DependenceAnalysis(function, loop_info, scev, summaries)
        changed = False
        for loop in loop_info.loops_in_postorder():
            if _fuse_with_successor(module, function, loop_info, scev, dep,
                                    loop, ignore_origins):
                applied += 1
                changed = True
                invalidate_module_analyses(function=function)
                break  # analyses are stale; rescan from scratch
        if not changed:
            break
    return applied


def _origin_blocks_fusion(module, loop, ignore_origins):
    if ignore_origins or module is None:
        return False
    origin = module.loop_origins.get(loop.loop_id)
    return origin is not None and origin.tag == ORIGIN_DISTR


def _fuse_with_successor(module, function, loop_info, scev, dep, loop_a,
                         ignore_origins):
    """Try to fuse ``loop_a`` with the loop its exit falls through to."""
    graph_a = dep.statement_graph(loop_a)
    if graph_a.failure is not None:
        return False
    shape_a = graph_a.shape
    bridge = shape_a.exit_block
    # The bridge must do nothing but fall through into the next header.
    if len(bridge.instructions) != 1 or not isinstance(
            bridge.terminator, Br):
        return False
    loop_b = loop_info.loop_for_block(bridge.terminator.target)
    if loop_b is None or loop_b is loop_a \
            or loop_b.header is not bridge.terminator.target \
            or loop_b.parent is not loop_a.parent:
        return False
    if _origin_blocks_fusion(module, loop_a, ignore_origins) \
            or _origin_blocks_fusion(module, loop_b, ignore_origins):
        return False
    graph_b = dep.statement_graph(loop_b)
    if graph_b.failure is not None:
        return False
    shape_b = graph_b.shape
    if shape_b.preheader is not bridge:
        return False
    trip_a = scev.trip_count(loop_a)
    trip_b = scev.trip_count(loop_b)
    if trip_a is None or trip_a != trip_b or trip_a < 1:
        return False
    # No SSA value may flow from A's body into B: B would read A's
    # final value mid-flight once the loops interleave.
    for block in [shape_b.header, *shape_b.chain]:
        for instruction in block.instructions:
            for operand in instruction.operands:
                if isinstance(operand, Instruction) \
                        and operand.parent in loop_a.blocks:
                    return False
    if not _memory_fusible(dep, loop_a, shape_a, loop_b, shape_b, trip_a):
        return False
    _fuse(function, shape_a, shape_b)
    if module is not None:
        a_id, b_id = loop_a.loop_id, loop_b.loop_id
        record_loop_origin(module, a_id, ORIGIN_FUSED, a_id,
                           note=f"absorbed {b_id} (trip {trip_a})")
        record_loop_origin(module, b_id, ORIGIN_FUSED, a_id,
                           note=f"fused into {a_id}")
        module.transform_log.append({
            "pass": "fusion",
            "function": function.name,
            "source": a_id,
            "loops": [a_id],
            "absorbed": b_id,
            "trip": trip_a,
        })
    return True


def _loop_accesses(dep, loop, shape):
    accesses = []
    for block in shape.chain:
        for instruction in block.instructions:
            if isinstance(instruction, (Load, Store)):
                access = dep._statement_access(loop, instruction)
                if access is not None:  # iteration-private never escapes
                    accesses.append(access)
    return accesses


def _memory_fusible(dep, loop_a, shape_a, loop_b, shape_b, trip):
    """Would merging the iteration spaces reverse any memory dependence?"""
    accesses_a = _loop_accesses(dep, loop_a, shape_a)
    accesses_b = _loop_accesses(dep, loop_b, shape_b)
    for a in accesses_a:
        for b in accesses_b:
            if not (a.is_write or b.is_write):
                continue
            alias = dep._alias(a, b)
            if alias == "no":
                continue
            if alias == "may":
                return False
            if a.whole_object or b.whole_object:
                return False
            fp_a = dep._footprint(a.pointer, loop_a, a.block)
            fp_b = dep._footprint(b.pointer, loop_b, b.block)
            if fp_a is None or fp_b is None:
                return False
            if not (fp_a.exact and fp_b.exact):
                return False
            if fp_a.terms != fp_b.terms:
                return False
            if fp_a.stride != fp_b.stride:
                return False
            delta = fp_b.const - fp_a.const
            stride = fp_a.stride
            if stride == 0:
                if delta == 0:
                    return False  # every A_j hits every B_i
                continue
            if delta % stride == 0 and 1 <= delta // stride <= trip - 1:
                return False  # a reversed-order conflict exists
    return True


def _fuse(function, shape_a, shape_b):
    """Rewrite the CFG: one loop running body A then body B per iteration."""
    header_a, latch_a = shape_a.header, shape_a.latch
    header_b, latch_b = shape_b.header, shape_b.latch
    bridge, exit_b = shape_a.exit_block, shape_b.exit_block
    preheader_a = shape_a.preheader

    # 1. B's phis move into the surviving header; their init edge now
    # enters from A's preheader (inits dominate it — see the SSA check).
    for phi in list(header_b.phis()):
        header_b.remove_instruction(phi)
        header_a.insert_phi(phi)
        for index, block in enumerate(phi.incoming_blocks):
            if block is bridge:
                phi.incoming_blocks[index] = preheader_a

    # 2. Re-route the edges: A's body falls into B's body, B's latch
    # becomes the fused backedge, A's compare exits straight to B's exit.
    latch_a.terminator.replace_successor(header_a, shape_b.body_entry)
    latch_b.terminator.replace_successor(header_b, header_a)
    header_a.terminator.replace_successor(bridge, exit_b)

    # 3. A's phis now receive their recurrence from the fused latch.
    for phi in header_a.phis():
        for index, block in enumerate(phi.incoming_blocks):
            if block is latch_a:
                phi.incoming_blocks[index] = latch_b

    # 4. Exit phis observe the same values along the retargeted exit edge.
    for phi in exit_b.phis():
        for index, block in enumerate(phi.incoming_blocks):
            if block is header_b:
                phi.incoming_blocks[index] = header_a

    # 5. The bridge and B's old header are unreachable; drop them.
    bridge.erase_from_parent()
    header_b.erase_from_parent()
