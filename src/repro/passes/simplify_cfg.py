"""CFG simplification: unreachable-block removal, constant-branch folding,
and linear block merging.

Run before loop analysis so the natural-loop detector sees a clean graph
(frontend lowering of short-circuit expressions and breaks leaves empty
forwarding blocks behind).
"""

from __future__ import annotations

from ..analysis.cfg import CFG
from ..ir.instructions import Br, CondBr
from ..ir.values import ConstantInt


def _remove_unreachable(function):
    cfg = CFG(function)
    dead = [b for b in function.blocks if not cfg.is_reachable(b)]
    if not dead:
        return 0
    dead_set = set(dead)
    # Remove phi incomings that arrive from dead blocks.
    for block in function.blocks:
        if block in dead_set:
            continue
        for phi in list(block.phis()):
            for pred in list(phi.incoming_blocks):
                if pred in dead_set:
                    phi.remove_incoming_for_block(pred)
    for block in dead:
        block.erase_from_parent()
    return len(dead)


def _fold_constant_branches(function):
    folded = 0
    for block in function.blocks:
        terminator = block.terminator
        if isinstance(terminator, CondBr) and isinstance(
            terminator.condition, ConstantInt
        ):
            taken = (
                terminator.then_block
                if terminator.condition.value
                else terminator.else_block
            )
            not_taken = (
                terminator.else_block
                if terminator.condition.value
                else terminator.then_block
            )
            if not_taken is not taken:
                for phi in not_taken.phis():
                    if block in phi.incoming_blocks:
                        phi.remove_incoming_for_block(block)
            terminator.erase_from_parent()
            block.append(Br(taken))
            folded += 1
    return folded


def _merge_linear_blocks(function):
    """Merge B into A when A ends in ``br B`` and B has A as its only
    predecessor (and B has no phis referencing other blocks — with a single
    predecessor any phis are trivially replaceable)."""
    merged = 0
    changed = True
    while changed:
        changed = False
        cfg = CFG(function)
        for block in list(function.blocks):
            terminator = block.terminator
            if not isinstance(terminator, Br):
                continue
            target = terminator.target
            if target is block or target is function.entry_block:
                continue
            if len(cfg.predecessors(target)) != 1:
                continue
            # Replace target's trivial phis (single incoming).
            for phi in list(target.phis()):
                phi_value = phi.incoming_for_block(block)
                phi.replace_all_uses_with(phi_value)
                phi.erase_from_parent()
            # Splice target's instructions into block.
            terminator.erase_from_parent()
            for instruction in list(target.instructions):
                target.remove_instruction(instruction)
                block.append(instruction)
            # Successor phis referring to `target` must now refer to `block`.
            for successor in block.successors():
                for phi in successor.phis():
                    for position, pred in enumerate(phi.incoming_blocks):
                        if pred is target:
                            phi.incoming_blocks[position] = block
            function.remove_block(target)
            merged += 1
            changed = True
            break  # CFG changed; rebuild and restart
    return merged


def run_simplify_cfg(function):
    """Apply all simplifications to fixpoint; returns total edits."""
    if function.is_declaration or function.is_intrinsic:
        return 0
    total = 0
    changed = True
    while changed:
        edits = (
            _fold_constant_branches(function)
            + _remove_unreachable(function)
            + _merge_linear_blocks(function)
        )
        total += edits
        changed = edits > 0
    return total


def run_simplify_cfg_module(module):
    return sum(run_simplify_cfg(function) for function in module.defined_functions())
