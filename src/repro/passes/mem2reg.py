"""mem2reg — promote scalar stack slots to SSA registers.

The MiniC frontend emits one ``alloca`` per local variable with explicit
``load``/``store`` traffic, like clang at ``-O0``. This pass rebuilds pruned
SSA form using iterated dominance frontiers (Cytron et al.), which is the
step that turns loop-carried scalar state into *header phi nodes* — the
objects the Loopapalooza classification (SCEV / reduction / value-predictable
/ unpredictable) operates on. Without it every scalar LCD would look like a
memory LCD and the whole Table-I taxonomy would collapse.

Promotion criteria (same as LLVM): the alloca holds a scalar and its address
is only ever used as the pointer operand of loads and stores (no GEPs, no
call arguments, no stores *of* the address).

After renaming, phis that are transitively unused (including cycles of dead
phis) are deleted so no artificial register LCDs survive at loop headers.
"""

from __future__ import annotations

from ..analysis.cfg import CFG
from ..analysis.dominators import DominatorTree
from ..ir.instructions import Alloca, Load, Phi, Store
from ..ir.types import I64
from ..ir.values import ConstantFloat, ConstantInt


def _promotable(alloca):
    if not alloca.allocated_type.is_scalar:
        return False
    for user, index in alloca.uses:
        if isinstance(user, Load):
            continue
        if isinstance(user, Store) and user.pointer is alloca and index == 1:
            continue
        return False
    return True


def _undef_for(type_):
    """Value observed when loading before any store (frontends initialize
    every variable, so this only appears on genuinely dead paths)."""
    if type_.is_float:
        return ConstantFloat(0.0)
    if type_.is_integer:
        return ConstantInt(type_, 0)
    return ConstantInt(I64, 0)  # pointer: a null-ish placeholder


def run_mem2reg(function):
    """Promote allocas in ``function``; returns the number promoted."""
    if function.is_declaration or function.is_intrinsic:
        return 0
    allocas = [
        instruction
        for instruction in function.instructions()
        if isinstance(instruction, Alloca) and _promotable(instruction)
    ]
    if not allocas:
        return 0

    cfg = CFG(function)
    domtree = DominatorTree(function, cfg)

    # 1. Place phi nodes at the iterated dominance frontier of each alloca's
    #    defining (store) blocks.
    phi_slots = {}  # id(phi) -> alloca
    slot_phis = {id(a): {} for a in allocas}  # id(alloca) -> {id(block): phi}
    for alloca in allocas:
        store_blocks = {
            user.parent for user in alloca.users() if isinstance(user, Store)
        }
        for block in domtree.iterated_dominance_frontier(store_blocks):
            phi = Phi(alloca.allocated_type, alloca.name or "mem")
            block.insert_phi(phi)
            phi_slots[id(phi)] = alloca
            slot_phis[id(alloca)][id(block)] = phi

    # 2. Rename along the dominator tree with a value stack per alloca.
    current = {id(a): [] for a in allocas}
    alloca_ids = {id(a) for a in allocas}
    to_erase = []

    def value_for(alloca):
        stack = current[id(alloca)]
        return stack[-1] if stack else _undef_for(alloca.allocated_type)

    def process_block(block):
        pushed = []
        for instruction in list(block.instructions):
            if isinstance(instruction, Phi) and id(instruction) in phi_slots:
                alloca = phi_slots[id(instruction)]
                current[id(alloca)].append(instruction)
                pushed.append(alloca)
            elif isinstance(instruction, Load) and id(instruction.pointer) in alloca_ids:
                instruction.replace_all_uses_with(value_for(instruction.pointer))
                to_erase.append(instruction)
            elif isinstance(instruction, Store) and id(instruction.pointer) in alloca_ids:
                current[id(instruction.pointer)].append(instruction.value)
                pushed.append(instruction.pointer)
                to_erase.append(instruction)
        for successor in cfg.successors(block):
            for alloca in allocas:
                phi = slot_phis[id(alloca)].get(id(successor))
                if phi is not None:
                    phi.add_incoming(value_for(alloca), block)
        return pushed

    # Dominator-tree DFS with explicit enter/exit events (no recursion).
    stack = [("enter", function.entry_block)]
    while stack:
        action, payload = stack.pop()
        if action == "enter":
            pushed = process_block(payload)
            stack.append(("exit", pushed))
            for child in domtree.children(payload):
                stack.append(("enter", child))
        else:
            for alloca in reversed(payload):
                current[id(alloca)].pop()

    # 3. Erase the rewritten loads/stores and the allocas themselves.
    for instruction in to_erase:
        instruction.erase_from_parent()
    for alloca in allocas:
        alloca.erase_from_parent()

    # 4. Prune transitively-dead phis.
    _prune_unused_phis(function)
    return len(allocas)


def _prune_unused_phis(function):
    """Delete phis reachable only from other dead phis (mark-and-sweep, so
    mutually-referencing dead phi cycles are removed too)."""
    all_phis = [phi for block in function.blocks for phi in block.phis()]
    if not all_phis:
        return
    live = set()
    worklist = []
    for phi in all_phis:
        if any(not isinstance(user, Phi) for user in phi.users()):
            live.add(id(phi))
            worklist.append(phi)
    while worklist:
        phi = worklist.pop()
        for operand in phi.operands:
            if isinstance(operand, Phi) and id(operand) not in live:
                live.add(id(operand))
                worklist.append(operand)
    for phi in all_phis:
        if id(phi) not in live:
            phi.erase_from_parent()


def run_mem2reg_module(module):
    """Run mem2reg on every defined function; returns total promotions."""
    return sum(run_mem2reg(function) for function in module.defined_functions())
