"""repro.passes — IR transform passes.

mem2reg (pruned SSA construction), GVN (CSE + redundant-load elimination),
LICM, CFG simplification, loop canonicalization (loopsimplify),
induction-variable canonicalization (indvars), dead-code elimination,
constant folding, and the standard pipeline the study compiles every
benchmark with.
"""

from .constfold import run_constfold, run_constfold_module
from .dce import run_dce, run_dce_module
from .indvars import IndVarsResult, run_indvars, run_indvars_module
from .inline import inline_call, run_inline_module
from .loop_simplify import (
    is_loop_simplified,
    run_loop_simplify,
    run_loop_simplify_module,
)
from .gvn import run_gvn, run_gvn_module
from .licm import run_licm, run_licm_module
from .loop_fission import run_loop_fission, run_loop_fission_module
from .loop_fusion import run_loop_fusion, run_loop_fusion_module
from .loop_peel import run_loop_peel, run_loop_peel_module
from .mem2reg import run_mem2reg, run_mem2reg_module
from .pass_manager import (
    PIPELINE_VERSION,
    PipelineResult,
    pipeline_fingerprint,
    run_standard_pipeline,
    run_transform_pipeline,
    transform_enabled,
)
from .simplify_cfg import run_simplify_cfg, run_simplify_cfg_module

__all__ = [
    "IndVarsResult",
    "PIPELINE_VERSION",
    "PipelineResult",
    "is_loop_simplified",
    "pipeline_fingerprint",
    "transform_enabled",
    "run_constfold",
    "run_constfold_module",
    "run_dce",
    "run_dce_module",
    "run_indvars",
    "run_indvars_module",
    "run_inline_module",
    "inline_call",
    "run_gvn",
    "run_gvn_module",
    "run_licm",
    "run_licm_module",
    "run_loop_fission",
    "run_loop_fission_module",
    "run_loop_fusion",
    "run_loop_fusion_module",
    "run_loop_peel",
    "run_loop_peel_module",
    "run_loop_simplify",
    "run_loop_simplify_module",
    "run_mem2reg",
    "run_mem2reg_module",
    "run_simplify_cfg",
    "run_simplify_cfg_module",
    "run_standard_pipeline",
    "run_transform_pipeline",
]
