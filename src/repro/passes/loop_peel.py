"""Loop peeling: split boundary iterations off so the remainder proves DOALL.

Some loops are serial only at their edges — a first iteration that reads an
initialization cell every later iteration overwrites, or a last iteration
that writes a boundary cell the others only read. The dependence engine can
*prove* this: :meth:`DependenceAnalysis.loop_verdict_if_peeled` re-runs the
subscript tests with the footprints shifted by the peeled iterations. When
the residual loop's verdict improves to ``STATIC_DOALL``, this pass commits
the transform:

* **front peel** — the first iteration is cloned as a straight line between
  the preheader and the header (phi initial values advance to their
  first-latch values). Legal whenever the trip count is a known constant
  ``>= 2``, since iteration 0 then executes unconditionally and in its
  original order — no side effect moves.
* **back peel** — the exit bound is tightened by one iteration and the last
  iteration is cloned as a straight line on the exit edge. Requires every
  header phi to be a constant-affine IV (its value at the last iteration is
  a compile-time constant) and a constant compare bound; outside uses of
  the IVs are rewritten to their original exit values.

The residual loop keeps its ``loop_id`` and is tagged ``PEEL`` (front) or
``REMAINDER`` (back) in the module's provenance map.
"""

from __future__ import annotations

from ..analysis.depend import (
    VERDICT_DOALL,
    DependenceAnalysis,
    canonical_loop_shape,
    module_memory_summaries,
)
from ..analysis.invalidation import invalidate_module_analyses
from ..analysis.loop_info import (
    ORIGIN_PEEL,
    ORIGIN_REMAINDER,
    LoopInfo,
    record_loop_origin,
)
from ..analysis.scev import SCEVAddRec, SCEVConstant, ScalarEvolution
from ..ir.instructions import Br, ICmp
from ..ir.values import ConstantInt
from .inline import _clone_instruction

_MAX_PEELS_PER_FUNCTION = 64


def run_loop_peel_module(module, summaries=None):
    """Peel every provably profitable loop in ``module``; returns count."""
    if summaries is None:
        summaries = module_memory_summaries(module)
    applied = 0
    for function in module.defined_functions():
        applied += run_loop_peel(function, summaries)
    return applied


def run_loop_peel(function, summaries=None):
    module = function.module
    if summaries is None and module is not None:
        summaries = module_memory_summaries(module)
    applied = 0
    while applied < _MAX_PEELS_PER_FUNCTION:
        loop_info = LoopInfo(function)
        scev = ScalarEvolution(function, loop_info)
        dep = DependenceAnalysis(function, loop_info, scev, summaries)
        changed = False
        for loop in loop_info.loops_in_postorder():
            if _peel_loop(module, function, dep, scev, loop):
                applied += 1
                changed = True
                invalidate_module_analyses(function=function)
                break
        if not changed:
            break
    return applied


def _peel_loop(module, function, dep, scev, loop):
    shape, _ = canonical_loop_shape(loop, dep.loop_info.cfg)
    if shape is None:
        return False
    if module is not None:
        origin = module.loop_origins.get(loop.loop_id)
        if origin is not None and origin.tag in (ORIGIN_PEEL,
                                                 ORIGIN_REMAINDER):
            return False  # one peel per loop; the trial proved it enough
    trip = scev.trip_count(loop)
    if trip is None or trip < 2:
        return False
    if dep.loop_verdict(loop).verdict == VERDICT_DOALL:
        return False
    if dep.loop_verdict_if_peeled(loop, front=1).verdict == VERDICT_DOALL:
        _peel_front(module, function, shape, loop)
        return True
    if dep.loop_verdict_if_peeled(loop, back=1).verdict == VERDICT_DOALL:
        return _peel_back(module, function, shape, scev, loop, trip)
    return False


def _peel_front(module, function, shape, loop):
    """Clone iteration 0 between the preheader and the header."""
    header, preheader, latch = shape.header, shape.preheader, shape.latch
    peel_block = function.insert_block_after(
        preheader, f"{header.name}.peel")
    value_map = {}
    header_phis = list(header.phis())
    for phi in header_phis:
        value_map[id(phi)] = phi.incoming_for_block(preheader)
    for block in shape.chain:
        for instruction in block.instructions:
            if instruction.is_terminator:
                continue
            copy = _clone_instruction(instruction, value_map, {})
            value_map[id(instruction)] = copy
            peel_block.append(copy)
    peel_block.append(Br(header))
    preheader.terminator.replace_successor(header, peel_block)
    for phi in header_phis:
        latch_value = phi.incoming_for_block(latch)
        advanced = value_map.get(id(latch_value), latch_value)
        for index, block in enumerate(phi.incoming_blocks):
            if block is preheader:
                phi.incoming_blocks[index] = peel_block
                phi.set_operand(index, advanced)
    if module is not None:
        record_loop_origin(module, loop.loop_id, ORIGIN_PEEL, loop.loop_id,
                           note="peeled 1 leading iteration")
        module.transform_log.append({
            "pass": "peel",
            "function": function.name,
            "source": loop.loop_id,
            "loops": [loop.loop_id],
            "kind": "front",
        })


def _peel_back(module, function, shape, scev, loop, trip):
    """Tighten the bound by one iteration and clone the last iteration on
    the exit edge. Returns False when the loop is not constant-affine
    enough to materialize the final iteration."""
    header, compare = shape.header, shape.compare
    exit_block = shape.exit_block
    if not isinstance(compare, ICmp) \
            or not isinstance(compare.rhs, ConstantInt):
        return False
    iv_expr = scev.get(compare.lhs)
    if not (isinstance(iv_expr, SCEVAddRec) and iv_expr.loop is loop
            and isinstance(iv_expr.start, SCEVConstant)
            and isinstance(iv_expr.step, SCEVConstant)):
        return False
    start, step = iv_expr.start.value, iv_expr.step.value
    if step <= 0:
        return False
    continues_if_true = header.terminator.then_block in loop.blocks
    predicate = compare.predicate
    if predicate in ("slt", "sge") and (predicate == "slt") == continues_if_true:
        new_bound = start + step * (trip - 2)  # strict: first excluded value
        new_bound += step
    elif predicate in ("sle", "sgt") and (predicate == "sle") == continues_if_true:
        new_bound = start + step * (trip - 2)  # inclusive: last included
    else:
        return False
    # Every header phi must have a constant value at the final iteration.
    header_phis = list(header.phis())
    finals = {}
    exits = {}
    for phi in header_phis:
        expr = scev.get(phi)
        if not (isinstance(expr, SCEVAddRec) and expr.loop is loop
                and isinstance(expr.start, SCEVConstant)
                and isinstance(expr.step, SCEVConstant)):
            return False
        phi_start, phi_step = expr.start.value, expr.step.value
        finals[id(phi)] = ConstantInt(phi.type,
                                      phi_start + phi_step * (trip - 1))
        exits[id(phi)] = ConstantInt(phi.type, phi_start + phi_step * trip)

    # Commit. 1. Tighten the bound.
    compare.set_operand(1, ConstantInt(compare.rhs.type, new_bound))
    # 2. Clone the last iteration onto the exit edge.
    peel_block = function.insert_block_after(
        header, f"{header.name}.peel.last")
    value_map = dict(finals)
    for block in shape.chain:
        for instruction in block.instructions:
            if instruction.is_terminator:
                continue
            copy = _clone_instruction(instruction, value_map, {})
            value_map[id(instruction)] = copy
            peel_block.append(copy)
    peel_block.append(Br(exit_block))
    header.terminator.replace_successor(exit_block, peel_block)
    for phi in exit_block.phis():
        for index, block in enumerate(phi.incoming_blocks):
            if block is header:
                phi.incoming_blocks[index] = peel_block
    # 3. Outside uses of the IVs still observe their original exit values.
    for phi in header_phis:
        for user, index in list(phi.uses):
            if user.parent not in loop.blocks and user.parent is not peel_block:
                user.set_operand(index, exits[id(phi)])
    if module is not None:
        record_loop_origin(module, loop.loop_id, ORIGIN_REMAINDER,
                           loop.loop_id, note="peeled 1 trailing iteration")
        module.transform_log.append({
            "pass": "peel",
            "function": function.name,
            "source": loop.loop_id,
            "loops": [loop.loop_id],
            "kind": "back",
        })
    return True
