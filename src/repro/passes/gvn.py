"""GVN-lite: dominance-scoped CSE of pure operations plus conservative
redundant-load elimination.

Two steps, mirroring what ``-Ofast`` (EarlyCSE + GVN) does to the IR the
paper analyzes:

1. **Pure-op CSE** — a dominator-tree walk with scoped hash tables unifies
   structurally identical side-effect-free instructions (arithmetic,
   comparisons, GEPs, casts, selects).
2. **Dominating-load elimination** — a load ``L2`` is replaced by an earlier
   load ``L1`` from the *same pointer SSA value* when ``L1`` dominates ``L2``
   and no store or call can execute between them on any path. The
   may-intervene check is purely CFG-based (every block that lies on some
   ``L1 -> L2`` path is scanned), so it is conservative but sound.

Both steps matter to the study: without them, frontend-duplicated loads make
values look unrelated (e.g. the compare and the kept value of a conditional
min/max), distorting the register-LCD classification.
"""

from __future__ import annotations

from ..analysis.cfg import CFG
from ..analysis.dominators import DominatorTree
from ..ir.instructions import (
    GEP,
    BinaryOp,
    Call,
    Cast,
    FCmp,
    ICmp,
    Load,
    Select,
    Store,
)


def _operand_key(value):
    """Key an operand by value for constants/globals, by identity otherwise."""
    from ..ir.values import ConstantFloat, ConstantInt, GlobalVariable

    if isinstance(value, ConstantInt):
        return ("ci", repr(value.type), value.value)
    if isinstance(value, ConstantFloat):
        return ("cf", repr(value.value))
    if isinstance(value, GlobalVariable):
        return ("gv", value.name)
    return ("id", id(value))


def _value_key(instruction):
    """Structural hash key for pure instructions (None if not CSE-able)."""
    if isinstance(instruction, BinaryOp):
        operand_keys = [_operand_key(instruction.lhs), _operand_key(instruction.rhs)]
        if instruction.is_commutative:
            operand_keys.sort()
        return ("bin", instruction.opcode, tuple(operand_keys))
    if isinstance(instruction, ICmp):
        return ("icmp", instruction.predicate,
                _operand_key(instruction.lhs), _operand_key(instruction.rhs))
    if isinstance(instruction, FCmp):
        return ("fcmp", instruction.predicate,
                _operand_key(instruction.lhs), _operand_key(instruction.rhs))
    if isinstance(instruction, GEP):
        return ("gep", tuple(_operand_key(op) for op in instruction.operands))
    if isinstance(instruction, Cast):
        return ("cast", instruction.opcode,
                _operand_key(instruction.value), instruction.type)
    if isinstance(instruction, Select):
        return ("select", tuple(_operand_key(op) for op in instruction.operands))
    return None


def _cse_pure(function, domtree):
    """Dominator-scoped common-subexpression elimination. Returns removals."""
    removed = 0
    available = {}
    stack = [("enter", function.entry_block)]
    while stack:
        action, payload = stack.pop()
        if action == "enter":
            added = []
            for instruction in list(payload.instructions):
                key = _value_key(instruction)
                if key is None:
                    continue
                existing = available.get(key)
                if existing is not None:
                    instruction.replace_all_uses_with(existing)
                    instruction.erase_from_parent()
                    removed += 1
                else:
                    available[key] = instruction
                    added.append(key)
            stack.append(("exit", added))
            for child in domtree.children(payload):
                stack.append(("enter", child))
        else:
            for key in payload:
                del available[key]
    return removed


def _blocks_on_paths(cfg, source, target):
    """Blocks B such that some non-empty path source ->* B ->* target exists
    (i.e. B may execute strictly between an instruction in ``source`` and one
    in ``target``). ``source``/``target`` themselves are included only when a
    cycle passes through them."""
    # Forward reachability from source via at least one edge.
    forward = set()
    worklist = list(cfg.successors(source))
    while worklist:
        block = worklist.pop()
        if block in forward:
            continue
        forward.add(block)
        worklist.extend(cfg.successors(block))
    # Backward reachability from target via at least one edge.
    backward = set()
    worklist = list(cfg.predecessors(target))
    while worklist:
        block = worklist.pop()
        if block in backward:
            continue
        backward.add(block)
        worklist.extend(cfg.predecessors(block))
    return forward & backward


def _may_clobber(instruction):
    if isinstance(instruction, Store):
        return True
    if isinstance(instruction, Call):
        callee = instruction.callee
        if callee.is_intrinsic:
            return callee.intrinsic.writes_memory or callee.intrinsic.global_state
        return True  # user calls may write anything (no mod-ref analysis)
    return False


def _eliminate_loads(function, cfg, domtree):
    """Replace loads with dominating same-pointer loads when safe."""
    removed = 0

    def compute_positions():
        table = {}
        for block in function.blocks:
            for index, instruction in enumerate(block.instructions):
                table[id(instruction)] = index
        return table

    positions = compute_positions()
    loads_by_pointer = {}
    for block in function.blocks:
        for instruction in block.instructions:
            if isinstance(instruction, Load):
                loads_by_pointer.setdefault(id(instruction.pointer), []).append(
                    instruction
                )

    for candidates in loads_by_pointer.values():
        if len(candidates) < 2:
            continue
        for later in list(candidates):
            if later.parent is None:
                continue
            for earlier in candidates:
                if earlier is later or earlier.parent is None:
                    continue
                if not _safe_pair(earlier, later, cfg, domtree, positions):
                    continue
                later.replace_all_uses_with(earlier)
                later.erase_from_parent()
                removed += 1
                positions = compute_positions()  # indices shifted
                break
    return removed


def _safe_pair(earlier, later, cfg, domtree, positions):
    block_a, block_b = earlier.parent, later.parent
    if not domtree.dominates(block_a, block_b):
        return False
    if block_a is block_b:
        start = positions[id(earlier)]
        end = positions[id(later)]
        if start > end:
            return False
        segment = block_a.instructions[start + 1 : end]
        if any(_may_clobber(instruction) for instruction in segment):
            return False
        # A cycle through this block would re-execute intervening code.
        middle = _blocks_on_paths(cfg, block_a, block_b)
        if block_a in middle:
            return not any(_may_clobber(i) for i in block_a.instructions)
        return True
    middle = _blocks_on_paths(cfg, block_a, block_b)
    for block in middle:
        if block is block_a or block is block_b:
            if any(_may_clobber(i) for i in block.instructions):
                return False
            continue
        if any(_may_clobber(i) for i in block.instructions):
            return False
    tail_a = block_a.instructions[positions[id(earlier)] + 1 :]
    if any(_may_clobber(i) for i in tail_a):
        return False
    head_b = block_b.instructions[: positions[id(later)]]
    if any(_may_clobber(i) for i in head_b):
        return False
    return True


def run_gvn(function):
    """Run both GVN steps to fixpoint; returns instructions removed."""
    if function.is_declaration or function.is_intrinsic:
        return 0
    total = 0
    changed = True
    while changed:
        changed = False
        cfg = CFG(function)
        domtree = DominatorTree(function, cfg)
        removed = _cse_pure(function, domtree)
        removed += _eliminate_loads(function, cfg, domtree)
        if removed:
            total += removed
            changed = True
    return total


def run_gvn_module(module):
    return sum(run_gvn(function) for function in module.defined_functions())
