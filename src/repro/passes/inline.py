"""Function inlining (optional pass — NOT part of the study pipeline).

The study keeps calls visible on purpose: the whole ``fnX`` axis of Table II
exists because real compilers cannot inline everything. This pass exists for
the complementary ablation (``benchmarks/test_inline_ablation.py``): inlining
a helper turns a call-blocked loop into plain loop body, dissolving its
``fn`` constraint — quantifying how much of the ``fn0 -> fn2`` gap is "just
inlining" versus genuinely parallel calls.

Criteria: direct call to a defined, non-recursive user function whose body
is at most ``size_limit`` instructions. Mechanics: split the call block,
clone the callee's blocks with a value map, rewire returns into the
continuation (a phi when the callee has several), and let the verifier
check the result.
"""

from __future__ import annotations

from ..analysis.callgraph import CallGraph
from ..ir.basic_block import BasicBlock
from ..ir.instructions import (
    GEP,
    Alloca,
    BinaryOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    ICmp,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)

DEFAULT_SIZE_LIMIT = 40


def _clone_instruction(instruction, value_map, block_map):
    """Clone one instruction, resolving operands through ``value_map``."""

    def v(operand):
        return value_map.get(id(operand), operand)

    if isinstance(instruction, BinaryOp):
        return BinaryOp(instruction.opcode, v(instruction.lhs),
                        v(instruction.rhs), instruction.name)
    if isinstance(instruction, ICmp):
        return ICmp(instruction.predicate, v(instruction.lhs),
                    v(instruction.rhs), instruction.name)
    if isinstance(instruction, FCmp):
        return FCmp(instruction.predicate, v(instruction.lhs),
                    v(instruction.rhs), instruction.name)
    if isinstance(instruction, Alloca):
        return Alloca(instruction.allocated_type, instruction.name)
    if isinstance(instruction, Load):
        return Load(v(instruction.pointer), instruction.name)
    if isinstance(instruction, Store):
        return Store(v(instruction.value), v(instruction.pointer))
    if isinstance(instruction, GEP):
        return GEP(v(instruction.pointer),
                   [v(index) for index in instruction.indices],
                   instruction.name)
    if isinstance(instruction, Call):
        return Call(instruction.callee, [v(a) for a in instruction.args],
                    instruction.name)
    if isinstance(instruction, Select):
        return Select(v(instruction.condition), v(instruction.true_value),
                      v(instruction.false_value), instruction.name)
    if isinstance(instruction, Cast):
        return Cast(instruction.opcode, v(instruction.value),
                    instruction.type, instruction.name)
    if isinstance(instruction, Br):
        return Br(block_map[id(instruction.target)])
    if isinstance(instruction, CondBr):
        return CondBr(v(instruction.condition),
                      block_map[id(instruction.then_block)],
                      block_map[id(instruction.else_block)])
    raise TypeError(f"cannot clone {instruction!r}")


_INLINE_COUNTER = [0]


def inline_call(call):
    """Inline one call site in place. The caller must ensure legality
    (defined, non-recursive callee)."""
    callee = call.callee
    caller = call.function
    call_block = call.parent
    position = call_block.instructions.index(call)
    # Unique per-site suffix: inlining the same callee twice must not create
    # duplicate block names (loop ids are derived from them).
    _INLINE_COUNTER[0] += 1
    site_tag = f"{callee.name}.i{_INLINE_COUNTER[0]}"

    # 1. Split the call block: everything after the call moves to `after`.
    after = caller.insert_block_after(call_block, f"{call_block.name}.split")
    for instruction in list(call_block.instructions[position + 1:]):
        call_block.remove_instruction(instruction)
        after.instructions.append(instruction)
        instruction.parent = after
    # Successor phis that referenced call_block now come from `after`.
    for successor in after.successors():
        for phi in successor.phis():
            for index, pred in enumerate(phi.incoming_blocks):
                if pred is call_block:
                    phi.incoming_blocks[index] = after

    # 2. Clone the callee body.
    block_map = {}
    insert_after = call_block
    for block in callee.blocks:
        clone = caller.insert_block_after(
            insert_after, f"{site_tag}.{block.name}"
        )
        insert_after = clone
        block_map[id(block)] = clone

    value_map = {}
    for argument, actual in zip(callee.arguments, call.args):
        value_map[id(argument)] = actual

    returns = []  # (cloned block, return value or None)
    pending_phis = []
    for block in callee.blocks:
        clone = block_map[id(block)]
        for instruction in block.instructions:
            if isinstance(instruction, Ret):
                returns.append((
                    clone,
                    value_map.get(id(instruction.value), instruction.value)
                    if instruction.value is not None else None,
                ))
                clone.append(Br(after))
                continue
            if isinstance(instruction, Phi):
                new_phi = Phi(instruction.type, instruction.name)
                clone.insert_phi(new_phi)
                value_map[id(instruction)] = new_phi
                pending_phis.append((instruction, new_phi))
                continue
            new_instruction = _clone_instruction(
                instruction, value_map, block_map
            )
            clone.append(new_instruction)
            value_map[id(instruction)] = new_instruction
    for original, new_phi in pending_phis:
        for value, pred in original.incoming():
            new_phi.add_incoming(
                value_map.get(id(value), value), block_map[id(pred)]
            )

    # 3. Jump into the inlined entry; merge return values.
    call_block.append(Br(block_map[id(callee.entry_block)]))

    if not call.type.is_void:
        if len(returns) == 1:
            call.replace_all_uses_with(returns[0][1])
        else:
            merged = Phi(call.type, f"{callee.name}.ret")
            after.insert_phi(merged)
            for ret_block, value in returns:
                merged.add_incoming(value, ret_block)
            call.replace_all_uses_with(merged)
    call.erase_from_parent()


def _inlinable(call, size_limit, recursive):
    callee = call.callee
    if callee.is_intrinsic or callee.is_declaration:
        return False
    if callee in recursive:
        return False
    if callee is call.function:
        return False
    return sum(len(block) for block in callee.blocks) <= size_limit


def run_inline_module(module, size_limit=DEFAULT_SIZE_LIMIT):
    """Inline every eligible call site; returns the number of inlines.

    Bottom-up over the call graph (callees first), so helper-of-helper
    chains collapse fully.
    """
    callgraph = CallGraph(module)
    recursive = set()
    for component in callgraph.sccs_bottom_up():
        if len(component) > 1:
            recursive.update(component)
        elif component[0] in callgraph.callees_of(component[0]):
            recursive.add(component[0])

    inlined = 0
    order = [
        function
        for component in callgraph.sccs_bottom_up()
        for function in component
        if function.blocks
    ]
    for function in order:
        changed = True
        while changed:
            changed = False
            for block in list(function.blocks):
                for instruction in list(block.instructions):
                    if isinstance(instruction, Call) and _inlinable(
                        instruction, size_limit, recursive
                    ):
                        inline_call(instruction)
                        inlined += 1
                        changed = True
                        break
                if changed:
                    break
    return inlined
