"""Loop canonicalization (LLVM's ``loopsimplify``).

The paper (§III-A): *"loops and induction variables are canonicalized using
the loopsimplify and indvars passes; the canonicalization of loops is
important to be able to uniquely identify loops within arbitrarily complex
loop nests."*

After this pass every natural loop has:

* a **preheader** — a unique out-of-loop predecessor of the header with a
  single successor (gives the instrumentation an unambiguous loop-entry
  edge);
* a **single latch** — one back edge (gives an unambiguous iteration edge,
  and is what the SCEV recurrence solver requires);
* **dedicated exits** — every exit block is reached only from inside the
  loop (gives unambiguous loop-exit edges).
"""

from __future__ import annotations

from ..analysis.loop_info import LoopInfo
from ..ir.instructions import Br, Phi


def _insert_preheader(function, loop, cfg):
    header = loop.header
    outside_preds = [
        pred for pred in cfg.predecessors(header) if pred not in loop.blocks
    ]
    if len(outside_preds) == 1 and len(cfg.successors(outside_preds[0])) == 1:
        return False
    if not outside_preds:
        return False  # header is the function entry of an infinite loop

    preheader = function.insert_block_after(outside_preds[0], f"{header.name}.ph")
    for phi in header.phis():
        outside_pairs = [
            (value, block)
            for value, block in phi.incoming()
            if block not in loop.blocks
        ]
        distinct = {id(value) for value, _ in outside_pairs}
        if len(distinct) == 1:
            merged = outside_pairs[0][0]
        else:
            merged_phi = Phi(phi.type, (phi.name or "v") + ".ph")
            preheader.insert_phi(merged_phi)
            for value, block in outside_pairs:
                merged_phi.add_incoming(value, block)
            merged = merged_phi
        for _, block in outside_pairs:
            phi.remove_incoming_for_block(block)
        phi.add_incoming(merged, preheader)
    preheader.append(Br(header))
    for pred in outside_preds:
        pred.terminator.replace_successor(header, preheader)
    return True


def _insert_single_latch(function, loop, cfg):
    header = loop.header
    latch_preds = [
        pred for pred in cfg.predecessors(header) if pred in loop.blocks
    ]
    if len(latch_preds) <= 1:
        return False

    latch = function.insert_block_after(latch_preds[-1], f"{header.name}.latch")
    for phi in header.phis():
        inside_pairs = [
            (value, block)
            for value, block in phi.incoming()
            if block in loop.blocks
        ]
        distinct = {id(value) for value, _ in inside_pairs}
        if len(distinct) == 1:
            merged = inside_pairs[0][0]
        else:
            merged_phi = Phi(phi.type, (phi.name or "v") + ".lcssa")
            latch.insert_phi(merged_phi)
            for value, block in inside_pairs:
                merged_phi.add_incoming(value, block)
            merged = merged_phi
        for _, block in inside_pairs:
            phi.remove_incoming_for_block(block)
        phi.add_incoming(merged, latch)
    latch.append(Br(header))
    for pred in latch_preds:
        pred.terminator.replace_successor(header, latch)
    return True


def _insert_dedicated_exits(function, loop, cfg):
    changed = False
    for exit_block in loop.exit_blocks(cfg):
        outside_preds = [
            pred
            for pred in cfg.predecessors(exit_block)
            if pred not in loop.blocks
        ]
        if not outside_preds:
            continue
        inside_preds = [
            pred for pred in cfg.predecessors(exit_block) if pred in loop.blocks
        ]
        trampoline = function.insert_block_after(
            inside_preds[0], f"{exit_block.name}.loopexit"
        )
        for phi in exit_block.phis():
            inside_pairs = [
                (value, block)
                for value, block in phi.incoming()
                if block in loop.blocks
            ]
            distinct = {id(value) for value, _ in inside_pairs}
            if len(distinct) == 1:
                merged = inside_pairs[0][0]
            else:
                merged_phi = Phi(phi.type, (phi.name or "v") + ".le")
                trampoline.insert_phi(merged_phi)
                for value, block in inside_pairs:
                    merged_phi.add_incoming(value, block)
                merged = merged_phi
            for _, block in inside_pairs:
                phi.remove_incoming_for_block(block)
            phi.add_incoming(merged, trampoline)
        trampoline.append(Br(exit_block))
        for pred in inside_preds:
            pred.terminator.replace_successor(exit_block, trampoline)
        changed = True
    return changed


def run_loop_simplify(function):
    """Canonicalize every loop; returns the number of CFG edits."""
    if function.is_declaration or function.is_intrinsic:
        return 0
    edits = 0
    # Each transform invalidates LoopInfo; restart until a clean sweep.
    for _ in range(10 * max(1, len(function.blocks))):
        loop_info = LoopInfo(function)
        cfg = loop_info.cfg
        changed = False
        for loop in loop_info.all_loops():
            if _insert_preheader(function, loop, cfg):
                changed = True
                break
            if _insert_single_latch(function, loop, cfg):
                changed = True
                break
            if _insert_dedicated_exits(function, loop, cfg):
                changed = True
                break
        if not changed:
            return edits
        edits += 1
    return edits


def run_loop_simplify_module(module):
    return sum(run_loop_simplify(function) for function in module.defined_functions())


def is_loop_simplified(loop, cfg):
    """Check the three canonical-form properties for one loop."""
    if loop.preheader(cfg) is None:
        return False
    if loop.single_latch() is None:
        return False
    for exit_block in loop.exit_blocks(cfg):
        if any(
            pred not in loop.blocks for pred in cfg.predecessors(exit_block)
        ):
            return False
    return True
