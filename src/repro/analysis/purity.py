"""Function purity analysis — the compiler side of the ``fnX`` flags.

The paper's Table II distinguishes:

* ``fn1`` — calls to functions the compiler proves *pure* (read-only, no
  side effects) may be parallelized;
* ``fn2`` — additionally, thread-safe (re-entrant) library functions and any
  user function LP can instrument;
* ``fn3`` — everything.

This module computes, bottom-up over call-graph SCCs, a
:class:`FunctionClass` for each function:

* ``PURE`` — no observable writes: stores only to the function's own allocas
  (whose address does not escape), no unsafe/writing intrinsic calls, and all
  callees pure. Reads of globals/arguments are allowed ("read-only").
* ``INSTRUMENTED`` — any other user-defined function: LP instruments its
  memory accesses, so under ``fn2`` its loads/stores simply participate in
  run-time conflict tracking.
* ``THREAD_SAFE`` — library intrinsic marked re-entrant (e.g. ``sqrt`` with
  errno modelling disabled, ``memcpy``-style helpers that only touch
  pointer arguments).
* ``UNSAFE`` — library intrinsic with hidden global state or I/O (``rand``,
  ``print``): uninstrumentable, so any loop calling it serializes below
  ``fn3``.
"""

from __future__ import annotations

import enum

from ..ir.instructions import GEP, Alloca, Call, Load, Store
from .callgraph import CallGraph


class FunctionClass(enum.Enum):
    PURE = "pure"
    INSTRUMENTED = "instrumented"
    THREAD_SAFE = "thread_safe"
    UNSAFE = "unsafe"


def _trace_to_base(pointer):
    """Follow GEPs to the base pointer value."""
    while isinstance(pointer, GEP):
        pointer = pointer.pointer
    return pointer


def _alloca_escapes(alloca):
    """Does the alloca's address flow anywhere besides load/store/gep?

    An escaping address may be written by callees, so stores to it cannot be
    discounted when judging purity.
    """
    worklist = [alloca]
    seen = set()
    while worklist:
        value = worklist.pop()
        if id(value) in seen:
            continue
        seen.add(id(value))
        for user in value.users():
            if isinstance(user, Load):
                continue
            if isinstance(user, Store):
                if user.pointer is value and user.value is not value:
                    continue
                return True  # the address itself is stored somewhere
            if isinstance(user, GEP) and user.pointer is value:
                worklist.append(user)
                continue
            return True  # call argument, select, phi, compare... treat as escape
    return False


class PurityAnalysis:
    """Computes :class:`FunctionClass` for every function in a module."""

    def __init__(self, module, callgraph=None):
        self.module = module
        self.callgraph = callgraph if callgraph is not None \
            else CallGraph(module)
        self.classes = {}
        self._run()

    def _run(self):
        for component in self.callgraph.sccs_bottom_up():
            # First pass: intrinsic members classify directly.
            component_pure = True
            for function in component:
                if function.is_intrinsic:
                    info = function.intrinsic
                    if info.side_effects or info.global_state:
                        self.classes[function] = FunctionClass.UNSAFE
                    elif info.writes_memory:
                        self.classes[function] = FunctionClass.THREAD_SAFE
                    else:
                        self.classes[function] = FunctionClass.PURE
            # Second pass: user functions in the SCC are pure only if every
            # member is locally pure and every external callee is pure.
            user_members = [f for f in component if not f.is_intrinsic]
            for function in user_members:
                if not self._locally_pure(function, component):
                    component_pure = False
                    break
            for function in user_members:
                if function.is_declaration:
                    # Unknown body: conservatively uninstrumentable.
                    self.classes[function] = FunctionClass.UNSAFE
                elif component_pure:
                    self.classes[function] = FunctionClass.PURE
                else:
                    self.classes[function] = FunctionClass.INSTRUMENTED

    def _locally_pure(self, function, component):
        if function.is_declaration:
            return False
        local_allocas = set()
        for instruction in function.instructions():
            if isinstance(instruction, Alloca):
                if not _alloca_escapes(instruction):
                    local_allocas.add(instruction)
        for instruction in function.instructions():
            if isinstance(instruction, Store):
                base = _trace_to_base(instruction.pointer)
                if base not in local_allocas:
                    return False
            elif isinstance(instruction, Call):
                callee = instruction.callee
                if callee in component:
                    continue  # judged with the whole SCC
                callee_class = self.classes.get(callee)
                if callee_class is not FunctionClass.PURE:
                    return False
        return True

    # -- queries -------------------------------------------------------------

    def class_of(self, function):
        return self.classes[function]

    def is_pure(self, function):
        return self.classes.get(function) is FunctionClass.PURE
