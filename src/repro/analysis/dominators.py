"""Dominator tree and dominance frontiers.

Implements Cooper, Harvey & Kennedy's "A Simple, Fast Dominance Algorithm"
(2001) — the same algorithm LLVM used for years — plus Cytron-style dominance
frontiers, which :mod:`repro.passes.mem2reg` needs for pruned SSA
construction.
"""

from __future__ import annotations

from .cfg import CFG


class DominatorTree:
    """Immediate-dominator tree over the reachable blocks of a function."""

    def __init__(self, function, cfg=None):
        self.function = function
        self.cfg = cfg if cfg is not None else CFG(function)
        self.idom = {}
        self._order_index = {}
        self._children = {}
        self._frontiers = None
        self._compute()

    # -- construction -------------------------------------------------------

    def _compute(self):
        rpo = self.cfg.reverse_post_order()
        for index, block in enumerate(rpo):
            self._order_index[block] = index
        entry = self.function.entry_block
        idom = {entry: entry}

        def intersect(b1, b2):
            while b1 is not b2:
                while self._order_index[b1] > self._order_index[b2]:
                    b1 = idom[b1]
                while self._order_index[b2] > self._order_index[b1]:
                    b2 = idom[b2]
            return b1

        changed = True
        while changed:
            changed = False
            for block in rpo:
                if block is entry:
                    continue
                new_idom = None
                for pred in self.cfg.predecessors(block):
                    if pred not in idom:
                        continue  # unreachable or not yet processed
                    new_idom = pred if new_idom is None else intersect(pred, new_idom)
                if new_idom is not None and idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True

        self.idom = idom
        self._children = {block: [] for block in idom}
        for block, parent in idom.items():
            if block is not entry:
                self._children[parent].append(block)

    # -- queries -------------------------------------------------------------

    def immediate_dominator(self, block):
        """The idom of ``block`` (``None`` for the entry or unreachable)."""
        if block is self.function.entry_block:
            return None
        return self.idom.get(block)

    def children(self, block):
        return self._children.get(block, [])

    def dominates(self, a, b):
        """Does block ``a`` dominate block ``b``? (Reflexive.)"""
        if a is b:
            return True
        runner = self.idom.get(b)
        entry = self.function.entry_block
        while runner is not None:
            if runner is a:
                return True
            if runner is entry:
                return False
            runner = self.idom.get(runner)
        return False

    def strictly_dominates(self, a, b):
        return a is not b and self.dominates(a, b)

    def dom_tree_preorder(self):
        """Blocks in dominator-tree preorder (entry first)."""
        entry = self.function.entry_block
        order = []
        stack = [entry]
        while stack:
            block = stack.pop()
            order.append(block)
            stack.extend(reversed(self._children.get(block, [])))
        return order

    # -- dominance frontiers ---------------------------------------------------

    def dominance_frontiers(self):
        """Map block -> set of blocks in its dominance frontier (Cytron)."""
        if self._frontiers is not None:
            return self._frontiers
        frontiers = {block: set() for block in self.idom}
        for block in self.idom:
            preds = [p for p in self.cfg.predecessors(block) if p in self.idom]
            if len(preds) < 2:
                continue
            for pred in preds:
                runner = pred
                while runner is not self.idom[block]:
                    frontiers[runner].add(block)
                    runner = self.idom[runner]
        self._frontiers = frontiers
        return frontiers

    def iterated_dominance_frontier(self, blocks):
        """IDF of a set of blocks: where phi nodes must be placed for defs in
        those blocks (the core step of pruned SSA construction)."""
        frontiers = self.dominance_frontiers()
        result = set()
        worklist = [b for b in blocks if b in self.idom]
        seen = set(worklist)
        while worklist:
            block = worklist.pop()
            for frontier_block in frontiers.get(block, ()):
                if frontier_block not in result:
                    result.add(frontier_block)
                    if frontier_block not in seen:
                        seen.add(frontier_block)
                        worklist.append(frontier_block)
        return result
