"""Reduction recurrence detection (LLVM's ``RecurrenceDescriptor``).

The paper (§II-A) treats *reduction accumulators* as a special class of
non-computable register LCD: the per-iteration value is not known at compile
time, but the update pattern is a pure fold with an associative (or at least
well-understood) operator, so the accumulation can be decoupled from the
loop's critical path (tree/linear-chain reduction hardware, cf. Arm SVE).
Under the ``reduc1`` flag these phis are considered parallel with no
overhead; under ``reduc0`` they count as ordinary non-computable LCDs.

Detection criteria for a loop-header phi (mirroring LLVM):

* the phi has exactly two incoming values (preheader init, latch update);
* walking back from the latch value reaches the phi through a chain of
  instructions that all perform the *same* reduction operation (``add``,
  ``fadd``, ``mul``, ``fmul``, ``and``, ``or``, ``xor``), or the min/max
  pattern ``select(cmp(a, b), a, b)``;
* every in-loop user of the phi and of each chain link is either the next
  chain link or the loop-exit consumer — i.e. the running value never feeds
  other computation inside the loop (if it did, iterations would truly need
  the previous value and decoupling would be unsound).
"""

from __future__ import annotations

from ..ir.instructions import BinaryOp, FCmp, ICmp, Phi, Select

REDUCTION_BINOPS = {
    "add": "add",
    "fadd": "fadd",
    "mul": "mul",
    "fmul": "fmul",
    "and": "and",
    "or": "or",
    "xor": "xor",
}

MINMAX_PREDICATES = {
    ("icmp", "slt"): "smin",
    ("icmp", "sle"): "smin",
    ("icmp", "sgt"): "smax",
    ("icmp", "sge"): "smax",
    ("fcmp", "olt"): "fmin",
    ("fcmp", "ole"): "fmin",
    ("fcmp", "ogt"): "fmax",
    ("fcmp", "oge"): "fmax",
}


class RecurrenceDescriptor:
    """A recognized reduction: its phi, kind, and the chain instructions."""

    def __init__(self, phi, kind, chain):
        self.phi = phi
        self.kind = kind
        self.chain = list(chain)

    @property
    def is_float(self):
        return self.kind in ("fadd", "fmul", "fmin", "fmax")

    @property
    def is_associative(self):
        # FP reductions are mathematically non-associative; the paper still
        # decouples them with linear-chain (ordered) reduction hardware.
        return self.kind in ("add", "mul", "and", "or", "xor", "smin", "smax")

    def __repr__(self):
        return f"<Reduction {self.kind} on %{self.phi.name or '?'}>"


def _operation_kind(instruction):
    """Classify one candidate chain link; returns the reduction kind or None.

    For min/max the link is the ``select``; its compare partner is looked
    through separately.
    """
    if isinstance(instruction, BinaryOp):
        return REDUCTION_BINOPS.get(instruction.opcode)
    if isinstance(instruction, Select):
        condition = instruction.condition
        if isinstance(condition, ICmp):
            key = ("icmp", condition.predicate)
        elif isinstance(condition, FCmp):
            key = ("fcmp", condition.predicate)
        else:
            return None
        kind = MINMAX_PREDICATES.get(key)
        if kind is None:
            return None
        # select arms must be the two compared values (either order).
        compared = {id(condition.lhs), id(condition.rhs)}
        arms = {id(instruction.true_value), id(instruction.false_value)}
        if compared != arms:
            return None
        return kind
    return None


def detect_reduction(phi, loop):
    """Return a :class:`RecurrenceDescriptor` if ``phi`` is a reduction
    accumulator of ``loop``, else ``None``.

    The chain walk admits intermediate (non-header) phi nodes, which is how
    *conditional* reductions (``if (p) acc = acc + x;``) appear after SSA
    construction — LLVM's RecurrenceDescriptor accepts the same shape.
    """
    if not isinstance(phi, Phi) or phi.parent is not loop.header:
        return None
    if len(phi.operands) != 2:
        return None

    latch_value = None
    for value, block in phi.incoming():
        if block in loop.blocks:
            latch_value = value
    if latch_value is None:
        return None
    if getattr(latch_value, "parent", None) not in loop.blocks:
        return None
    if latch_value is phi:
        return None  # invariant pass-through, not a reduction

    # Breadth-first walk from the latch value back to the header phi. Every
    # node on the way must be a same-kind reduction op or a pass-through phi.
    kind = None
    chain = []
    visited = set()
    extra_compare_ids = set()
    reached_header_phi = False
    worklist = [latch_value]

    def chain_continuable(value):
        if value is phi:
            return True
        if (
            isinstance(value, Phi)
            and getattr(value, "parent", None) in loop.blocks
            and value.parent is not loop.header
        ):
            return True
        return (
            _operation_kind(value) is not None
            and getattr(value, "parent", None) in loop.blocks
        )

    def match_phi_minmax(candidate):
        """``if (x OP best) best = x;`` — find the compare of {x, phi} that
        guards the conditional assignment; returns the min/max kind."""
        for user in list(candidate.users()) + list(phi.users()):
            if isinstance(user, (ICmp, FCmp)) and user.parent in loop.blocks:
                operand_ids = {id(user.lhs), id(user.rhs)}
                if operand_ids == {id(candidate), id(phi)} and user.predicate in (
                    "slt", "sle", "sgt", "sge", "olt", "ole", "ogt", "oge"
                ):
                    extra_compare_ids.add(id(user))
                    return "fmax" if isinstance(user, FCmp) else "smax"
        return None

    while worklist:
        current = worklist.pop()
        if current is phi:
            reached_header_phi = True
            continue
        if id(current) in visited:
            continue
        visited.add(id(current))
        if getattr(current, "parent", None) not in loop.blocks:
            return None
        if isinstance(current, Phi):
            if current.parent is loop.header:
                return None  # a different recurrence feeding this one
            chain.append(current)
            for incoming_value in current.operands:
                if chain_continuable(incoming_value):
                    worklist.append(incoming_value)
                else:
                    minmax_kind = match_phi_minmax(incoming_value)
                    if minmax_kind is None:
                        return None
                    if kind is None:
                        kind = minmax_kind
                    elif kind != minmax_kind:
                        return None
            continue
        current_kind = _operation_kind(current)
        if current_kind is None:
            return None
        if kind is None:
            kind = current_kind
        elif kind != current_kind:
            return None
        chain.append(current)
        # Exactly one operand continues the chain; the rest must be free of
        # the recurrence (checked globally by the use-set test below).
        if isinstance(current, Select):
            candidates = [current.true_value, current.false_value]
        else:
            candidates = [current.lhs, current.rhs]
        continuing = [
            candidate
            for candidate in candidates
            if candidate is phi
            or (
                isinstance(candidate, Phi)
                and getattr(candidate, "parent", None) in loop.blocks
                and candidate.parent is not loop.header
            )
            or (
                _operation_kind(candidate) == kind
                and getattr(candidate, "parent", None) in loop.blocks
            )
        ]
        if len(continuing) != 1:
            return None
        worklist.append(continuing[0])

    if not reached_header_phi or kind is None:
        return None

    chain_ids = {id(link) for link in chain}
    # Admit the compare feeding a min/max select or guarding a conditional
    # min/max as a chain-internal use.
    compare_ids = {
        id(link.condition) for link in chain if isinstance(link, Select)
    } | extra_compare_ids

    def uses_ok(value, allow_phi_feed=False):
        for user in value.users():
            if user.parent not in loop.blocks:
                continue  # out-of-loop consumer: fine
            if allow_phi_feed and user is phi:
                continue
            if id(user) in chain_ids or id(user) in compare_ids:
                continue
            return False
        return True

    if not uses_ok(phi):
        return None
    for link in chain:
        if not uses_ok(link, allow_phi_feed=True):
            return None

    return RecurrenceDescriptor(phi, kind, chain)


def loop_reductions(loop):
    """All reduction descriptors for a loop's header phis."""
    descriptors = []
    for phi in loop.header.phis():
        descriptor = detect_reduction(phi, loop)
        if descriptor is not None:
            descriptors.append(descriptor)
    return descriptors
