"""Control-flow graph helper built once per function.

Caches successor/predecessor maps and reachability so analyses avoid the
O(blocks) `BasicBlock.predecessors` scan, and provides the traversal orders
(reverse post-order) dominance and loop analysis need.
"""

from __future__ import annotations


class CFG:
    """Immutable snapshot of a function's control-flow graph.

    Invalidated by any CFG edit; passes rebuild it after mutating blocks.
    """

    def __init__(self, function):
        self.function = function
        self._succs = {}
        self._preds = {block: [] for block in function.blocks}
        for block in function.blocks:
            successors = block.successors()
            self._succs[block] = successors
            for successor in successors:
                self._preds[successor].append(block)
        self._reachable = self._compute_reachable()
        self._rpo = None

    def successors(self, block):
        return self._succs[block]

    def predecessors(self, block):
        return self._preds[block]

    def is_reachable(self, block):
        return block in self._reachable

    def reachable_blocks(self):
        """Reachable blocks in function order."""
        return [b for b in self.function.blocks if b in self._reachable]

    def _compute_reachable(self):
        entry = self.function.entry_block
        seen = {entry}
        worklist = [entry]
        while worklist:
            block = worklist.pop()
            for successor in self._succs[block]:
                if successor not in seen:
                    seen.add(successor)
                    worklist.append(successor)
        return seen

    def reverse_post_order(self):
        """Reverse post-order over reachable blocks (entry first).

        Computed lazily and cached; uses an explicit stack so deep CFGs do
        not hit Python's recursion limit.
        """
        if self._rpo is not None:
            return self._rpo
        entry = self.function.entry_block
        post = []
        visited = set()
        # Each stack entry is (block, iterator over its successors).
        stack = [(entry, iter(self._succs[entry]))]
        visited.add(entry)
        while stack:
            block, successor_iter = stack[-1]
            advanced = False
            for successor in successor_iter:
                if successor not in visited:
                    visited.add(successor)
                    stack.append((successor, iter(self._succs[successor])))
                    advanced = True
                    break
            if not advanced:
                post.append(block)
                stack.pop()
        self._rpo = list(reversed(post))
        return self._rpo

    def post_order(self):
        return list(reversed(self.reverse_post_order()))
