"""Control-flow graph helper built once per function.

Caches successor/predecessor maps and reachability so analyses avoid the
O(blocks) `BasicBlock.predecessors` scan, and provides the traversal orders
(reverse post-order) dominance and loop analysis need.
"""

from __future__ import annotations

from .invalidation import check_fresh, register_snapshot


class CFG:
    """Immutable snapshot of a function's control-flow graph.

    Invalidated by any CFG edit; passes rebuild it after mutating blocks.
    Once the pass manager marks the snapshot stale (between pipeline
    stages), queries raise :class:`~repro.errors.StaleAnalysisError`.
    """

    def __init__(self, function):
        self.function = function
        self._stale = False
        register_snapshot(self)
        self._succs = {}
        self._preds = {block: [] for block in function.blocks}
        for block in function.blocks:
            successors = block.successors()
            self._succs[block] = successors
            for successor in successors:
                self._preds[successor].append(block)
        self._reachable = self._compute_reachable()
        self._rpo = None

    def invalidate(self):
        """Mark this snapshot stale; further queries raise."""
        self._stale = True

    def successors(self, block):
        if self._stale:
            check_fresh(self, "CFG")
        return self._succs[block]

    def predecessors(self, block):
        if self._stale:
            check_fresh(self, "CFG")
        return self._preds[block]

    def is_reachable(self, block):
        if self._stale:
            check_fresh(self, "CFG")
        return block in self._reachable

    def reachable_blocks(self):
        """Reachable blocks in function order."""
        if self._stale:
            check_fresh(self, "CFG")
        return [b for b in self.function.blocks if b in self._reachable]

    def _compute_reachable(self):
        entry = self.function.entry_block
        seen = {entry}
        worklist = [entry]
        while worklist:
            block = worklist.pop()
            for successor in self._succs[block]:
                if successor not in seen:
                    seen.add(successor)
                    worklist.append(successor)
        return seen

    def reverse_post_order(self):
        """Reverse post-order over reachable blocks (entry first).

        Computed lazily and cached; uses an explicit stack so deep CFGs do
        not hit Python's recursion limit.
        """
        if self._stale:
            check_fresh(self, "CFG")
        if self._rpo is not None:
            return self._rpo
        entry = self.function.entry_block
        post = []
        visited = set()
        # Each stack entry is (block, iterator over its successors).
        stack = [(entry, iter(self._succs[entry]))]
        visited.add(entry)
        while stack:
            block, successor_iter = stack[-1]
            advanced = False
            for successor in successor_iter:
                if successor not in visited:
                    visited.add(successor)
                    stack.append((successor, iter(self._succs[successor])))
                    advanced = True
                    break
            if not advanced:
                post.append(block)
                stack.pop()
        self._rpo = list(reversed(post))
        return self._rpo

    def post_order(self):
        return list(reversed(self.reverse_post_order()))
