"""repro.analysis — compiler analyses over the repro IR.

CFG utilities, dominators (Cooper-Harvey-Kennedy), natural-loop detection,
scalar evolution (the paper's SCEV-based "computable LCD" classifier),
reduction recurrence detection, function purity, and the call graph.
"""

from .callgraph import CallGraph
from .cfg import CFG
from .dominators import DominatorTree
from .loop_info import Loop, LoopInfo
from .purity import FunctionClass, PurityAnalysis
from .reduction import RecurrenceDescriptor, detect_reduction, loop_reductions
from .scev import (
    COULD_NOT_COMPUTE,
    SCEV,
    SCEVAdd,
    SCEVAddRec,
    SCEVConstant,
    SCEVCouldNotCompute,
    SCEVMul,
    SCEVUnknown,
    ScalarEvolution,
    scev_add,
    scev_mul,
    scev_sub,
)

__all__ = [
    "CFG",
    "COULD_NOT_COMPUTE",
    "CallGraph",
    "DominatorTree",
    "FunctionClass",
    "Loop",
    "LoopInfo",
    "PurityAnalysis",
    "RecurrenceDescriptor",
    "SCEV",
    "SCEVAdd",
    "SCEVAddRec",
    "SCEVConstant",
    "SCEVCouldNotCompute",
    "SCEVMul",
    "SCEVUnknown",
    "ScalarEvolution",
    "detect_reduction",
    "loop_reductions",
    "scev_add",
    "scev_mul",
    "scev_sub",
]
