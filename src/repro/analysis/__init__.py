"""repro.analysis — compiler analyses over the repro IR.

CFG utilities, dominators (Cooper-Harvey-Kennedy), natural-loop detection,
scalar evolution (the paper's SCEV-based "computable LCD" classifier),
reduction recurrence detection, function purity, the call graph, the static
loop-carried memory dependence engine, and the lint diagnostics framework.
"""

from .callgraph import CallGraph
from .cfg import CFG
from .depend import (
    VERDICT_DOALL,
    VERDICT_LCD,
    VERDICT_UNKNOWN,
    DependenceAnalysis,
    LoopDependence,
    analyze_module,
    classify_header_phis,
    module_memory_summaries,
)
from .dominators import DominatorTree
from .loop_info import Loop, LoopInfo
from .purity import FunctionClass, PurityAnalysis
from .reduction import RecurrenceDescriptor, detect_reduction, loop_reductions
from .scev import (
    COULD_NOT_COMPUTE,
    SCEV,
    SCEVAdd,
    SCEVAddRec,
    SCEVConstant,
    SCEVCouldNotCompute,
    SCEVMul,
    SCEVUnknown,
    ScalarEvolution,
    scev_add,
    scev_mul,
    scev_sub,
)

__all__ = [
    "CFG",
    "COULD_NOT_COMPUTE",
    "CallGraph",
    "DependenceAnalysis",
    "DominatorTree",
    "FunctionClass",
    "Loop",
    "LoopDependence",
    "LoopInfo",
    "PurityAnalysis",
    "RecurrenceDescriptor",
    "SCEV",
    "SCEVAdd",
    "SCEVAddRec",
    "SCEVConstant",
    "SCEVCouldNotCompute",
    "SCEVMul",
    "SCEVUnknown",
    "ScalarEvolution",
    "VERDICT_DOALL",
    "VERDICT_LCD",
    "VERDICT_UNKNOWN",
    "analyze_module",
    "classify_header_phis",
    "detect_reduction",
    "loop_reductions",
    "module_memory_summaries",
    "scev_add",
    "scev_mul",
    "scev_sub",
]
