"""Call graph construction and SCC condensation (Tarjan).

Used by the purity analysis (bottom-up over SCCs) and by the Loopapalooza
compile-time component to know which functions a loop may transitively call.
"""

from __future__ import annotations

from ..ir.instructions import Call


class CallGraph:
    """Direct-call graph over a module's functions (intrinsics included)."""

    def __init__(self, module):
        self.module = module
        self.callees = {}
        self.callers = {}
        for function in module.functions.values():
            self.callees[function] = set()
            self.callers.setdefault(function, set())
        for function in module.functions.values():
            for instruction in function.instructions():
                if isinstance(instruction, Call):
                    self.callees[function].add(instruction.callee)
                    self.callers.setdefault(instruction.callee, set()).add(function)

    def callees_of(self, function):
        return self.callees.get(function, set())

    def is_self_recursive(self, function):
        """Does the function call itself directly?"""
        return function in self.callees.get(function, ())

    def callers_of(self, function):
        return self.callers.get(function, set())

    def transitive_callees(self, function):
        """Every function reachable through calls from ``function``."""
        seen = set()
        worklist = [function]
        while worklist:
            current = worklist.pop()
            for callee in self.callees.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    worklist.append(callee)
        return seen

    def sccs_bottom_up(self):
        """Strongly connected components, callees before callers (Tarjan's
        algorithm emits SCCs in reverse topological order, which is exactly
        the bottom-up order purity propagation wants)."""
        index_counter = [0]
        indices = {}
        lowlinks = {}
        on_stack = set()
        stack = []
        result = []

        def strongconnect(node):
            # Iterative Tarjan to avoid recursion limits on deep call chains.
            work = [(node, iter(sorted(self.callees.get(node, ()), key=lambda f: f.name)))]
            indices[node] = lowlinks[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            while work:
                current, successor_iter = work[-1]
                advanced = False
                for successor in successor_iter:
                    if successor not in indices:
                        indices[successor] = lowlinks[successor] = index_counter[0]
                        index_counter[0] += 1
                        stack.append(successor)
                        on_stack.add(successor)
                        work.append(
                            (successor, iter(sorted(self.callees.get(successor, ()),
                                                    key=lambda f: f.name)))
                        )
                        advanced = True
                        break
                    if successor in on_stack:
                        lowlinks[current] = min(lowlinks[current], indices[successor])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlinks[parent] = min(lowlinks[parent], lowlinks[current])
                if lowlinks[current] == indices[current]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member is current:
                            break
                    result.append(component)

        for function in self.module.functions.values():
            if function not in indices:
                strongconnect(function)
        return result
