"""repro.analysis.lint — the diagnostics framework behind ``repro lint``.

Importing this package registers the built-in checkers.
"""

from .core import (
    CATALOG,
    ERROR,
    INFO,
    WARNING,
    Diagnostic,
    LintContext,
    checker,
    declare,
    format_diagnostics,
    run_lint,
    worst_severity,
)
from . import checkers  # noqa: F401  (registers the built-in checkers)

__all__ = [
    "CATALOG",
    "Diagnostic",
    "ERROR",
    "INFO",
    "LintContext",
    "WARNING",
    "checker",
    "checkers",
    "declare",
    "format_diagnostics",
    "run_lint",
    "worst_severity",
]
