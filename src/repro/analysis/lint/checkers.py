"""Built-in lint checkers and the diagnostic catalog.

Diagnostic ID ranges:

* ``LP1xx`` — IR well-formedness and pipeline invariants,
* ``LP11x`` — instrumentation-plan consistency,
* ``LP2xx`` — suspicious loop shapes and analysis gaps.

To add a checker: declare its IDs with :func:`~.core.declare`, write a
``check(context, emit)`` function, and decorate it with
:func:`~.core.checker`; the catalog table in ``docs/internals.md`` mirrors
the declarations below.
"""

from __future__ import annotations

from ...errors import VerificationError
from ...ir.verifier import verify_function
from ..depend import VERDICT_UNKNOWN
from .core import ERROR, INFO, WARNING, checker, declare

LP101 = declare(
    "LP101", ERROR, "IR verifier violation (structure, SSA dominance, "
    "phi/CFG mismatch)")
LP102 = declare(
    "LP102", WARNING, "unreachable basic block survives in the final module")
LP103 = declare(
    "LP103", ERROR, "pass-pipeline invariant violation: a stage produced IR "
    "that fails the inter-pass verifier")
LP111 = declare(
    "LP111", ERROR, "instrumentation edge action targets a CFG edge that "
    "does not exist")
LP112 = declare(
    "LP112", ERROR, "instrumentation hook references an instruction or "
    "block not present in its function")
LP113 = declare(
    "LP113", WARNING, "dead instrumentation: a callback is attached to "
    "unreachable code and can never fire")
LP201 = declare(
    "LP201", WARNING, "loop is not in simplified form (no preheader): it "
    "cannot be uniquely instrumented")
LP202 = declare(
    "LP202", WARNING, "loop has multiple backedges (merged latches)")
LP203 = declare(
    "LP203", WARNING, "loop has no exit edge: once entered it can only "
    "leave by function return")
LP204 = declare(
    "LP204", INFO, "loop-carried memory dependence could not be resolved "
    "statically (verdict UNKNOWN)")
LP205 = declare(
    "LP205", INFO, "loop excluded from the static census: multiple latches "
    "prevent unique instrumentation (loop-simplify never merges backedges, "
    "so the shape is terminal)")
LP206 = declare(
    "LP206", INFO, "outer loop blocked only by an inner-loop boundary "
    "(symbolic inner stride or trip count): a sharper nest model would "
    "resolve it")
LP207 = declare(
    "LP207", INFO, "loop blocked only by a summarizable call: every "
    "blocking reason names a call that has a memory summary, so a sharper "
    "access-function summary would resolve it")

#: Cap per-checker findings of one kind so a badly broken module still
#: produces a readable report.
_MAX_PER_FUNCTION = 25


@checker("ir-verify")
def check_ir_verifier(context, emit):
    """LP101: run the full IR verifier, one diagnostic per problem."""
    for function in context.module.defined_functions():
        problems = []
        verify_function(function, problems)
        for problem in problems[:_MAX_PER_FUNCTION]:
            emit(LP101, function.name, -1, problem)


@checker("unreachable-blocks")
def check_unreachable_blocks(context, emit):
    """LP102: blocks no execution can reach (simplify-cfg should have
    removed them; they bloat analyses and hide stale instrumentation)."""
    for function in context.module.defined_functions():
        loop_info = context.static_info.loop_infos.get(function.name)
        if loop_info is None:
            continue
        cfg = loop_info.cfg
        for index, block in enumerate(function.blocks):
            if not cfg.is_reachable(block):
                emit(LP102, function.name, index,
                     f"block '{block.name}' is unreachable")


@checker("pipeline-verify")
def check_pipeline_invariants(context, emit):
    """LP103: recompile from source with verification between every pass;
    any stage that breaks the IR is reported with its name."""
    if context.source is None:
        return
    from ...frontend.codegen import compile_source

    try:
        compile_source(context.source, module_name=context.name,
                       verify_each=True)
    except VerificationError as error:
        for problem in error.problems[:_MAX_PER_FUNCTION]:
            emit(LP103, "", -1, problem)


def _block_names(function):
    return {id(block): block.name for block in function.blocks}


@checker("instrumentation-edges")
def check_instrumentation_edges(context, emit):
    """LP111/LP113: every planned edge action must lie on a real CFG edge,
    and its source block must be reachable for the callback to ever fire."""
    for function in context.module.defined_functions():
        plan = context.instrumentation.get(function.name)
        loop_info = context.static_info.loop_infos.get(function.name)
        if plan is None or loop_info is None:
            continue
        cfg = loop_info.cfg
        names = _block_names(function)
        edges = set()
        for block in function.blocks:
            if block.terminator is None:
                continue
            for successor in block.terminator.successors():
                edges.add((id(block), id(successor)))
        for (pred_id, succ_id), actions in plan.edge_actions.items():
            described = ", ".join(
                f"{kind} {loop_id}" for kind, loop_id in actions)
            pred_name = names.get(pred_id)
            succ_name = names.get(succ_id)
            if pred_name is None or succ_name is None:
                emit(LP111, function.name, -1,
                     f"edge action [{described}] references a block that "
                     f"is no longer in the function")
                continue
            if (pred_id, succ_id) not in edges:
                emit(LP111, function.name, -1,
                     f"edge action [{described}] on nonexistent edge "
                     f"{pred_name} -> {succ_name}")
        reachable_ids = {
            id(block) for block in function.blocks if cfg.is_reachable(block)
        }
        for (pred_id, succ_id), actions in plan.edge_actions.items():
            if pred_id in names and pred_id not in reachable_ids:
                described = ", ".join(
                    f"{kind} {loop_id}" for kind, loop_id in actions)
                emit(LP113, function.name, -1,
                     f"edge action [{described}] fires from unreachable "
                     f"block {names[pred_id]}")


@checker("instrumentation-hooks")
def check_instrumentation_hooks(context, emit):
    """LP112/LP113: def/use/call hooks must point at live instructions."""
    for function in context.module.defined_functions():
        plan = context.instrumentation.get(function.name)
        loop_info = context.static_info.loop_infos.get(function.name)
        if plan is None or loop_info is None:
            continue
        cfg = loop_info.cfg
        instruction_block = {}
        for block in function.blocks:
            for instruction in block.instructions:
                instruction_block[id(instruction)] = block
        names = _block_names(function)

        def hook_target(kind, instruction_id, label):
            block = instruction_block.get(instruction_id)
            if block is None:
                emit(LP112, function.name, -1,
                     f"{kind} hook for {label} references an instruction "
                     f"not in the function")
            elif not cfg.is_reachable(block):
                emit(LP113, function.name, -1,
                     f"{kind} hook for {label} sits in unreachable block "
                     f"{block.name}")

        for instruction_id, specs in plan.def_hooks.items():
            for _loop_id, phi_key in specs:
                hook_target("def", instruction_id, phi_key)
        for instruction_id, specs in plan.use_hooks.items():
            for _loop_id, phi_key in specs:
                hook_target("use", instruction_id, phi_key)
        for instruction_id, site_id in plan.call_sites.items():
            hook_target("call-site", instruction_id, site_id)
        for instruction_id, site_ids in plan.call_use_hooks.items():
            for site_id in site_ids:
                hook_target("call-use", instruction_id, site_id)
        for (latch_id, header_id), specs in plan.latch_values.items():
            keys = ", ".join(key for key, _value in specs)
            if latch_id not in names or header_id not in names:
                emit(LP112, function.name, -1,
                     f"latch-value shipping for [{keys}] references a "
                     f"block not in the function")


@checker("loop-shapes")
def check_loop_shapes(context, emit):
    """LP201/LP202/LP203: loops the canonicalizer failed to simplify."""
    for function in context.module.defined_functions():
        loop_info = context.static_info.loop_infos.get(function.name)
        if loop_info is None:
            continue
        cfg = loop_info.cfg
        for loop in loop_info.all_loops():
            header_index = function.blocks.index(loop.header)
            if len(loop.latches) > 1:
                emit(LP202, function.name, header_index,
                     f"loop {loop.loop_id} has {len(loop.latches)} "
                     f"backedges")
            if loop.preheader(cfg) is None:
                emit(LP201, function.name, header_index,
                     f"loop {loop.loop_id} has no preheader")
            if not loop.exit_edges(cfg):
                emit(LP203, function.name, header_index,
                     f"loop {loop.loop_id} has no exit edge")
            static = context.static_info.loops.get(loop.loop_id)
            if (static is not None and not static.trackable
                    and static.untrackable_reason == "multi-latch"):
                emit(LP205, function.name, header_index,
                     f"loop {loop.loop_id} dropped from the census: "
                     f"{len(loop.latches)} latches")


@checker("memdep-unknown")
def check_unresolved_dependence(context, emit):
    """LP204: where the static dependence engine gave up, and why."""
    dependence = context.dependence()
    for function in context.module.defined_functions():
        loop_info = context.static_info.loop_infos.get(function.name)
        if loop_info is None:
            continue
        for loop in loop_info.all_loops():
            verdict = dependence.get(loop.loop_id)
            if verdict is None or verdict.verdict != VERDICT_UNKNOWN:
                continue
            header_index = function.blocks.index(loop.header)
            reason = verdict.reasons[0] if verdict.reasons else "no reason"
            emit(LP204, function.name, header_index,
                 f"loop {loop.loop_id}: {reason}")


@checker("remaining-blockers")
def check_remaining_blockers(context, emit):
    """LP206/LP207: the machine-readable remaining-blocker census.

    An UNKNOWN loop lands in exactly one bucket when *every* blocking
    reason is of a single resolvable kind: inner-loop boundaries (LP206)
    or calls that do have a memory summary (LP207). Mixed or intrinsic
    blockers (aliasing, non-affine data-dependent subscripts) stay plain
    LP204.
    """
    dependence = context.dependence()
    for function in context.module.defined_functions():
        loop_info = context.static_info.loop_infos.get(function.name)
        if loop_info is None:
            continue
        for loop in loop_info.all_loops():
            verdict = dependence.get(loop.loop_id)
            if verdict is None or verdict.verdict != VERDICT_UNKNOWN \
                    or not verdict.reasons:
                continue
            header_index = function.blocks.index(loop.header)
            if all("inner loop" in r for r in verdict.reasons):
                emit(LP206, function.name, header_index,
                     f"loop {loop.loop_id}: {verdict.reasons[0]}")
            elif all("call @" in r and "no memory summary" not in r
                     for r in verdict.reasons):
                emit(LP207, function.name, header_index,
                     f"loop {loop.loop_id}: {verdict.reasons[0]}")
