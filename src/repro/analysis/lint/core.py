"""The lint framework: diagnostics, checker registry, and the driver.

A *checker* is a function ``check(context, emit)`` registered with
:func:`checker`; it inspects a compiled program and reports findings through
``emit``. Every finding is a :class:`Diagnostic` with

* a stable ID (``LPxxx`` — see the catalog in :mod:`.checkers` and
  ``docs/internals.md``),
* a severity (:data:`ERROR` > :data:`WARNING` > :data:`INFO`),
* a location (function name + block index, ``-1`` for whole-function or
  whole-module findings), and
* a human-readable message built only from stable names — never from
  ``id()`` values or set iteration order — so output is byte-identical
  across hash seeds and runs.

:func:`run_lint` executes every registered checker and returns diagnostics
sorted by ``(function, block_index, diagnostic ID, message)``; the CLI's
``repro lint`` renders them and exits non-zero iff any :data:`ERROR` is
present.
"""

from __future__ import annotations

ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_RANK = {ERROR: 0, WARNING: 1, INFO: 2}

#: Registered checkers, in registration order: ``(checker_id, fn)``.
_CHECKERS = []

#: ``diagnostic_id -> (default_severity, one-line meaning)`` — the catalog.
CATALOG = {}


def checker(checker_id):
    """Decorator registering a checker function under a stable name."""

    def register(fn):
        if any(existing_id == checker_id for existing_id, _ in _CHECKERS):
            raise ValueError(f"duplicate checker id {checker_id!r}")
        _CHECKERS.append((checker_id, fn))
        return fn

    return register


def declare(diagnostic_id, severity, meaning):
    """Add a diagnostic ID to the catalog (IDs must be declared before any
    checker emits them; the docs checker-catalog table is generated from
    this)."""
    if severity not in _SEVERITY_RANK:
        raise ValueError(f"unknown severity {severity!r}")
    if diagnostic_id in CATALOG:
        raise ValueError(f"duplicate diagnostic id {diagnostic_id!r}")
    CATALOG[diagnostic_id] = (severity, meaning)
    return diagnostic_id


class Diagnostic:
    """One lint finding."""

    __slots__ = ("id", "severity", "function", "block_index", "message")

    def __init__(self, diagnostic_id, severity, function, block_index,
                 message):
        self.id = diagnostic_id
        self.severity = severity
        self.function = function
        self.block_index = block_index
        self.message = message

    @property
    def sort_key(self):
        return (self.function, self.block_index, self.id, self.message)

    def render(self):
        location = self.function or "<module>"
        if self.block_index >= 0:
            location = f"{location}:{self.block_index}"
        return f"{self.id} {self.severity:<7} {location}: {self.message}"

    def __repr__(self):
        return f"<Diagnostic {self.render()}>"


class LintContext:
    """Everything checkers may inspect for one program.

    ``module``/``static_info``/``instrumentation`` describe the compiled
    program; ``source`` (when available) lets pipeline checkers recompile
    with inter-pass verification. Built from a
    :class:`~repro.core.framework.Loopapalooza` with :meth:`for_program`.
    """

    def __init__(self, module, static_info=None, instrumentation=None,
                 source=None, name="program"):
        self.module = module
        self.name = name
        self.source = source
        if static_info is None:
            from ...core.static_info import ModuleStaticInfo

            static_info = ModuleStaticInfo(module)
        self.static_info = static_info
        if instrumentation is None:
            from ...core.instrument import build_instrumentation

            instrumentation = build_instrumentation(static_info)
        self.instrumentation = instrumentation
        self._dependence = None

    @classmethod
    def for_program(cls, lp):
        return cls(lp.module, lp.static_info, lp.instrumentation,
                   source=lp.source, name=lp.name)

    def dependence(self):
        """{loop_id: LoopDependence}, shared with the crosscheck reporter."""
        if self._dependence is None:
            self._dependence = self.static_info.dependence()
        return self._dependence


def run_lint(context, only=None):
    """Run every registered checker; return sorted diagnostics.

    ``only`` optionally restricts to an iterable of checker IDs.
    """
    wanted = set(only) if only is not None else None
    diagnostics = []

    def make_emit(checker_id):
        def emit(diagnostic_id, function, block_index, message,
                 severity=None):
            if diagnostic_id not in CATALOG:
                raise ValueError(
                    f"checker {checker_id} emitted undeclared diagnostic "
                    f"{diagnostic_id!r}")
            default_severity, _ = CATALOG[diagnostic_id]
            diagnostics.append(Diagnostic(
                diagnostic_id, severity or default_severity, function,
                block_index, message))

        return emit

    for checker_id, fn in _CHECKERS:
        if wanted is not None and checker_id not in wanted:
            continue
        fn(context, make_emit(checker_id))
    diagnostics.sort(key=lambda d: d.sort_key)
    return diagnostics


def worst_severity(diagnostics):
    """The most severe level present, or ``None`` for a clean run."""
    worst = None
    for diagnostic in diagnostics:
        if worst is None or (_SEVERITY_RANK[diagnostic.severity]
                             < _SEVERITY_RANK[worst]):
            worst = diagnostic.severity
    return worst


def format_diagnostics(diagnostics, name="program"):
    """Render a lint report (deterministic, newline-joined)."""
    lines = [f"lint report for {name}"]
    if not diagnostics:
        lines.append("  clean: no diagnostics")
        return "\n".join(lines)
    counts = {ERROR: 0, WARNING: 0, INFO: 0}
    for diagnostic in diagnostics:
        counts[diagnostic.severity] += 1
        lines.append("  " + diagnostic.render())
    lines.append(
        f"  {counts[ERROR]} error(s), {counts[WARNING]} warning(s), "
        f"{counts[INFO]} info")
    return "\n".join(lines)
