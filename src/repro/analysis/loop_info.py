"""Natural-loop detection and the loop nesting forest.

A natural loop is identified by a *back edge* ``latch -> header`` where the
header dominates the latch; the loop body is every block that can reach the
latch without passing through the header. Back edges sharing a header are
merged into one loop (LLVM's convention). Loops are arranged in a nesting
forest; :class:`LoopInfo` answers "innermost loop containing block B".

Loop identity matters to Loopapalooza: every loop receives a stable string id
(``function.header``) that the instrumentation, runtime profile, and report
all key on.
"""

from __future__ import annotations

from .cfg import CFG
from .dominators import DominatorTree
from .invalidation import check_fresh, register_snapshot

# -- provenance ---------------------------------------------------------------
#
# The ICC opt-report taxonomy (see SNIPPETS.md): every loop the transform
# passes create or rewrite records where it came from, so figures can fold
# DISTR/PEEL/FUSED descendants back onto their source loop. Loops with no
# recorded origin are MAIN (written by the programmer, never restructured).

ORIGIN_MAIN = "MAIN"
ORIGIN_DISTR = "DISTR"
ORIGIN_FUSED = "FUSED"
ORIGIN_PEEL = "PEEL"
ORIGIN_REMAINDER = "REMAINDER"
ORIGIN_TAGS = (
    ORIGIN_MAIN, ORIGIN_DISTR, ORIGIN_FUSED, ORIGIN_PEEL, ORIGIN_REMAINDER,
)


class LoopOrigin:
    """Provenance of one loop: how it was produced and from which loop."""

    __slots__ = ("tag", "source", "note")

    def __init__(self, tag, source, note=""):
        if tag not in ORIGIN_TAGS:
            raise ValueError(f"unknown loop origin tag {tag!r}")
        self.tag = tag
        self.source = source  # loop_id of the loop this one derives from
        self.note = note

    def to_dict(self):
        return {"tag": self.tag, "source": self.source, "note": self.note}

    def describe(self):
        suffix = f" ({self.note})" if self.note else ""
        return f"{self.tag} <- {self.source}{suffix}"

    def __repr__(self):
        return f"<LoopOrigin {self.describe()}>"


def record_loop_origin(module, loop_id, tag, source, note=""):
    """Attach provenance for ``loop_id`` on its module (latest write wins)."""
    origin = LoopOrigin(tag, source, note)
    module.loop_origins[loop_id] = origin
    return origin


def loop_origin_of(module, loop_id):
    """The recorded origin of ``loop_id``, defaulting to MAIN."""
    origin = getattr(module, "loop_origins", {}).get(loop_id)
    if origin is None:
        return LoopOrigin(ORIGIN_MAIN, loop_id)
    return origin


def loop_origin_root(module, loop_id):
    """Follow the origin chain back to the source loop's id.

    A DISTR loop distributed out of a PEEL product resolves to the original
    MAIN loop, which is the id figures group descendants under.
    """
    seen = {loop_id}
    current = loop_id
    while True:
        origin = getattr(module, "loop_origins", {}).get(current)
        if origin is None or origin.source == current:
            return current
        if origin.source in seen:  # defensive: malformed cycle
            return current
        seen.add(origin.source)
        current = origin.source


class Loop:
    """One natural loop: header, body blocks, and nesting links."""

    def __init__(self, header, function):
        self.header = header
        self.function = function
        self.blocks = {header}
        self.latches = []
        self.parent = None
        self.subloops = []
        self._info = None  # owning LoopInfo snapshot (None if hand-built)

    def _check_fresh(self):
        if self._info is not None and self._info._stale:
            check_fresh(self._info, "LoopInfo")

    # -- identity ---------------------------------------------------------------

    @property
    def loop_id(self):
        return f"{self.function.name}.{self.header.name}"

    @property
    def origin(self):
        """Provenance of this loop (MAIN unless a transform produced it)."""
        module = getattr(self.function, "module", None)
        if module is None:
            return LoopOrigin(ORIGIN_MAIN, self.loop_id)
        return loop_origin_of(module, self.loop_id)

    @property
    def depth(self):
        depth = 1
        parent = self.parent
        while parent is not None:
            depth += 1
            parent = parent.parent
        return depth

    # -- membership ---------------------------------------------------------------

    def contains_block(self, block):
        return block in self.blocks

    def contains_instruction(self, instruction):
        return instruction.parent in self.blocks

    def contains_loop(self, other):
        while other is not None:
            if other is self:
                return True
            other = other.parent
        return False

    # -- CFG shape queries ---------------------------------------------------------

    def preheader(self, cfg):
        """The unique out-of-loop predecessor of the header with a single
        successor, or ``None`` if the loop is not in simplified form."""
        self._check_fresh()
        outside = [
            pred for pred in cfg.predecessors(self.header)
            if pred not in self.blocks
        ]
        if len(outside) != 1:
            return None
        candidate = outside[0]
        if len(cfg.successors(candidate)) != 1:
            return None
        return candidate

    def single_latch(self):
        self._check_fresh()
        return self.latches[0] if len(self.latches) == 1 else None

    def blocks_in_function_order(self):
        """The loop body in function block order — ``self.blocks`` is a set,
        so iterating it directly gives a run-to-run varying order; every
        consumer whose output shape depends on it must use this instead."""
        self._check_fresh()
        return [b for b in self.function.blocks if b in self.blocks]

    def exiting_blocks(self, cfg):
        """Blocks inside the loop with a successor outside it."""
        result = []
        for block in self.blocks_in_function_order():
            if any(succ not in self.blocks for succ in cfg.successors(block)):
                result.append(block)
        return result

    def exit_blocks(self, cfg):
        """Blocks outside the loop that are targets of edges from inside."""
        seen = []
        for block in self.blocks_in_function_order():
            for successor in cfg.successors(block):
                if successor not in self.blocks and successor not in seen:
                    seen.append(successor)
        return seen

    def exit_edges(self, cfg):
        """All ``(inside_block, outside_block)`` edges leaving the loop."""
        edges = []
        for block in self.blocks_in_function_order():
            for successor in cfg.successors(block):
                if successor not in self.blocks:
                    edges.append((block, successor))
        return edges

    def is_invariant(self, value):
        """Is ``value`` defined outside this loop (constants/args included)?"""
        from ..ir.instructions import Instruction

        if not isinstance(value, Instruction):
            return True
        return value.parent not in self.blocks

    def __repr__(self):
        return f"<Loop {self.loop_id} depth={self.depth} blocks={len(self.blocks)}>"


class LoopInfo:
    """The loop nesting forest of one function."""

    def __init__(self, function, cfg=None, domtree=None):
        self.function = function
        self._stale = False
        register_snapshot(self)
        self.cfg = cfg if cfg is not None else CFG(function)
        self.domtree = domtree if domtree is not None else DominatorTree(function, self.cfg)
        self.top_level = []
        self._loop_of_block = {}
        self._discover()

    def invalidate(self):
        """Mark this snapshot (and its CFG) stale; further queries raise."""
        self._stale = True
        self.cfg.invalidate()

    def _discover(self):
        # 1. find back edges and group them by header.
        back_edges = {}
        for block in self.cfg.reachable_blocks():
            for successor in self.cfg.successors(block):
                if self.domtree.dominates(successor, block):
                    back_edges.setdefault(successor, []).append(block)

        # 2. build one Loop per header; body = reverse-reachable from latches.
        loops = {}
        for header, latches in back_edges.items():
            loop = Loop(header, self.function)
            loop._info = self
            loop.latches = list(latches)
            worklist = [l for l in latches if l is not header]
            while worklist:
                block = worklist.pop()
                if block in loop.blocks:
                    continue
                loop.blocks.add(block)
                for pred in self.cfg.predecessors(block):
                    if pred not in loop.blocks and self.cfg.is_reachable(pred):
                        worklist.append(pred)
            loops[header] = loop

        # 3. nest loops: process headers in dominator-tree preorder so outer
        # loops are seen before the loops they contain; the innermost loop
        # containing a block wins the `_loop_of_block` mapping.
        ordered_headers = [
            block for block in self.domtree.dom_tree_preorder() if block in loops
        ]
        for header in ordered_headers:
            loop = loops[header]
            enclosing = self._loop_of_block.get(header)
            if enclosing is not None:
                loop.parent = enclosing
                enclosing.subloops.append(loop)
            else:
                self.top_level.append(loop)
            for block in loop.blocks:
                self._loop_of_block[block] = loop

        self.all_loops_list = []

        def collect(loop):
            self.all_loops_list.append(loop)
            for sub in loop.subloops:
                collect(sub)

        for loop in self.top_level:
            collect(loop)

    # -- queries -------------------------------------------------------------

    def loop_for_block(self, block):
        """Innermost loop containing ``block`` (or ``None``)."""
        if self._stale:
            check_fresh(self, "LoopInfo")
        return self._loop_of_block.get(block)

    def all_loops(self):
        """Every loop, outer loops before their subloops."""
        if self._stale:
            check_fresh(self, "LoopInfo")
        return list(self.all_loops_list)

    def loops_in_postorder(self):
        """Innermost loops first — the order cost propagation wants."""
        if self._stale:
            check_fresh(self, "LoopInfo")
        result = []

        def visit(loop):
            for sub in loop.subloops:
                visit(sub)
            result.append(loop)

        for loop in self.top_level:
            visit(loop)
        return result

    def loop_depth(self, block):
        loop = self.loop_for_block(block)
        return loop.depth if loop is not None else 0
