"""Snapshot-analysis invalidation registry.

:class:`~repro.analysis.cfg.CFG` and
:class:`~repro.analysis.loop_info.LoopInfo` are immutable snapshots of a
function's control flow. Historically nothing stopped a caller from keeping
one across a CFG-mutating pass and silently reading blocks that no longer
exist. Every snapshot now registers itself here on construction; the pass
manager calls :func:`invalidate_module_analyses` between pipeline stages,
after which any query against a stale snapshot raises
:class:`~repro.errors.StaleAnalysisError`.

The registry holds weak references only — snapshots die with their owners
and invalidation is O(live snapshots), which in practice is a handful.
"""

from __future__ import annotations

import weakref

from ..errors import StaleAnalysisError

# Live analysis snapshots. Each member has a `function` attribute (whose
# owning module identifies it for scoped invalidation) and a `_stale` flag.
_LIVE_SNAPSHOTS = weakref.WeakSet()


def register_snapshot(analysis):
    """Track a newly built analysis snapshot for later invalidation."""
    _LIVE_SNAPSHOTS.add(analysis)


def invalidate_module_analyses(module=None, function=None):
    """Mark live CFG/LoopInfo snapshots stale.

    With ``function`` set, only snapshots of that function are invalidated;
    with ``module`` set, snapshots of any function belonging to it; with
    neither, every live snapshot. Returns the number invalidated.
    """
    count = 0
    for analysis in list(_LIVE_SNAPSHOTS):
        if analysis._stale:
            continue
        owner = getattr(analysis, "function", None)
        if function is not None and owner is not function:
            continue
        if module is not None and getattr(owner, "module", None) is not module:
            continue
        analysis._stale = True
        count += 1
    return count


def check_fresh(analysis, kind):
    """Raise :class:`StaleAnalysisError` if ``analysis`` was invalidated."""
    if analysis._stale:
        owner = getattr(analysis, "function", None)
        name = getattr(owner, "name", "<unknown>")
        raise StaleAnalysisError(
            f"stale {kind} snapshot for function '{name}' queried after a "
            f"CFG-mutating pass; rebuild the analysis instead of reusing it"
        )
