"""Scalar evolution (SCEV) analysis.

This is the analysis the paper leans on to split register loop-carried
dependencies into *computable* and *non-computable* (§II-A, §III-A): a header
phi whose per-iteration value can be expressed as a closed-form function of
the iteration count — an *add recurrence* — is an induction variable (IV) or
mutual induction variable (MIV) and is never a parallelization constraint,
because each speculative thread can rematerialize it from its iteration
index.

Expression language (mirroring LLVM's ``SCEV``):

* ``SCEVConstant`` — integer literal.
* ``SCEVUnknown`` — an opaque IR value (loop-invariant or not).
* ``SCEVAdd`` / ``SCEVMul`` — n-ary folded arithmetic.
* ``SCEVAddRec`` — ``{start, +, step}<loop>``; ``step`` may itself be an add
  recurrence of the same loop, giving higher-order (polynomial) recurrences —
  the MIV case.
* ``SCEVCouldNotCompute`` — analysis gave up.

Only integer and pointer values are analyzed (LLVM's SCEV is integer-only
too); floating-point recurrences fall to the reduction detector or the value
predictors, exactly as in the paper.
"""

from __future__ import annotations

from math import comb

from ..ir.instructions import GEP, BinaryOp, Cast, Load, Phi
from ..ir.values import Argument, ConstantInt, GlobalVariable


class SCEV:
    """Base class of all scalar-evolution expressions (immutable)."""

    __slots__ = ()

    def is_invariant_in(self, loop):
        raise NotImplementedError

    def contains_marker(self):
        return False

    @property
    def is_constant(self):
        return isinstance(self, SCEVConstant)

    @property
    def is_addrec(self):
        return isinstance(self, SCEVAddRec)


class SCEVConstant(SCEV):
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = int(value)

    def is_invariant_in(self, loop):
        return True

    def __eq__(self, other):
        return isinstance(other, SCEVConstant) and self.value == other.value

    def __hash__(self):
        return hash(("const", self.value))

    def __repr__(self):
        return str(self.value)


class SCEVUnknown(SCEV):
    """An opaque IR value the analysis cannot see through."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def is_invariant_in(self, loop):
        from ..ir.instructions import Instruction

        if isinstance(self.value, (ConstantInt, Argument, GlobalVariable)):
            return True
        if isinstance(self.value, Instruction):
            return loop.is_invariant(self.value)
        return True

    def __eq__(self, other):
        return isinstance(other, SCEVUnknown) and self.value is other.value

    def __hash__(self):
        return hash(("unknown", id(self.value)))

    def __repr__(self):
        return f"%{self.value.name or '?'}"


class SCEVPhiMarker(SCEV):
    """Internal placeholder for the phi whose recurrence is being solved."""

    __slots__ = ("phi",)

    def __init__(self, phi):
        self.phi = phi

    def is_invariant_in(self, loop):
        return False

    def contains_marker(self):
        return True

    def __eq__(self, other):
        return isinstance(other, SCEVPhiMarker) and self.phi is other.phi

    def __hash__(self):
        return hash(("marker", id(self.phi)))

    def __repr__(self):
        return f"<self:{self.phi.name}>"


class SCEVNary(SCEV):
    __slots__ = ("operands",)

    def __init__(self, operands):
        self.operands = tuple(operands)

    def is_invariant_in(self, loop):
        return all(op.is_invariant_in(loop) for op in self.operands)

    def contains_marker(self):
        return any(op.contains_marker() for op in self.operands)

    def __eq__(self, other):
        return type(self) is type(other) and self.operands == other.operands

    def __hash__(self):
        return hash((type(self).__name__, self.operands))


class SCEVAdd(SCEVNary):
    def __repr__(self):
        return "(" + " + ".join(repr(op) for op in self.operands) + ")"


class SCEVMul(SCEVNary):
    def __repr__(self):
        return "(" + " * ".join(repr(op) for op in self.operands) + ")"


class SCEVAddRec(SCEV):
    """``{start, +, step}<loop>`` — value at iteration *n* is
    ``start + sum_{k<n} step(k)``."""

    __slots__ = ("start", "step", "loop")

    def __init__(self, start, step, loop):
        self.start = start
        self.step = step
        self.loop = loop

    def is_invariant_in(self, loop):
        if loop.contains_loop(self.loop) or self.loop is loop:
            return False
        # An addrec of an inner/unrelated loop varies there; it is invariant
        # in `loop` only if that loop doesn't contain the addrec's loop and
        # its start/step are invariant.
        if self.loop.contains_loop(loop):
            return False
        return self.start.is_invariant_in(loop) and self.step.is_invariant_in(loop)

    def contains_marker(self):
        return self.start.contains_marker() or self.step.contains_marker()

    def is_affine(self):
        return not self.step.is_addrec

    def is_fully_computable(self):
        """True when every leaf is a constant or an expression invariant in
        the recurrence's loop — the paper's "computable" criterion."""
        def check(expr):
            if isinstance(expr, SCEVAddRec):
                return check(expr.start) and check(expr.step)
            if isinstance(expr, (SCEVConstant,)):
                return True
            if isinstance(expr, (SCEVAdd, SCEVMul)):
                return all(check(op) for op in expr.operands)
            if isinstance(expr, SCEVUnknown):
                return expr.is_invariant_in(self.loop)
            return False

        return check(self.start) and check(self.step)

    def evaluate_at(self, iteration):
        """Closed-form value at a 0-based iteration index.

        Only valid when every leaf is a :class:`SCEVConstant`; used by tests
        to cross-check recurrence extraction against interpretation.
        ``{a,+,b,+,c,...}`` evaluates via the binomial formula
        ``sum_i coeff_i * C(n, i)``.
        """
        coefficients = []
        expr = self
        while isinstance(expr, SCEVAddRec):
            if not isinstance(expr.start, SCEVConstant):
                raise ValueError("evaluate_at requires constant coefficients")
            coefficients.append(expr.start.value)
            expr = expr.step
        if not isinstance(expr, SCEVConstant):
            raise ValueError("evaluate_at requires constant coefficients")
        coefficients.append(expr.value)
        return sum(
            coeff * comb(iteration, order)
            for order, coeff in enumerate(coefficients)
        )

    def __eq__(self, other):
        return (
            isinstance(other, SCEVAddRec)
            and self.start == other.start
            and self.step == other.step
            and self.loop is other.loop
        )

    def __hash__(self):
        return hash(("addrec", self.start, self.step, id(self.loop)))

    def __repr__(self):
        return f"{{{self.start!r},+,{self.step!r}}}<{self.loop.loop_id}>"


class SCEVCouldNotCompute(SCEV):
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def is_invariant_in(self, loop):
        return False

    def __repr__(self):
        return "<could-not-compute>"


COULD_NOT_COMPUTE = SCEVCouldNotCompute()
ZERO = SCEVConstant(0)


# -- folding constructors -----------------------------------------------------


def scev_add(*operands):
    """N-ary folded addition."""
    flat = []
    for op in operands:
        if isinstance(op, SCEVCouldNotCompute):
            return COULD_NOT_COMPUTE
        if isinstance(op, SCEVAdd):
            flat.extend(op.operands)
        else:
            flat.append(op)

    constant = 0
    addrecs = {}
    rest = []
    for op in flat:
        if isinstance(op, SCEVConstant):
            constant += op.value
        elif isinstance(op, SCEVAddRec):
            key = id(op.loop)
            if key in addrecs:
                prior = addrecs[key]
                addrecs[key] = SCEVAddRec(
                    scev_add(prior.start, op.start),
                    scev_add(prior.step, op.step),
                    op.loop,
                )
            else:
                addrecs[key] = op
        else:
            rest.append(op)

    # Fold invariant terms into addrec starts (one addrec at a time).
    merged_addrecs = list(addrecs.values())
    if merged_addrecs:
        primary = merged_addrecs[0]
        absorbed = []
        for term in rest:
            if term.is_invariant_in(primary.loop) and not term.contains_marker():
                absorbed.append(term)
        for term in absorbed:
            rest.remove(term)
        if absorbed or constant:
            new_start = scev_add(primary.start, SCEVConstant(constant), *absorbed)
            constant = 0
            merged_addrecs[0] = SCEVAddRec(new_start, primary.step, primary.loop)

    terms = merged_addrecs + rest
    if constant:
        terms.append(SCEVConstant(constant))
    if not terms:
        return ZERO
    if len(terms) == 1:
        return terms[0]
    return SCEVAdd(terms)


def scev_negate(operand):
    return scev_mul(SCEVConstant(-1), operand)


def scev_sub(lhs, rhs):
    return scev_add(lhs, scev_negate(rhs))


def scev_mul(*operands):
    """N-ary folded multiplication (constants distribute over adds/addrecs)."""
    flat = []
    for op in operands:
        if isinstance(op, SCEVCouldNotCompute):
            return COULD_NOT_COMPUTE
        if isinstance(op, SCEVMul):
            flat.extend(op.operands)
        else:
            flat.append(op)

    constant = 1
    rest = []
    for op in flat:
        if isinstance(op, SCEVConstant):
            constant *= op.value
        else:
            rest.append(op)

    if constant == 0:
        return ZERO
    if not rest:
        return SCEVConstant(constant)
    if constant != 1 and len(rest) == 1:
        single = rest[0]
        if isinstance(single, SCEVAdd):
            return scev_add(
                *[scev_mul(SCEVConstant(constant), op) for op in single.operands]
            )
        if isinstance(single, SCEVAddRec):
            return SCEVAddRec(
                scev_mul(SCEVConstant(constant), single.start),
                scev_mul(SCEVConstant(constant), single.step),
                single.loop,
            )
    # A product containing the phi marker is non-linear in the phi — poison
    # it so the recurrence solver rejects geometric updates like `i = i * 2`.
    if any(op.contains_marker() for op in rest):
        return COULD_NOT_COMPUTE
    terms = ([SCEVConstant(constant)] if constant != 1 else []) + rest
    if len(terms) == 1:
        return terms[0]
    return SCEVMul(terms)


# -- module-constant globals ---------------------------------------------------


def constant_scalar_globals(module):
    """``{GlobalVariable: int}`` for every scalar integer global whose value
    is provably its initializer for the whole execution: every use in the
    module is the pointer operand of a ``load``. No store names it, and its
    address never escapes (never passed to a call, GEP'd, or stored as a
    value), so no aliasing route can write it either. Loads of such globals
    fold to constants — the fold that turns ``A[i*N + j]`` subscripts affine
    when ``N`` is a read-only dimension global.
    """
    result = {}
    for variable in module.globals.values():
        allocated = variable.allocated_type
        if allocated.is_array or not allocated.is_integer:
            continue
        if not variable.uses:
            continue
        if not all(isinstance(user, Load) for user, _ in variable.uses):
            continue
        initializer = variable.initializer
        if initializer is None:
            initializer = 0
        if not isinstance(initializer, int):
            continue
        result[variable] = allocated.wrap(initializer)
    return result


# -- the analysis ---------------------------------------------------------------


class ScalarEvolution:
    """Per-function SCEV analysis.

    Usage::

        scev = ScalarEvolution(function, loop_info)
        expr = scev.get(value)
        scev.is_computable_phi(phi)   # the paper's IV/MIV test
    """

    def __init__(self, function, loop_info):
        self.function = function
        self.loop_info = loop_info
        self.cfg = loop_info.cfg
        self._cache = {}
        self._pending = set()
        module = getattr(function, "module", None)
        self._constant_globals = (
            constant_scalar_globals(module) if module is not None else {})

    # -- public API -------------------------------------------------------------

    def get(self, value):
        """SCEV expression for an IR value (cached)."""
        cached = self._cache.get(id(value))
        if cached is not None:
            return cached
        expr = self._compute(value)
        self._cache[id(value)] = expr
        return expr

    def is_computable_phi(self, phi):
        """Is this header phi a computable IV/MIV per the paper's criterion?"""
        expr = self.get(phi)
        return isinstance(expr, SCEVAddRec) and expr.is_fully_computable()

    def trip_count(self, loop):
        """Constant trip count if the loop has the canonical shape
        ``condbr (icmp slt/sle {a,+,b}, N)`` with constant a, b > 0, N;
        otherwise ``None``. A best-effort helper used by indvars and tests."""
        from ..ir.instructions import CondBr, ICmp

        latch = loop.single_latch()
        exiting = None
        for block in (latch, loop.header):
            if block is None:
                continue
            terminator = block.terminator
            if isinstance(terminator, CondBr) and any(
                succ not in loop.blocks for succ in terminator.successors()
            ):
                exiting = terminator
                break
        if exiting is None:
            return None
        condition = exiting.condition
        if not isinstance(condition, ICmp):
            return None
        lhs, rhs = self.get(condition.lhs), self.get(condition.rhs)
        predicate = condition.predicate
        # Normalize so the addrec is on the left.
        swap = {"slt": "sgt", "sle": "sge", "sgt": "slt", "sge": "sle",
                "eq": "eq", "ne": "ne"}
        if not (isinstance(lhs, SCEVAddRec) and lhs.loop is loop):
            lhs, rhs = rhs, lhs
            predicate = swap[predicate]
        if not (isinstance(lhs, SCEVAddRec) and lhs.loop is loop):
            return None
        if not (isinstance(lhs.start, SCEVConstant) and isinstance(lhs.step, SCEVConstant)):
            return None
        if not isinstance(rhs, SCEVConstant):
            return None
        start, step, bound = lhs.start.value, lhs.step.value, rhs.value
        if step <= 0:
            return None
        loop_continues_if_true = exiting.then_block in loop.blocks
        if predicate == "slt" and loop_continues_if_true:
            remaining = bound - start
        elif predicate == "sle" and loop_continues_if_true:
            remaining = bound - start + 1
        elif predicate in ("sge", "sgt") and not loop_continues_if_true:
            remaining = (bound - start + (0 if predicate == "sge" else 1))
        else:
            return None
        if remaining <= 0:
            return None
        return (remaining + step - 1) // step

    # -- computation ------------------------------------------------------------

    def _compute(self, value):
        if isinstance(value, ConstantInt):
            return SCEVConstant(value.value)
        if isinstance(value, Phi):
            return self._compute_phi(value)
        if isinstance(value, BinaryOp):
            return self._compute_binop(value)
        if isinstance(value, Cast):
            if value.opcode in ("zext", "trunc"):
                # Widths don't affect the limit-study classification; look
                # through the cast like LLVM's sext/zext addrec extension.
                return self.get(value.value)
            return SCEVUnknown(value)
        if isinstance(value, GEP):
            return self._compute_gep(value)
        if isinstance(value, Load):
            folded = self._constant_globals.get(value.pointer)
            if folded is not None:
                return SCEVConstant(folded)
        return SCEVUnknown(value)

    def _compute_phi(self, phi):
        block = phi.parent
        loop = self.loop_info.loop_for_block(block)
        if loop is None or loop.header is not block:
            return SCEVUnknown(phi)
        if len(phi.operands) != 2:
            return SCEVUnknown(phi)
        if id(phi) in self._pending:
            # Mutual recursion through a *different* pending phi: give up on
            # this path (the marker path is handled below).
            return COULD_NOT_COMPUTE

        latch = loop.single_latch()
        if latch is None:
            return SCEVUnknown(phi)
        init_value = latch_value = None
        for incoming_value, incoming_block in phi.incoming():
            if incoming_block in loop.blocks:
                latch_value = incoming_value
            else:
                init_value = incoming_value
        if init_value is None or latch_value is None:
            return SCEVUnknown(phi)

        marker = SCEVPhiMarker(phi)
        self._pending.add(id(phi))
        saved_cache = self._cache
        # Recurrence solving uses a scratch cache poisoned with the marker, so
        # cached entries never leak marker expressions.
        self._cache = {id(phi): marker}
        try:
            symbolic = self.get(latch_value)
        finally:
            self._cache = saved_cache
            self._pending.discard(id(phi))

        step = self._extract_step(symbolic, marker)
        if step is None:
            return SCEVUnknown(phi)
        if not step.is_invariant_in(loop) and not (
            isinstance(step, SCEVAddRec) and step.loop is loop
        ):
            return SCEVUnknown(phi)
        start = self.get(init_value)
        if isinstance(start, SCEVCouldNotCompute):
            start = SCEVUnknown(init_value)
        return SCEVAddRec(start, step, loop)

    @staticmethod
    def _extract_step(symbolic, marker):
        """Given ``scev(latch_value)`` with the phi replaced by ``marker``,
        return the step expression if the form is ``marker + step``."""
        if symbolic == marker:
            return ZERO
        if isinstance(symbolic, SCEVAdd):
            marker_terms = [op for op in symbolic.operands if op == marker]
            other_terms = [op for op in symbolic.operands if op != marker]
            if len(marker_terms) == 1 and not any(
                op.contains_marker() for op in other_terms
            ):
                return scev_add(*other_terms)
        return None

    def _compute_binop(self, instruction):
        opcode = instruction.opcode
        lhs = self.get(instruction.lhs)
        rhs = self.get(instruction.rhs)
        if opcode == "add":
            return scev_add(lhs, rhs)
        if opcode == "sub":
            return scev_sub(lhs, rhs)
        if opcode == "mul":
            return scev_mul(lhs, rhs)
        if opcode == "shl" and isinstance(rhs, SCEVConstant):
            return scev_mul(lhs, SCEVConstant(1 << rhs.value))
        if lhs.contains_marker() or rhs.contains_marker():
            return COULD_NOT_COMPUTE
        return SCEVUnknown(instruction)

    def _compute_gep(self, instruction):
        """Pointer arithmetic folds to base + scaled indices in the IR's
        slot-addressed memory model, so pointer IVs become addrecs too."""
        expr = self.get(instruction.pointer)
        element = instruction.pointer.type.pointee
        for index in instruction.indices:
            if element.is_array:
                scale = element.element.size_in_slots()
                element = element.element
            else:
                scale = element.size_in_slots()
            index_expr = self.get(index)
            expr = scev_add(expr, scev_mul(SCEVConstant(scale), index_expr))
            if isinstance(expr, SCEVCouldNotCompute):
                return SCEVUnknown(instruction)
        return expr
