"""Static loop-carried memory dependence analysis.

The dynamic profiler observes memory LCDs; this module *proves* them (or
their absence) at compile time, giving the repo a second, independent source
of truth. For every loop it emits a conservative verdict:

* ``STATIC_DOALL`` — no loop-carried memory dependence can exist: every pair
  of accesses that could touch the same storage is proven independent across
  iterations by a dependence test.
* ``STATIC_LCD(dist=k)`` — a loop-carried dependence at constant iteration
  distance ``k`` was derived from the access functions (classic may-
  dependence semantics: the dependence is assumed unless disproven, and
  here its distance is known exactly).
* ``UNKNOWN`` — independence could not be proven (symbolic offsets, opaque
  pointers, unanalyzable callees, ...).

The machinery mirrors the textbook pipeline on top of :mod:`.scev`:

1. every load/store pointer is linearized into ``base + const + Σ cᵢ·symᵢ +
   stride·i ± span`` with respect to the loop (``_Linear``); ``span`` bounds
   the footprint contributed by inner-loop induction variables (the MIV
   case);
2. base objects are resolved through GEP chains; distinct concrete objects
   (different globals, different allocas) never alias in the slot-addressed
   memory model, and an alloca belonging to the loop body is iteration-
   private — the static mirror of the runtime's cactus-stack privatization
   rule;
3. same-base pairs go through ZIV / strong-SIV / GCD / Banerjee-style
   subscript tests with the loop's trip count (when constant) bounding the
   dependence distance;
4. calls contribute their callee's *memory summary* (reads/writes of global
   objects and pointer arguments, computed bottom-up over call-graph SCCs)
   as whole-object footprints.

Soundness contract (checked by ``repro crosscheck`` and the differential
backend tests): a loop classified ``STATIC_DOALL`` must never record a
cross-iteration RAW conflict in the dynamic profile, under any backend.

The register half of Table I lives here too: :func:`classify_header_phis`
re-derives the computable / reduction / non-computable split for a loop's
header phis purely from ``scev.py`` + ``reduction.py`` so that
``core.static_info`` and the lint/crosscheck layer share one classifier.
"""

from __future__ import annotations

from math import gcd, inf

from ..ir.instructions import (
    Alloca,
    BinaryOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    GEP,
    ICmp,
    Load,
    Phi,
    Select,
    Store,
)
from ..ir.values import Argument, Constant, GlobalVariable
from .callgraph import CallGraph
from .loop_info import LoopInfo
from .purity import _trace_to_base
from .reduction import detect_reduction
from .scev import (
    COULD_NOT_COMPUTE,
    ZERO,
    ScalarEvolution,
    SCEVAdd,
    SCEVAddRec,
    SCEVConstant,
    SCEVMul,
    SCEVUnknown,
)

# Verdict strings (stable: surfaced by the CLI and joined by crosscheck).
VERDICT_DOALL = "STATIC_DOALL"
VERDICT_LCD = "STATIC_LCD"
VERDICT_UNKNOWN = "UNKNOWN"

# Register classification strings (match core.static_info's PHI_*).
REG_COMPUTABLE = "computable"
REG_REDUCTION = "reduction"
REG_NONCOMPUTABLE = "noncomputable"

# Memory-summary sentinels (alongside concrete GlobalVariable objects).
ARGS_OBJECT = "<args>"
UNKNOWN_OBJECT = "<unknown>"

# SCEV is width-agnostic but the interpreter wraps i32 arithmetic; any
# derived constant at or beyond this magnitude may have wrapped at run time,
# so the subscript tests refuse to conclude anything from it.
_WRAP_LIMIT = 1 << 31

# Pair-testing is quadratic in the number of accesses; loops beyond this are
# classified UNKNOWN rather than risking pathological analysis times.
_MAX_ACCESSES = 512

# The strong-SIV distance filter enumerates every candidate distance inside
# the inner-contribution window; wider windows fall back to "several
# possible distances" instead of a pathological enumeration.
_MAX_DISTANCE_CANDIDATES = 128


def classify_header_phis(loop, scev):
    """Classify each header phi of ``loop`` statically.

    Returns ``[(position, phi, reg_class, reduction_kind)]`` in header
    order, where ``reg_class`` is one of :data:`REG_COMPUTABLE`,
    :data:`REG_REDUCTION`, :data:`REG_NONCOMPUTABLE` and ``reduction_kind``
    is the recurrence kind string for reductions (else ``None``). This is
    the single implementation behind Table I's register-LCD split.
    """
    result = []
    for position, phi in enumerate(loop.header.phis()):
        if scev.is_computable_phi(phi):
            result.append((position, phi, REG_COMPUTABLE, None))
            continue
        descriptor = detect_reduction(phi, loop)
        if descriptor is not None:
            result.append((position, phi, REG_REDUCTION, descriptor.kind))
        else:
            result.append((position, phi, REG_NONCOMPUTABLE, None))
    return result


# -- function memory summaries ---------------------------------------------------


class SummaryAccess:
    """One affine memory access a function (transitively) performs,
    expressed in the function's own frame:
    ``base + offset + Σ coeff·formal + [span_lo, span_hi]`` where ``base``
    is a :class:`GlobalVariable` or the index of a pointer formal,
    ``coeffs`` maps scalar-formal indices to integer coefficients, and the
    span window over-approximates traversal by the callee's internal
    (constant-trip) loops."""

    __slots__ = ("is_write", "base", "offset", "coeffs", "span_lo",
                 "span_hi")

    def __init__(self, is_write, base, offset=0, coeffs=None, span_lo=0,
                 span_hi=0):
        self.is_write = is_write
        self.base = base
        self.offset = offset
        self.coeffs = coeffs if coeffs is not None else {}
        self.span_lo = span_lo
        self.span_hi = span_hi

    def object_key(self):
        """The coarse summary object this access falls under."""
        return self.base if isinstance(self.base, GlobalVariable) \
            else ARGS_OBJECT

    def __repr__(self):
        base = self.base.name if isinstance(self.base, GlobalVariable) \
            else f"arg{self.base}"
        parts = [str(self.offset)] + [
            f"{coeff}*arg{index}"
            for index, coeff in sorted(self.coeffs.items())]
        span = f"+[{self.span_lo},{self.span_hi}]" \
            if (self.span_lo, self.span_hi) != (0, 0) else ""
        kind = "write" if self.is_write else "read"
        return f"<{kind} @{base}[{'+'.join(parts)}]{span}>"


class FunctionMemorySummary:
    """What a function (transitively) reads and writes, as a set of objects:
    concrete :class:`GlobalVariable` identities, :data:`ARGS_OBJECT` (memory
    reachable through pointer arguments) and :data:`UNKNOWN_OBJECT`
    (anything — analysis gave up). A function's own allocas are excluded:
    frame storage is private to the call and, when the call happens inside a
    loop iteration, iteration-private under the runtime's cactus-stack rule.

    ``accesses`` refines the object sets to field granularity: one
    :class:`SummaryAccess` per affine load/store the function transitively
    performs. ``inexact`` lists the ``(object, is_write)`` pairs whose
    traffic the access list does *not* fully cover (a non-affine subscript,
    recursion, or a failed call-site translation) — consumers must fall
    back to whole-object granularity for those.
    """

    __slots__ = ("reads", "writes", "accesses", "inexact")

    def __init__(self):
        self.reads = set()
        self.writes = set()
        self.accesses = []
        self.inexact = set()

    @property
    def is_opaque(self):
        return UNKNOWN_OBJECT in self.reads or UNKNOWN_OBJECT in self.writes

    @property
    def touches_memory(self):
        return bool(self.reads or self.writes)

    def exact_for(self, obj, is_write):
        """Is every access to ``obj`` (at this read/write polarity) covered
        field-sensitively by ``accesses``?"""
        return (obj, is_write) not in self.inexact

    def __repr__(self):
        def show(objects):
            names = sorted(
                obj.name if isinstance(obj, GlobalVariable) else str(obj)
                for obj in objects
            )
            return "{" + ", ".join(names) + "}"

        return f"<MemSummary reads={show(self.reads)} writes={show(self.writes)}>"


def _summary_object(pointer):
    """Map a pointer to its summary object (``None`` = frame-private)."""
    base = _trace_to_base(pointer)
    if isinstance(base, GlobalVariable):
        return base
    if isinstance(base, Alloca):
        return None  # callee frame storage: invisible to callers
    if isinstance(base, Argument):
        return ARGS_OBJECT
    return UNKNOWN_OBJECT


def module_memory_summaries(module, callgraph=None):
    """Bottom-up :class:`FunctionMemorySummary` for every module function.

    Recursion (multi-function SCCs and self-calls) is resolved by fixpoint
    iteration over the component instead of an UNKNOWN punt: the object
    lattice is finite and absorption only ever adds, so the sets converge
    — a recursive pure-scalar helper now gets an *empty* summary and stops
    poisoning its enclosing loops. Field-sensitive access lists are built
    only across acyclic call edges; traffic routed through a recursive
    edge keeps object granularity (``inexact``), never opacity.
    """
    if callgraph is None:
        callgraph = CallGraph(module)
    summaries = {}
    frames = {}  # per-function lazily built ScalarEvolution
    for component in callgraph.sccs_bottom_up():
        recursive = (len(component) > 1
                     or callgraph.is_self_recursive(component[0]))
        scc = set(component) if recursive else frozenset()
        for function in component:
            summaries[function] = FunctionMemorySummary()
        while True:
            changed = False
            for function in component:
                fresh = _summarize_function(function, summaries, scc, frames)
                current = summaries[function]
                if (fresh.reads != current.reads
                        or fresh.writes != current.writes
                        or fresh.inexact != current.inexact):
                    changed = True
                summaries[function] = fresh
            if not changed:
                break
    return summaries


def _frame_scev(function, frames):
    key = id(function)
    if key not in frames:
        loop_info = LoopInfo(function)
        frames[key] = ScalarEvolution(function, loop_info)
    return frames[key]


def _summarize_function(function, summaries, scc, frames):
    """One bottom-up summary pass over ``function`` against the current
    state of ``summaries`` (monotone — re-run to fixpoint inside SCCs)."""
    summary = FunctionMemorySummary()
    if function.is_intrinsic:
        info = function.intrinsic
        if info.reads_memory:
            summary.reads.add(ARGS_OBJECT)
            summary.inexact.add((ARGS_OBJECT, False))
        if info.writes_memory:
            summary.writes.add(ARGS_OBJECT)
            summary.inexact.add((ARGS_OBJECT, True))
        # side_effects / global_state intrinsics (rand, print...)
        # have no *modeled-memory* traffic: the interpreter never
        # issues mem_read/mem_write for them, so they are invisible
        # to the dynamic conflict tracker and safely omitted here.
        return summary
    if function.is_declaration:
        summary.reads.add(UNKNOWN_OBJECT)
        summary.writes.add(UNKNOWN_OBJECT)
        return summary
    scev = _frame_scev(function, frames)
    for instruction in function.instructions():
        if isinstance(instruction, Load):
            _absorb_direct(summary, function, scev, instruction.pointer,
                           False, instruction.parent)
        elif isinstance(instruction, Store):
            if instruction.value.type.is_pointer:
                # A stored pointer value creates aliasing routes the
                # base-object model cannot track.
                summary.writes.add(UNKNOWN_OBJECT)
            _absorb_direct(summary, function, scev, instruction.pointer,
                           True, instruction.parent)
        elif isinstance(instruction, Call):
            _absorb_call_summary(
                summary, function, scev, instruction,
                summaries[instruction.callee],
                coarse_only=instruction.callee in scc)
    return summary


def _absorb_direct(summary, function, scev, pointer, is_write, block):
    """Record one of the function's own loads/stores: always at object
    granularity, field-sensitively when the subscript is affine in the
    function's frame."""
    obj = _summary_object(pointer)
    if obj is None:
        return  # frame-private storage: invisible to callers
    target = summary.writes if is_write else summary.reads
    target.add(obj)
    if obj == UNKNOWN_OBJECT:
        return
    try:
        frame = _frame_linearize(scev.get(pointer), function, scev,
                                 block=block)
        if frame.base is None:
            raise _NonAffine("the access has no recognizable base")
        summary.accesses.append(SummaryAccess(
            is_write, frame.base, frame.const, frame.coeffs,
            frame.span_lo, frame.span_hi))
    except _NonAffine:
        summary.inexact.add((obj, is_write))


def _absorb_call_summary(summary, function, scev, call, callee_summary,
                         coarse_only):
    """Fold a callee's summary into the caller across one call site."""
    _absorb_call(summary.reads, callee_summary.reads, call)
    _absorb_call(summary.writes, callee_summary.writes, call)
    for is_write, objects in ((False, callee_summary.reads),
                              (True, callee_summary.writes)):
        for obj in objects:
            if obj == UNKNOWN_OBJECT:
                continue  # opacity already recorded by the coarse absorb
            if coarse_only or not callee_summary.exact_for(obj, is_write):
                _mark_inexact(summary, obj, is_write, call)
    if coarse_only:
        return
    for access in callee_summary.accesses:
        if not callee_summary.exact_for(access.object_key(),
                                        access.is_write):
            continue  # that object already degraded to coarse
        try:
            translated = _translate_summary_access(
                access, function, scev, call)
        except _NonAffine:
            translated = None
        if translated is None:
            _mark_inexact(summary, access.object_key(), access.is_write,
                          call)
            continue
        summary.accesses.append(translated)


def _mark_inexact(summary, obj, is_write, call):
    """Degrade one callee object to whole-object granularity in the
    caller, translating ``ARGS_OBJECT`` through the call's pointer args."""
    if isinstance(obj, GlobalVariable):
        summary.inexact.add((obj, is_write))
        return
    for arg in call.args:
        if not arg.type.is_pointer:
            continue
        translated = _summary_object(arg)
        if translated is None or translated == UNKNOWN_OBJECT:
            continue
        summary.inexact.add(
            (translated if isinstance(translated, GlobalVariable)
             else ARGS_OBJECT, is_write))


def _translate_summary_access(access, function, scev, call):
    """Re-express a callee :class:`SummaryAccess` in the caller's frame.

    The callee's base pointer formal becomes the actual pointer argument
    (itself linearized in the caller), scalar-formal coefficients
    substitute the actual scalar arguments, and any caller-loop variation
    of an actual folds into the span window (the call site may sit inside
    caller loops). Returns ``None`` when the access resolves into the
    caller's frame-private storage."""
    out = _Frame()
    if isinstance(access.base, GlobalVariable):
        out.base = access.base
    else:
        actual = call.args[access.base]
        _frame_add(out, scev.get(actual), function, scev, 1,
                   block=call.parent)
        if out.base is None:
            # The actual pointer is the caller's own alloca (frame-private
            # to *its* callers but still real storage) — trace the IR value
            # instead of failing: allocas are dropped from summaries.
            base = _trace_to_base(actual)
            if isinstance(base, Alloca):
                return None
            raise _NonAffine("an actual pointer argument is not affine")
    out.const += access.offset
    out.span_lo += access.span_lo
    out.span_hi += access.span_hi
    for index, coeff in access.coeffs.items():
        part = _Frame()
        _frame_add(part, scev.get(call.args[index]), function, scev, coeff,
                   block=call.parent)
        if part.base is not None:
            raise _NonAffine("a pointer flows into a scalar position")
        out.const += part.const
        out.span_lo += part.span_lo
        out.span_hi += part.span_hi
        for formal, c in part.coeffs.items():
            merged = out.coeffs.get(formal, 0) + c
            if merged:
                out.coeffs[formal] = merged
            else:
                out.coeffs.pop(formal, None)
    _frame_check(out)
    return SummaryAccess(access.is_write, out.base, out.const, out.coeffs,
                         out.span_lo, out.span_hi)


def _absorb_call(target, source, call):
    """Translate a callee summary across a call site: ``ARGS_OBJECT``
    entries become the objects behind the call's pointer arguments."""
    for obj in source:
        if obj == ARGS_OBJECT:
            for arg in call.args:
                if arg.type.is_pointer:
                    translated = _summary_object(arg)
                    if translated is not None:
                        target.add(translated)
        else:
            target.add(obj)


class _Frame:
    """Callee-frame linear form: ``base + const + Σ coeff·formal +
    [span_lo, span_hi]`` with coefficients keyed by formal index."""

    __slots__ = ("const", "coeffs", "base", "span_lo", "span_hi")

    def __init__(self):
        self.const = 0
        self.coeffs = {}
        self.base = None
        self.span_lo = 0
        self.span_hi = 0


def _frame_linearize(expr, function, scev, block=None):
    out = _Frame()
    _frame_add(out, expr, function, scev, 1, block=block)
    _frame_check(out)
    return out


def _frame_check(out):
    if (abs(out.const) >= _WRAP_LIMIT
            or abs(out.span_lo) >= _WRAP_LIMIT
            or abs(out.span_hi) >= _WRAP_LIMIT
            or any(abs(c) >= _WRAP_LIMIT for c in out.coeffs.values())):
        raise _NonAffine("a callee offset may wrap i32")


def _frame_add(out, expr, function, scev, scale, block=None):
    """Accumulate ``scale · expr`` into ``out``, resolving symbols against
    the function's own formals. Any addrec — the function's loops at every
    depth — widens the span window by its full (constant) extent; when the
    access ``block`` is known to sit in the loop body the addrec index is
    bounded by ``trip - 1`` (the same rule the intra-function linearizer
    uses), which keeps per-iteration callee rows provably disjoint."""
    if scale == 0:
        return
    if isinstance(expr, SCEVConstant):
        out.const += scale * expr.value
        return
    if isinstance(expr, SCEVUnknown):
        value = expr.value
        if isinstance(value, GlobalVariable):
            if scale != 1 or out.base is not None:
                raise _NonAffine("a scaled or second base pointer")
            out.base = value
            return
        if isinstance(value, Argument) and value.function is function:
            if value.type.is_pointer:
                if scale != 1 or out.base is not None:
                    raise _NonAffine("a scaled or second base pointer")
                out.base = value.index
                return
            merged = out.coeffs.get(value.index, 0) + scale
            if merged:
                out.coeffs[value.index] = merged
            else:
                out.coeffs.pop(value.index, None)
            return
        raise _NonAffine("an opaque value appears in a callee subscript")
    if isinstance(expr, SCEVAdd):
        for op in expr.operands:
            _frame_add(out, op, function, scev, scale, block=block)
        return
    if isinstance(expr, SCEVMul):
        constant = 1
        other = None
        for op in expr.operands:
            if isinstance(op, SCEVConstant):
                constant *= op.value
            elif other is None:
                other = op
            else:
                raise _NonAffine("a product of loop-varying values")
        if other is None:
            out.const += scale * constant
        else:
            _frame_add(out, other, function, scev, scale * constant,
                       block=block)
        return
    if isinstance(expr, SCEVAddRec):
        if not isinstance(expr.step, SCEVConstant):
            raise _NonAffine("a callee loop has a symbolic stride")
        trip = scev.trip_count(expr.loop)
        if trip is None:
            raise _NonAffine("a callee loop has no constant trip count")
        max_index = trip
        if (block is not None and block in expr.loop.blocks
                and block is not expr.loop.header):
            max_index = trip - 1
        extent = scale * expr.step.value * max_index
        out.span_lo += min(0, extent)
        out.span_hi += max(0, extent)
        _frame_add(out, expr.start, function, scev, scale, block=block)
        return
    raise _NonAffine("a callee address has no computable scalar evolution")


# -- access model ----------------------------------------------------------------


class _Access:
    """One memory access the loop may perform each iteration."""

    __slots__ = ("is_write", "base", "pointer", "whole_object", "label",
                 "block", "footprint")

    def __init__(self, is_write, base, pointer, whole_object, label,
                 block=None, footprint=None):
        self.is_write = is_write
        self.base = base          # GlobalVariable | Alloca | Argument | None
        self.pointer = pointer    # IR pointer value (None for whole-object)
        self.whole_object = whole_object
        self.label = label        # deterministic human-readable description
        self.block = block        # where the access executes (span bounds)
        #: precomputed :class:`_Linear` for pointer-less accesses translated
        #: from a callee's access-function summary.
        self.footprint = footprint


class _Dim:
    """One inner-loop dimension of a footprint: ``stride · index`` with the
    index ranging over ``[0, max_index]`` within a single iteration of the
    analyzed loop."""

    __slots__ = ("loop", "stride", "max_index")

    def __init__(self, loop, stride, max_index):
        self.loop = loop
        self.stride = stride
        self.max_index = max_index

    def bounds(self):
        extent = self.stride * self.max_index
        return (min(0, extent), max(0, extent))


class _NonAffine(Exception):
    """Linearization failure, carrying the human-readable blocker."""

    def __init__(self, reason):
        super().__init__(reason)
        self.reason = reason


class _Linear:
    """``const + Σ coeff·sym + stride·i + Σ dims + [span_lo, span_hi]``
    w.r.t. a loop: a constant, cancellable symbolic terms, a stride per
    iteration of the analyzed loop, one :class:`_Dim` per inner loop (the
    multi-dimensional subscript), and a residual span from callee-internal
    loops of summarized calls."""

    __slots__ = ("const", "terms", "stride", "dims", "span_lo", "span_hi")

    def __init__(self, const=0, terms=None, stride=0, dims=None, span_lo=0,
                 span_hi=0):
        self.const = const
        self.terms = terms if terms is not None else {}
        self.stride = stride
        self.dims = dims if dims is not None else {}
        self.span_lo = span_lo
        self.span_hi = span_hi

    @property
    def exact(self):
        """Single-cell per iteration: no inner-dimension or span extent."""
        return not self.dims and self.span_lo == 0 and self.span_hi == 0


class LoopDependence:
    """The static memory-dependence verdict for one loop.

    ``vectors`` carries one direction-vector line per surviving dependence
    (``first -> second: (levels)``, analyzed level first, inner levels
    after), and ``distances`` the sorted set of every exact dependence
    distance derived at this level — ``distance`` stays the minimum, the
    quantity the limit study and the TLS tier key on.
    """

    __slots__ = ("loop_id", "verdict", "distance", "reasons", "tested_pairs",
                 "access_count", "vectors", "distances")

    def __init__(self, loop_id, verdict, distance=None, reasons=(),
                 tested_pairs=0, access_count=0, vectors=(), distances=()):
        self.loop_id = loop_id
        self.verdict = verdict
        self.distance = distance
        self.reasons = tuple(reasons)
        self.tested_pairs = tested_pairs
        self.access_count = access_count
        self.vectors = tuple(vectors)
        self.distances = tuple(distances)

    def describe(self):
        if self.verdict == VERDICT_LCD and self.distance is not None:
            return f"{VERDICT_LCD}(dist={self.distance})"
        return self.verdict

    def to_dict(self):
        return {
            "loop_id": self.loop_id,
            "verdict": self.verdict,
            "distance": self.distance,
            "reasons": list(self.reasons),
            "tested_pairs": self.tested_pairs,
            "access_count": self.access_count,
            "vectors": list(self.vectors),
            "distances": list(self.distances),
        }

    def __repr__(self):
        return f"<LoopDependence {self.loop_id} {self.describe()}>"


class DependenceAnalysis:
    """Per-function loop-carried memory dependence analysis."""

    def __init__(self, function, loop_info=None, scev=None, summaries=None):
        self.function = function
        self.loop_info = loop_info if loop_info is not None else LoopInfo(function)
        self.scev = scev if scev is not None else ScalarEvolution(
            function, self.loop_info)
        self.summaries = summaries or {}
        self._footprints = {}  # (id(pointer), id(loop), id(block)) -> _Linear | None
        self._footprint_whys = {}  # same key -> non-affine reason string
        self._trips = {}       # id(loop) -> int | None

    # -- public API -------------------------------------------------------------

    def loop_verdict(self, loop):
        return self._verdict(loop, front=0, back=0)

    def loop_verdict_if_peeled(self, loop, front=0, back=0):
        """Verdict of the residual loop after peeling ``front`` leading and
        ``back`` trailing iterations — the static trial the peeling pass
        runs before committing to a transform. Requires a constant trip
        count large enough that the residual loop still runs."""
        if front < 0 or back < 0 or front + back == 0:
            raise ValueError("peel trial needs front/back >= 0, not both 0")
        trip = self._trip(loop)
        if trip is None:
            return LoopDependence(
                loop.loop_id, VERDICT_UNKNOWN,
                reasons=("peel trial needs a constant trip count",))
        if trip - front - back < 1:
            return LoopDependence(
                loop.loop_id, VERDICT_UNKNOWN,
                reasons=(f"peeling {front}+{back} of {trip} iterations "
                         f"leaves no residual loop",))
        return self._verdict(loop, front=front, back=back)

    def _verdict(self, loop, front, back):
        if loop.latches and loop.single_latch() is None:
            # Multiple back edges: the loop has no unique iteration point,
            # so access functions (and the instrumentation) cannot key on
            # "the iteration". An explicit bailout — not absence of a loop.
            return LoopDependence(
                loop.loop_id, VERDICT_UNKNOWN,
                reasons=(f"loop has {len(loop.latches)} latches "
                         f"(multi-latch bailout)",))
        accesses, opaque_reasons = self._collect(loop)
        if len(accesses) > _MAX_ACCESSES:
            return LoopDependence(
                loop.loop_id, VERDICT_UNKNOWN,
                reasons=(f"loop body has {len(accesses)} memory accesses "
                         f"(analysis cap {_MAX_ACCESSES})",),
                access_count=len(accesses))
        may_reasons = list(opaque_reasons)
        lcd_distances = []
        vectors = []
        tested = 0
        writes = [a for a in accesses if a.is_write]
        reads = [a for a in accesses if not a.is_write]
        trip = self._trip(loop)
        if trip is not None:
            trip -= front + back
        for index, write in enumerate(writes):
            # write-vs-write (WAW can carry a RAW chain through memory) and
            # write-vs-read pairs; a write is also paired with itself (the
            # same instruction on two different iterations).
            for other in writes[index:] + reads:
                tested += 1
                result = self._test_pair(loop, write, other, trip,
                                         front=front)
                kind = result[0]
                if kind == "lcd":
                    lcd_distances.append(result[1])
                elif kind == "may":
                    may_reasons.append(result[1])
                if len(result) > 2 and result[2]:
                    vectors.append(result[2])
        if may_reasons:
            verdict, distance = VERDICT_UNKNOWN, None
            if lcd_distances:
                # A dependence is *proven*; unknown pairs cannot undo that.
                verdict, distance = VERDICT_LCD, min(lcd_distances)
            reasons = _dedupe(may_reasons)
        elif lcd_distances:
            verdict, distance = VERDICT_LCD, min(lcd_distances)
            reasons = ()
        else:
            verdict, distance = VERDICT_DOALL, None
            reasons = ()
        return LoopDependence(loop.loop_id, verdict, distance, reasons,
                              tested, len(accesses),
                              vectors=_dedupe(vectors),
                              distances=sorted(set(lcd_distances)))

    # -- access collection -------------------------------------------------------

    def _collect(self, loop):
        accesses = []
        opaque = []
        for block in loop.blocks_in_function_order():
            for instruction in block.instructions:
                if isinstance(instruction, Load):
                    self._add_pointer_access(
                        accesses, loop, False, instruction.pointer,
                        f"load in {block.name}", block)
                elif isinstance(instruction, Store):
                    if instruction.value.type.is_pointer:
                        opaque.append(
                            f"store of a pointer value in {block.name} "
                            f"(untracked aliasing)")
                    self._add_pointer_access(
                        accesses, loop, True, instruction.pointer,
                        f"store in {block.name}", block)
                elif isinstance(instruction, Call):
                    self._add_call_accesses(
                        accesses, opaque, loop, instruction, block)
        return accesses, opaque

    def _add_pointer_access(self, accesses, loop, is_write, pointer, label,
                            block):
        base = _trace_to_base(pointer)
        if not isinstance(base, (GlobalVariable, Alloca, Argument)):
            base = None
        if self._is_iteration_private(base, loop):
            return
        name = base.name if base is not None else "?"
        accesses.append(_Access(is_write, base, pointer, False,
                                f"{label} of @{name}", block))

    def _add_call_accesses(self, accesses, opaque, loop, call, block):
        summary = self.summaries.get(call.callee)
        if summary is None:
            opaque.append(
                f"call @{call.callee.name} in {block.name} has no memory "
                f"summary")
            return
        fine = {}
        for sa in summary.accesses:
            fine.setdefault((sa.object_key(), sa.is_write), []).append(sa)
        for is_write, objects in ((False, summary.reads),
                                  (True, summary.writes)):
            for obj in objects:
                if obj == UNKNOWN_OBJECT:
                    opaque.append(
                        f"call @{call.callee.name} in {block.name} touches "
                        f"unanalyzable memory")
                    continue
                group = fine.get((obj, is_write), ())
                if group and summary.exact_for(obj, is_write) \
                        and self._add_affine_call_accesses(
                            accesses, loop, call, block, is_write, group):
                    continue
                if obj == ARGS_OBJECT:
                    for arg in call.args:
                        if not arg.type.is_pointer:
                            continue
                        base = _trace_to_base(arg)
                        if not isinstance(
                                base, (GlobalVariable, Alloca, Argument)):
                            opaque.append(
                                f"call @{call.callee.name} in {block.name} "
                                f"passes an unresolvable pointer")
                            continue
                        if self._is_iteration_private(base, loop):
                            continue
                        accesses.append(_Access(
                            is_write, base, None, True,
                            f"call @{call.callee.name} in {block.name} "
                            f"{'writes' if is_write else 'reads'} @{base.name}"))
                else:
                    accesses.append(_Access(
                        is_write, obj, None, True,
                        f"call @{call.callee.name} in {block.name} "
                        f"{'writes' if is_write else 'reads'} @{obj.name}"))

    def _add_affine_call_accesses(self, accesses, loop, call, block,
                                  is_write, group):
        """Field-sensitive call translation: one bounded access per affine
        callee access, its footprint re-expressed w.r.t. the analyzed loop
        through the call's actual arguments. Returns ``False`` (adding
        nothing) when any translation fails, so the caller falls back to
        whole-object granularity."""
        translated = []
        verb = "writes" if is_write else "reads"
        for sa in group:
            try:
                base, fp = self._summary_footprint(loop, call, block, sa)
            except _NonAffine:
                return False
            if self._is_iteration_private(base, loop):
                continue
            translated.append(_Access(
                is_write, base, None, False,
                f"call @{call.callee.name} in {block.name} {verb} "
                f"@{base.name}", block, footprint=fp))
        accesses.extend(translated)
        return True

    def _summary_footprint(self, loop, call, block, sa):
        """``(base, _Linear)`` for one callee :class:`SummaryAccess` at
        this call site, w.r.t. the analyzed loop: the callee's pointer
        formal becomes the actual pointer (linearized here, so it may
        contribute a stride), scalar-formal coefficients substitute the
        actual scalar arguments (loop-varying actuals contribute strides
        and inner dimensions), and the callee's internal span rides
        along."""
        if isinstance(sa.base, GlobalVariable):
            base = sa.base
            fp = _Linear()
        else:
            actual = call.args[sa.base]
            base = _trace_to_base(actual)
            if not isinstance(base, (GlobalVariable, Alloca, Argument)):
                raise _NonAffine("an unresolvable actual pointer")
            fp = self._linearize(self.scev.get(actual), loop, block)
            coeff = fp.terms.pop(SCEVUnknown(base), 0)
            if coeff != 1:
                raise _NonAffine("the base pointer is scaled or folded "
                                 "away")
        fp.const += sa.offset
        fp.span_lo += sa.span_lo
        fp.span_hi += sa.span_hi
        for index, coeff in sa.coeffs.items():
            part = _scale_linear(
                self._linearize(self.scev.get(call.args[index]), loop,
                                block),
                coeff)
            fp.const += part.const
            fp.stride += part.stride
            fp.span_lo += part.span_lo
            fp.span_hi += part.span_hi
            for term, c in part.terms.items():
                merged = fp.terms.get(term, 0) + c
                if merged:
                    fp.terms[term] = merged
                else:
                    fp.terms.pop(term, None)
            for key, dim in part.dims.items():
                mine = fp.dims.get(key)
                if mine is None:
                    fp.dims[key] = _Dim(dim.loop, dim.stride, dim.max_index)
                else:
                    mine.stride += dim.stride
                    mine.max_index = max(mine.max_index, dim.max_index)
        for term in fp.terms:
            if isinstance(term, SCEVUnknown) and getattr(
                    term.value, "type", None) is not None \
                    and term.value.type.is_pointer:
                raise _NonAffine("a second pointer appears in the "
                                 "subscript")
        _check_linear(fp)
        return base, fp

    @staticmethod
    def _is_iteration_private(base, loop):
        """Static mirror of the runtime cactus-stack privatization rule: an
        alloca inside the loop body is reborn every iteration, so accesses
        to it can never carry a dependence for this loop."""
        return isinstance(base, Alloca) and base.parent in loop.blocks

    # -- statement-level dependence graph ----------------------------------------

    def statement_graph(self, loop):
        """Build the :class:`StatementGraph` for ``loop`` (see its
        docstring). Returns a graph whose ``failure`` is set when the loop
        cannot be modeled: non-canonical shape, calls, possibly-trapping
        division, allocas, or pointer-typed stores in the body."""
        shape, reason = canonical_loop_shape(loop, self.loop_info.cfg)
        if shape is None:
            return StatementGraph(loop, failure=reason)
        statements = []
        for block in shape.chain:
            for instruction in block.instructions:
                if instruction.is_terminator:
                    continue
                statements.append(instruction)
        for statement in statements:
            if isinstance(statement, Call):
                return StatementGraph(loop, failure="call in loop body")
            if isinstance(statement, Alloca):
                return StatementGraph(loop, failure="alloca in loop body")
            if isinstance(statement, Store) \
                    and statement.value.type.is_pointer:
                return StatementGraph(
                    loop, failure="pointer-typed store in loop body")
            if isinstance(statement, BinaryOp) \
                    and statement.opcode in TRAPPING_DIV_OPS \
                    and not is_nonzero_constant(statement.rhs):
                # Reordering relative to other traps would change which
                # trap fires first; only provably safe divisions pass.
                return StatementGraph(
                    loop, failure="possibly trapping division in body")
        index_of = {id(s): i for i, s in enumerate(statements)}
        edges = [set() for _ in statements]
        serial = set()

        # SSA def -> use edges (defs precede uses in a straight-line body).
        for i, statement in enumerate(statements):
            for operand in statement.operands:
                j = index_of.get(id(operand))
                if j is not None and j != i:
                    edges[j].add(i)

        # Memory dependences.
        accesses = {}
        for i, statement in enumerate(statements):
            if isinstance(statement, (Load, Store)):
                access = self._statement_access(loop, statement)
                if access is not None:
                    accesses[i] = access
        trip = self._trip(loop)
        ordered = sorted(accesses)
        for position, i in enumerate(ordered):
            first = accesses[i]
            if first.is_write:
                # Same store on two different iterations.
                if self._test_pair(loop, first, first, trip)[0] != "independent":
                    serial.add(i)
            for j in ordered[position + 1:]:
                second = accesses[j]
                if not (first.is_write or second.is_write):
                    continue
                if self._alias(first, second) == "no":
                    continue
                if self._test_pair(loop, first, second, trip)[0] == "independent":
                    # No cross-iteration overlap; a forward edge keeps the
                    # groups in program order so any same-iteration overlap
                    # still observes its original write/read order.
                    edges[i].add(j)
                else:
                    edges[i].add(j)
                    edges[j].add(i)
                    serial.add(i)
                    serial.add(j)

        # Register recurrences: everything feeding a non-computable (or
        # reduction) header phi must stay in one loop with the phi.
        phi_groups = []
        for _, phi, reg_class, _ in classify_header_phis(loop, self.scev):
            if reg_class == REG_COMPUTABLE:
                continue
            members = set()
            latch_value = phi.incoming_for_block(shape.latch)
            j = index_of.get(id(latch_value))
            if j is not None:
                members.add(j)
            for i, statement in enumerate(statements):
                if any(operand is phi for operand in statement.operands):
                    members.add(i)
            for i in members:
                for j in members:
                    if i != j:
                        edges[i].add(j)
            if reg_class == REG_NONCOMPUTABLE:
                serial |= members
            phi_groups.append((phi, reg_class, frozenset(members)))
        return StatementGraph(loop, shape, statements, edges, serial,
                              phi_groups)

    def _statement_access(self, loop, instruction):
        """The :class:`_Access` for one load/store statement (``None`` when
        iteration-private)."""
        is_write = isinstance(instruction, Store)
        pointer = instruction.pointer
        base = _trace_to_base(pointer)
        if not isinstance(base, (GlobalVariable, Alloca, Argument)):
            base = None
        if self._is_iteration_private(base, loop):
            return None
        name = base.name if base is not None else "?"
        label = f"{'store' if is_write else 'load'} in " \
                f"{instruction.parent.name} of @{name}"
        return _Access(is_write, base, pointer, False, label,
                       instruction.parent)

    def load_duplicable(self, loop, load, write_accesses, trip=None):
        """May this load be re-executed by any distributed sibling of
        ``loop``? True when it provably never overlaps any write of the
        loop — same iteration or across iterations — so every copy reads
        memory the distributed loops never touch."""
        access = self._statement_access(loop, load)
        if access is None:
            return True  # iteration-private: each copy has its own storage
        if trip is None:
            trip = self._trip(loop)
        for write in write_accesses:
            alias = self._alias(access, write)
            if alias == "no":
                continue
            if alias == "may":
                return False
            fp1 = self._access_footprint(access, loop)
            fp2 = self._access_footprint(write, loop)
            if fp1 is None or fp2 is None:
                return False
            if self._subscript_test(
                    fp1, fp2, trip, access, write)[0] != "independent":
                return False
            # Cross-iteration independence proven; still reject any
            # same-iteration overlap (k = 0).
            if not (fp1.exact and fp2.exact):
                return False
            delta = fp2.const - fp1.const
            if fp1.stride == fp2.stride:
                if delta == 0:
                    return False
            else:
                # Same-iteration overlap at iteration t needs
                # (b2 - b1)·t == -delta for some t in [0, trip].
                db = fp2.stride - fp1.stride
                if db == 0:
                    if delta == 0:
                        return False
                elif (-delta) % db == 0:
                    t = (-delta) // db
                    if 0 <= t <= (trip if trip is not None else 1 << 62):
                        return False
        return True

    # -- pair testing ------------------------------------------------------------

    def _test_pair(self, loop, first, second, trip, front=0):
        alias = self._alias(first, second)
        if alias == "no":
            return ("independent",)
        if alias == "may":
            return ("may",
                    f"{first.label} may alias {second.label}")
        # Same base object from here on.
        if first.whole_object or second.whole_object:
            return ("may",
                    f"{first.label} overlaps {second.label} (whole-object)")
        fp1 = self._access_footprint(first, loop)
        fp2 = self._access_footprint(second, loop)
        if fp1 is None or fp2 is None:
            which = first if fp1 is None else second
            reason = f"{which.label} has a non-affine access function"
            if which.pointer is not None:
                why = self.footprint_blocker(which.pointer, loop, which.block)
                if why:
                    reason = f"{reason}: {why}"
            return ("may", reason)
        if front:
            # Peel trial: iteration i of the residual loop is iteration
            # i + front of the original, so c + b·i becomes
            # (c + b·front) + b·i. The cached footprints stay unshifted.
            fp1 = _shift_footprint(fp1, front)
            fp2 = _shift_footprint(fp2, front)
            if fp1 is None or fp2 is None:
                return ("may", f"{first.label} peel-shifted offset outside "
                               f"the i32 range")
        return self._subscript_test(fp1, fp2, trip, first, second)

    def _access_footprint(self, access, loop):
        """The :class:`_Linear` for an access — linearized from its pointer,
        or the precomputed summary-translated footprint for call-derived
        accesses that carry no pointer of their own."""
        if access.pointer is None:
            return access.footprint
        return self._footprint(access.pointer, loop, access.block)

    def _alias(self, first, second):
        """Base-object disambiguation: 'no' | 'same' | 'may'.

        The slot-addressed memory model gives every global and alloca its
        own storage, so distinct concrete objects never overlap. An
        argument pointer may point anywhere in the caller — except into a
        fresh alloca of this very function, which no caller can name.
        """
        b1, b2 = first.base, second.base
        if b1 is None or b2 is None:
            return "may"
        if b1 is b2:
            return "same"
        concrete1 = isinstance(b1, (GlobalVariable, Alloca))
        concrete2 = isinstance(b2, (GlobalVariable, Alloca))
        if concrete1 and concrete2:
            return "no"
        if isinstance(b1, Argument) and isinstance(b2, Alloca):
            return "no"
        if isinstance(b2, Argument) and isinstance(b1, Alloca):
            return "no"
        return "may"  # argument vs global / argument vs other argument

    def _trip(self, loop):
        key = id(loop)
        if key not in self._trips:
            self._trips[key] = self.scev.trip_count(loop)
        return self._trips[key]

    # -- linearization -----------------------------------------------------------

    def _footprint(self, pointer, loop, access_block):
        """Linear form of the pointer's SCEV w.r.t. ``loop`` with the base
        object's term removed, or ``None`` when not affine."""
        key = (id(pointer), id(loop), id(access_block))
        if key in self._footprints:
            return self._footprints[key]
        try:
            result = self._compute_footprint(pointer, loop, access_block)
        except _NonAffine as blocked:
            self._footprint_whys[key] = blocked.reason
            result = None
        self._footprints[key] = result
        return result

    def footprint_blocker(self, pointer, loop, access_block):
        """Why ``pointer`` has no affine footprint w.r.t. ``loop`` (``None``
        when it does)."""
        self._footprint(pointer, loop, access_block)
        return self._footprint_whys.get(
            (id(pointer), id(loop), id(access_block)))

    def _compute_footprint(self, pointer, loop, access_block):
        expr = self.scev.get(pointer)
        linear = self._linearize(expr, loop, access_block)
        base = _trace_to_base(pointer)
        base_term = SCEVUnknown(base)
        coeff = linear.terms.pop(base_term, 0)
        if coeff != 1:
            # Base pointer scaled or missing: not a plain offset.
            raise _NonAffine("the base pointer is scaled or folded away")
        for term in linear.terms:
            if isinstance(term, SCEVUnknown) and getattr(
                    term.value, "type", None) is not None \
                    and term.value.type.is_pointer:
                raise _NonAffine("a second pointer appears in the subscript")
        return linear

    def _linearize(self, expr, loop, access_block):
        """Decompose ``expr`` into a :class:`_Linear` w.r.t. ``loop``:
        constant + symbolic loop-invariant terms + a constant stride per
        iteration of ``loop`` + one bounded dimension per inner-loop IV.
        Raises :class:`_NonAffine` when the expression does not fit the form
        (or any constant is large enough to have wrapped in i32
        arithmetic)."""
        if isinstance(expr, SCEVConstant):
            if abs(expr.value) >= _WRAP_LIMIT:
                raise _NonAffine("a derived constant may wrap i32")
            return _Linear(const=expr.value)
        if isinstance(expr, SCEVAddRec):
            return self._linearize_addrec(expr, loop, access_block)
        if isinstance(expr, SCEVAdd):
            total = _Linear()
            for op in expr.operands:
                part = self._linearize(op, loop, access_block)
                total.const += part.const
                total.stride += part.stride
                total.span_lo += part.span_lo
                total.span_hi += part.span_hi
                for key, dim in part.dims.items():
                    mine = total.dims.get(key)
                    if mine is None:
                        total.dims[key] = _Dim(dim.loop, dim.stride,
                                               dim.max_index)
                    else:
                        mine.stride += dim.stride
                        mine.max_index = max(mine.max_index, dim.max_index)
                for term, coeff in part.terms.items():
                    merged = total.terms.get(term, 0) + coeff
                    if merged:
                        total.terms[term] = merged
                    else:
                        total.terms.pop(term, None)
            if (abs(total.const) >= _WRAP_LIMIT
                    or abs(total.stride) >= _WRAP_LIMIT
                    or abs(total.span_lo) >= _WRAP_LIMIT
                    or abs(total.span_hi) >= _WRAP_LIMIT):
                raise _NonAffine("a combined offset may wrap i32")
            for dim in total.dims.values():
                if abs(dim.stride * dim.max_index) >= _WRAP_LIMIT:
                    raise _NonAffine(
                        f"inner loop {dim.loop.loop_id} extent may wrap i32")
            return total
        if isinstance(expr, (SCEVUnknown, SCEVMul)):
            if expr.is_invariant_in(loop):
                return _Linear(terms={expr: 1})
            raise _NonAffine(
                "the subscript varies with the loop non-affinely")
        # COULD_NOT_COMPUTE, markers, anything else.
        raise _NonAffine("the address has no computable scalar evolution")

    def _linearize_addrec(self, expr, loop, access_block):
        if expr.loop is loop:
            if not isinstance(expr.step, SCEVConstant):
                raise _NonAffine("the stride at this loop level is symbolic")
            if abs(expr.step.value) >= _WRAP_LIMIT:
                raise _NonAffine("the stride may wrap i32")
            inner = self._linearize(expr.start, loop, access_block)
            if inner.stride != 0:
                raise _NonAffine("two strides at the same loop level")
            inner.stride = expr.step.value
            return inner
        if loop.contains_loop(expr.loop):
            # Inner-loop IV: one dimension of the subscript. The addrec
            # index equals the completed latch traversals at evaluation
            # time: body blocks of the inner loop only ever run with index
            # <= trip - 1, while the inner header (the trailing exit check)
            # and any final-value use outside the inner loop can see
            # index == trip. Requires a constant inner trip count.
            inner_id = expr.loop.loop_id
            if not isinstance(expr.step, SCEVConstant):
                raise _NonAffine(f"inner loop {inner_id} has a symbolic "
                                 f"stride")
            inner_trip = self._trip(expr.loop)
            if inner_trip is None:
                raise _NonAffine(f"inner loop {inner_id} has no constant "
                                 f"trip count")
            max_index = inner_trip
            if (access_block is not None
                    and access_block in expr.loop.blocks
                    and access_block is not expr.loop.header):
                max_index = inner_trip - 1
            if abs(expr.step.value * max_index) >= _WRAP_LIMIT:
                raise _NonAffine(f"inner loop {inner_id} extent may wrap "
                                 f"i32")
            outer = self._linearize(expr.start, loop, access_block)
            key = id(expr.loop)
            dim = outer.dims.get(key)
            if dim is None:
                outer.dims[key] = _Dim(expr.loop, expr.step.value, max_index)
            else:
                dim.stride += expr.step.value
                dim.max_index = max(dim.max_index, max_index)
            return outer
        # Addrec of an outer or disjoint loop: fixed for the whole
        # invocation of ``loop``. Its *start* may still carry the base
        # pointer (``{{A,+,8}<outer>,+,1}<inner>`` seen from the inner
        # loop), so split value = start + {0,+,step}<that-loop>: the start
        # linearizes normally and the iteration-dependent remainder stays
        # one symbolic term both accesses of a pair share structurally.
        start = self._linearize(expr.start, loop, access_block)
        offset_term = SCEVAddRec(ZERO, expr.step, expr.loop)
        start.terms[offset_term] = start.terms.get(offset_term, 0) + 1
        return start

    # -- subscript tests ----------------------------------------------------------

    def _subscript_test(self, fp1, fp2, trip, first, second):
        """Nest-aware ZIV / SIV / MIV test over two same-base footprints.

        ``fp1`` covers ``c1 + b1·i + Σ s·i_m`` at iteration ``i`` of the
        analyzed loop (with ``i_m`` ranging over each inner loop's index
        box); ``fp2`` likewise at iteration ``j``. A dependence carried at
        this level needs overlap with ``k = j - i ≠ 0`` and, when the trip
        count is known, ``|k| <= trip - 1``. Inner dimensions may take any
        direction — per-invocation semantics make outer levels ``=`` by
        construction, so a refutation here proves the analyzed level
        dependence-free. Results carry a rendered direction vector
        (analyzed level first, then inner levels) for surviving
        dependences.
        """
        delta_terms = dict(fp1.terms)
        for term, coeff in fp2.terms.items():
            merged = delta_terms.get(term, 0) - coeff
            if merged:
                delta_terms[term] = merged
            else:
                delta_terms.pop(term, None)
        if delta_terms:
            return ("may",
                    f"{first.label} and {second.label} differ by a symbolic "
                    f"offset")
        delta = fp2.const - fp1.const  # f2 minus f1 at equal indices
        if abs(delta) >= _WRAP_LIMIT:
            return ("may", f"{first.label} offset outside the i32 range")
        if trip is not None and trip <= 1:
            return ("independent",)  # a single iteration carries nothing
        b1, b2 = fp1.stride, fp2.stride

        # Inner-dimension contribution window: E = f2's inner part minus
        # f1's, plus the residual callee spans. ``inner_g`` is the lattice
        # the (non-dense) contribution values live on.
        keys = sorted(
            set(fp1.dims) | set(fp2.dims),
            key=lambda key: (fp1.dims.get(key) or fp2.dims[key]).loop.loop_id)
        e_lo = fp2.span_lo - fp1.span_hi
        e_hi = fp2.span_hi - fp1.span_lo
        dense = not (fp1.span_lo == fp1.span_hi
                     == fp2.span_lo == fp2.span_hi == 0)
        inner_g = 0
        inner_mag = max(abs(e_lo), abs(e_hi))
        for key in keys:
            d1, d2 = fp1.dims.get(key), fp2.dims.get(key)
            lo1, hi1 = d1.bounds() if d1 else (0, 0)
            lo2, hi2 = d2.bounds() if d2 else (0, 0)
            e_lo += lo2 - hi1
            e_hi += hi2 - lo1
            inner_g = gcd(inner_g, gcd(abs(d1.stride) if d1 else 0,
                                       abs(d2.stride) if d2 else 0))
            inner_mag += max(abs(lo1), hi1) + max(abs(lo2), hi2)
        if trip is not None and (
                max(abs(b1), abs(b2)) * (trip + 1)
                + inner_mag) >= _WRAP_LIMIT:
            return ("may", f"{first.label} index range may wrap i32")

        def inner_hits(value):
            """May the inner dimensions contribute exactly ``value``?"""
            if not e_lo <= value <= e_hi:
                return False
            if dense:
                return True
            if inner_g == 0:
                return value == 0
            return value % inner_g == 0

        def vector(level_dirs):
            return _render_vector(first, second, level_dirs, fp1, fp2, keys)

        exact = fp1.exact and fp2.exact
        if b1 == 0 and b2 == 0:
            # ZIV at this level: the address window does not move with the
            # analyzed loop.
            if not inner_hits(-delta):
                return ("independent",)
            if exact:
                return ("lcd", 1, vector(["<"]))  # same cell every iteration
            return ("may",
                    f"{first.label} and {second.label} revisit "
                    f"overlapping invariant storage",
                    vector(["*"]))
        if b1 == b2:
            # Strong SIV at this level: b·k must land on a feasible inner
            # contribution; enumerate the (bounded) candidate distances.
            k_min, k_max = _stride_multiples_in(
                -delta - e_hi, -delta - e_lo, b1)
            if trip is not None:
                # Accesses execute in the body only: indices span
                # [0, trip-1], so distances span at most trip-1.
                k_min = max(k_min, -(trip - 1))
                k_max = min(k_max, trip - 1)
            if k_max - k_min > _MAX_DISTANCE_CANDIDATES:
                return ("may",
                        f"{first.label} and {second.label} collide at "
                        f"several possible distances",
                        vector(["*"]))
            candidates = [k for k in range(k_min, k_max + 1)
                          if k != 0 and inner_hits(-delta - b1 * k)]
            if not candidates:
                return ("independent",)
            dirs = sorted({"<" if k > 0 else ">" for k in candidates})
            distances = {abs(k) for k in candidates}
            if len(distances) == 1:
                return ("lcd", distances.pop(), vector(dirs))
            return ("may",
                    f"{first.label} and {second.label} collide at several "
                    f"possible distances",
                    vector(dirs))
        # MIV / weak SIV: GCD over every stride in the equation, then a
        # directional Banerjee range test per level direction.
        if not dense:
            g = gcd(gcd(abs(b1), abs(b2)), inner_g)
            if g and delta % g:
                return ("independent",)
        dirs = []
        for direction in ("<", ">"):
            level_lo, level_hi = _level_range(b1, b2, trip, direction)
            if level_lo + e_lo <= -delta <= level_hi + e_hi:
                dirs.append(direction)
        if not dirs:
            return ("independent",)
        return ("may",
                f"{first.label} and {second.label} have unequal strides "
                f"({b1} vs {b2})",
                vector(dirs))


def _scale_linear(lin, coeff):
    """``coeff · lin`` — negative coefficients swap the span window."""
    if coeff == 1:
        return lin
    scaled = _Linear(const=lin.const * coeff, stride=lin.stride * coeff)
    for term, c in lin.terms.items():
        scaled.terms[term] = c * coeff
    for key, dim in lin.dims.items():
        scaled.dims[key] = _Dim(dim.loop, dim.stride * coeff, dim.max_index)
    lo, hi = lin.span_lo * coeff, lin.span_hi * coeff
    scaled.span_lo, scaled.span_hi = min(lo, hi), max(lo, hi)
    return scaled


def _check_linear(fp):
    """i32 wrap guard over a combined :class:`_Linear`."""
    if (abs(fp.const) >= _WRAP_LIMIT
            or abs(fp.stride) >= _WRAP_LIMIT
            or abs(fp.span_lo) >= _WRAP_LIMIT
            or abs(fp.span_hi) >= _WRAP_LIMIT):
        raise _NonAffine("a combined offset may wrap i32")
    for dim in fp.dims.values():
        if abs(dim.stride * dim.max_index) >= _WRAP_LIMIT:
            raise _NonAffine(
                f"inner loop {dim.loop.loop_id} extent may wrap i32")


def _shift_footprint(fp, front):
    """``fp`` advanced by ``front`` iterations (``None`` if it may wrap)."""
    const = fp.const + fp.stride * front
    if abs(const) >= _WRAP_LIMIT:
        return None
    return _Linear(const=const, terms=dict(fp.terms), stride=fp.stride,
                   dims=dict(fp.dims), span_lo=fp.span_lo,
                   span_hi=fp.span_hi)


def _level_range(b1, b2, trip, direction):
    """Range of ``b2·j - b1·i`` over iteration pairs of the analyzed loop
    constrained to ``direction`` (``<``: i < j, ``>``: i > j) with
    ``i, j ∈ [0, trip-1]`` — unbounded rays when ``trip`` is ``None``.

    With ``k = |j - i| ∈ [1, trip-1]`` and the smaller index ``t``, the
    term is linear in ``(k, t)`` over a triangle, so its extrema sit at
    the vertices ``(1, 0)``, ``(1, trip-2)`` and ``(trip-1, 0)``.
    """
    if direction == "<":
        k_coeff = b2
    else:
        k_coeff = -b1
    free_coeff = b2 - b1
    if trip is not None:
        last = trip - 1
        corners = (k_coeff,
                   k_coeff + free_coeff * (last - 1),
                   k_coeff * last)
        return (min(corners), max(corners))
    lo = hi = k_coeff  # k = 1, smaller index = 0
    if k_coeff > 0:
        hi = inf
    elif k_coeff < 0:
        lo = -inf
    if free_coeff > 0:
        hi = inf
    elif free_coeff < 0:
        lo = -inf
    return (lo, hi)


def _render_vector(first, second, level_dirs, fp1, fp2, keys):
    """Human-readable direction vector for a surviving dependence:
    analyzed level first, then one position per inner-loop dimension (in
    nest order), ``*`` when an inner level may take any direction and a
    trailing ``*`` when residual callee spans blur the tail."""
    parts = ["".join(level_dirs) if level_dirs else "*"]
    for key in keys:
        d1, d2 = fp1.dims.get(key), fp2.dims.get(key)
        if d1 is not None and d2 is not None and d1.stride == d2.stride \
                and d1.stride == 0:
            parts.append("=")
        else:
            parts.append("*")
    if (fp1.span_lo, fp1.span_hi, fp2.span_lo, fp2.span_hi) != (0, 0, 0, 0):
        parts.append("*")
    return f"{first.label} -> {second.label}: ({', '.join(parts)})"


def _stride_multiples_in(lower, upper, stride):
    """Integer ``k`` range with ``stride·k ∈ [lower, upper]`` (or ``None``
    if unbounded — stride 0 inside a nonempty interval)."""
    if stride == 0:
        if lower <= 0 <= upper:
            return None
        return (1, 0)  # empty range
    if stride > 0:
        return (-(-lower // stride), upper // stride)
    return (-(-upper // stride), lower // stride)


def _dedupe(reasons, cap=8):
    seen = []
    for reason in reasons:
        if reason not in seen:
            seen.append(reason)
    seen.sort()
    if len(seen) > cap:
        seen = seen[:cap] + [f"... and {len(seen) - cap} more"]
    return seen


# -- canonical loop shape ---------------------------------------------------------

# Division/remainder opcodes trap on a zero divisor; restructuring passes
# must not move one relative to other traps unless the divisor is a
# provably nonzero constant.
TRAPPING_DIV_OPS = ("sdiv", "srem", "udiv", "urem", "fdiv")


def is_nonzero_constant(value):
    return isinstance(value, Constant) and value.value != 0


class LoopShape:
    """A canonical counted loop: preheader -> header (phis + compare +
    CondBr) -> straight-line body chain -> latch -> header, with one
    dedicated exit block. The only shape the transform passes restructure."""

    __slots__ = ("preheader", "header", "compare", "body_entry", "chain",
                 "latch", "exit_block")

    def __init__(self, preheader, header, compare, body_entry, chain, latch,
                 exit_block):
        self.preheader = preheader
        self.header = header
        self.compare = compare
        self.body_entry = body_entry
        self.chain = chain
        self.latch = latch
        self.exit_block = exit_block


def canonical_loop_shape(loop, cfg):
    """``(LoopShape, None)`` when the loop is canonical, else
    ``(None, reason)``. Mirrors the vec planner's shape screen so every
    loop the transform tier restructures is one the other tiers already
    know how to reason about."""
    if loop.subloops:
        return None, "contains an inner loop"
    preheader = loop.preheader(cfg)
    if preheader is None:
        return None, "no preheader"
    latch = loop.single_latch()
    if latch is None:
        return None, f"{len(loop.latches)} latches (multi-latch bailout)"
    if not isinstance(preheader.terminator, Br):
        return None, "guarded preheader"
    header = loop.header
    if latch is header:
        return None, "body folded into the header"
    instructions = header.instructions
    compare = None
    for position, instruction in enumerate(instructions):
        if isinstance(instruction, Phi):
            if compare is not None:
                return None, "complex header"
            continue
        if isinstance(instruction, ICmp):
            if compare is not None or position != len(instructions) - 2:
                return None, "complex header"
            compare = instruction
            continue
        if isinstance(instruction, CondBr):
            if compare is None or instruction.condition is not compare:
                return None, "complex header"
            continue
        return None, "complex header"
    if compare is None or not isinstance(header.terminator, CondBr):
        return None, "complex header"
    successors = header.terminator.successors()
    inside = [s for s in successors if s in loop.blocks]
    outside = [s for s in successors if s not in loop.blocks]
    if len(inside) != 1 or len(outside) != 1:
        return None, "complex header"
    if set(loop.exiting_blocks(cfg)) != {header}:
        return None, "multiple exiting blocks"
    exit_block = outside[0]
    if cfg.predecessors(exit_block) != [header]:
        return None, "shared exit block"
    body_entry = inside[0]
    chain = []
    seen = set()
    block = body_entry
    while True:
        if block is header or id(block) in seen:
            return None, "control flow in body"
        seen.add(id(block))
        chain.append(block)
        terminator = block.terminator
        if not isinstance(terminator, Br):
            return None, "control flow in body"
        if block is latch:
            if terminator.target is not header:
                return None, "control flow in body"
            break
        block = terminator.target
        if block not in loop.blocks:
            return None, "control flow in body"
    if set(chain) | {header} != loop.blocks:
        return None, "control flow in body"
    for block in chain:
        for instruction in block.instructions:
            if isinstance(instruction, Phi):
                return None, "phi in body"
    return LoopShape(preheader, header, compare, body_entry, chain, latch,
                     exit_block), None


# -- statement-level dependence graph ---------------------------------------------


class StatementGraph:
    """Statement-level dependence graph of one canonical loop body.

    Nodes are the non-terminator instructions of the body chain in program
    order. A forward edge ``i -> j`` means statement ``j`` must not run in
    an *earlier* distributed loop than ``i``; a bidirectional pair means
    the two statements must stay in the same loop (a dependence cycle).
    ``serial`` marks statements that carry an iteration-ordering constraint
    (a proven or unrefuted cross-iteration memory dependence, or a
    non-computable register recurrence) — the statements fission wants to
    quarantine away from the DOALL-able remainder.

    ``failure`` is ``None`` when the graph was built, else the reason the
    loop cannot be modeled at statement level.
    """

    __slots__ = ("loop", "shape", "statements", "edges", "serial",
                 "phi_groups", "failure")

    def __init__(self, loop, shape=None, statements=(), edges=(),
                 serial=(), phi_groups=(), failure=None):
        self.loop = loop
        self.shape = shape
        self.statements = list(statements)
        self.edges = [set(successors) for successors in edges]
        self.serial = set(serial)
        self.phi_groups = list(phi_groups)  # (phi, reg_class, member set)
        self.failure = failure

    def sccs(self):
        """Strongly connected components, deterministic (Tarjan, ordered
        neighbor expansion), each sorted by statement index."""
        count = len(self.statements)
        index = [None] * count
        low = [0] * count
        onstack = [False] * count
        stack = []
        result = []
        counter = 0
        for root in range(count):
            if index[root] is not None:
                continue
            index[root] = low[root] = counter
            counter += 1
            stack.append(root)
            onstack[root] = True
            work = [(root, iter(sorted(self.edges[root])))]
            while work:
                node, successors = work[-1]
                advanced = False
                for succ in successors:
                    if index[succ] is None:
                        index[succ] = low[succ] = counter
                        counter += 1
                        stack.append(succ)
                        onstack[succ] = True
                        work.append((succ, iter(sorted(self.edges[succ]))))
                        advanced = True
                        break
                    if onstack[succ]:
                        low[node] = min(low[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        onstack[member] = False
                        component.append(member)
                        if member == node:
                            break
                    result.append(sorted(component))
        result.sort(key=lambda component: component[0])
        return result

    def fission_groups(self):
        """Partition into distributable groups: a topological order of the
        SCC condensation with consecutive same-kind (serial / parallel)
        components merged. Returns ``[(sorted_statement_indices,
        is_serial)]`` in execution order, or ``[]`` when the loop is not
        worth distributing (fewer than two groups)."""
        if self.failure is not None or not self.statements:
            return []
        components = self.sccs()
        if len(components) < 2:
            return []
        component_of = {}
        for ci, component in enumerate(components):
            for member in component:
                component_of[member] = ci
        successors = [set() for _ in components]
        indegree = [0] * len(components)
        for i in range(len(self.statements)):
            for j in self.edges[i]:
                a, b = component_of[i], component_of[j]
                if a != b and b not in successors[a]:
                    successors[a].add(b)
                    indegree[b] += 1
        # Kahn with a min-index priority: deterministic, and valid even
        # when components interleave in program order.
        ready = sorted(
            (ci for ci in range(len(components)) if indegree[ci] == 0),
            key=lambda ci: components[ci][0])
        order = []
        while ready:
            ci = ready.pop(0)
            order.append(ci)
            changed = False
            for succ in successors[ci]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
                    changed = True
            if changed:
                ready.sort(key=lambda ci: components[ci][0])
        if len(order) != len(components):  # defensive: cycle across SCCs
            return []
        groups = []
        for ci in order:
            component = components[ci]
            is_serial = any(member in self.serial for member in component)
            if groups and groups[-1][1] == is_serial:
                groups[-1][0].extend(component)
            else:
                groups.append((list(component), is_serial))
        return [(sorted(members), is_serial) for members, is_serial in groups]

    def describe(self):
        if self.failure is not None:
            return f"no statement graph: {self.failure}"
        kinds = ["serial" if i in self.serial else "parallel"
                 for i in range(len(self.statements))]
        return (f"{len(self.statements)} statements "
                f"({kinds.count('serial')} serial, "
                f"{kinds.count('parallel')} parallel)")


# -- module driver ---------------------------------------------------------------


def analyze_module(module, loop_infos=None):
    """``{loop_id: LoopDependence}`` for every loop in the module.

    ``loop_infos`` may carry precomputed per-function :class:`LoopInfo`
    objects keyed by function name (as ``ModuleStaticInfo`` holds them) so
    loop identities line up with the instrumentation's.
    """
    summaries = module_memory_summaries(module)
    verdicts = {}
    for function in module.defined_functions():
        loop_info = None
        if loop_infos is not None:
            loop_info = loop_infos.get(function.name)
        analysis = DependenceAnalysis(
            function, loop_info=loop_info, summaries=summaries)
        for loop in analysis.loop_info.all_loops():
            verdicts[loop.loop_id] = analysis.loop_verdict(loop)
    return verdicts
