"""Static loop-carried memory dependence analysis.

The dynamic profiler observes memory LCDs; this module *proves* them (or
their absence) at compile time, giving the repo a second, independent source
of truth. For every loop it emits a conservative verdict:

* ``STATIC_DOALL`` — no loop-carried memory dependence can exist: every pair
  of accesses that could touch the same storage is proven independent across
  iterations by a dependence test.
* ``STATIC_LCD(dist=k)`` — a loop-carried dependence at constant iteration
  distance ``k`` was derived from the access functions (classic may-
  dependence semantics: the dependence is assumed unless disproven, and
  here its distance is known exactly).
* ``UNKNOWN`` — independence could not be proven (symbolic offsets, opaque
  pointers, unanalyzable callees, ...).

The machinery mirrors the textbook pipeline on top of :mod:`.scev`:

1. every load/store pointer is linearized into ``base + const + Σ cᵢ·symᵢ +
   stride·i ± span`` with respect to the loop (``_Linear``); ``span`` bounds
   the footprint contributed by inner-loop induction variables (the MIV
   case);
2. base objects are resolved through GEP chains; distinct concrete objects
   (different globals, different allocas) never alias in the slot-addressed
   memory model, and an alloca belonging to the loop body is iteration-
   private — the static mirror of the runtime's cactus-stack privatization
   rule;
3. same-base pairs go through ZIV / strong-SIV / GCD / Banerjee-style
   subscript tests with the loop's trip count (when constant) bounding the
   dependence distance;
4. calls contribute their callee's *memory summary* (reads/writes of global
   objects and pointer arguments, computed bottom-up over call-graph SCCs)
   as whole-object footprints.

Soundness contract (checked by ``repro crosscheck`` and the differential
backend tests): a loop classified ``STATIC_DOALL`` must never record a
cross-iteration RAW conflict in the dynamic profile, under any backend.

The register half of Table I lives here too: :func:`classify_header_phis`
re-derives the computable / reduction / non-computable split for a loop's
header phis purely from ``scev.py`` + ``reduction.py`` so that
``core.static_info`` and the lint/crosscheck layer share one classifier.
"""

from __future__ import annotations

from math import gcd

from ..ir.instructions import (
    Alloca,
    BinaryOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    GEP,
    ICmp,
    Load,
    Phi,
    Select,
    Store,
)
from ..ir.values import Argument, Constant, GlobalVariable
from .callgraph import CallGraph
from .loop_info import LoopInfo
from .purity import _trace_to_base
from .reduction import detect_reduction
from .scev import (
    COULD_NOT_COMPUTE,
    ZERO,
    ScalarEvolution,
    SCEVAdd,
    SCEVAddRec,
    SCEVConstant,
    SCEVMul,
    SCEVUnknown,
)

# Verdict strings (stable: surfaced by the CLI and joined by crosscheck).
VERDICT_DOALL = "STATIC_DOALL"
VERDICT_LCD = "STATIC_LCD"
VERDICT_UNKNOWN = "UNKNOWN"

# Register classification strings (match core.static_info's PHI_*).
REG_COMPUTABLE = "computable"
REG_REDUCTION = "reduction"
REG_NONCOMPUTABLE = "noncomputable"

# Memory-summary sentinels (alongside concrete GlobalVariable objects).
ARGS_OBJECT = "<args>"
UNKNOWN_OBJECT = "<unknown>"

# SCEV is width-agnostic but the interpreter wraps i32 arithmetic; any
# derived constant at or beyond this magnitude may have wrapped at run time,
# so the subscript tests refuse to conclude anything from it.
_WRAP_LIMIT = 1 << 31

# Pair-testing is quadratic in the number of accesses; loops beyond this are
# classified UNKNOWN rather than risking pathological analysis times.
_MAX_ACCESSES = 512


def classify_header_phis(loop, scev):
    """Classify each header phi of ``loop`` statically.

    Returns ``[(position, phi, reg_class, reduction_kind)]`` in header
    order, where ``reg_class`` is one of :data:`REG_COMPUTABLE`,
    :data:`REG_REDUCTION`, :data:`REG_NONCOMPUTABLE` and ``reduction_kind``
    is the recurrence kind string for reductions (else ``None``). This is
    the single implementation behind Table I's register-LCD split.
    """
    result = []
    for position, phi in enumerate(loop.header.phis()):
        if scev.is_computable_phi(phi):
            result.append((position, phi, REG_COMPUTABLE, None))
            continue
        descriptor = detect_reduction(phi, loop)
        if descriptor is not None:
            result.append((position, phi, REG_REDUCTION, descriptor.kind))
        else:
            result.append((position, phi, REG_NONCOMPUTABLE, None))
    return result


# -- function memory summaries ---------------------------------------------------


class FunctionMemorySummary:
    """What a function (transitively) reads and writes, as a set of objects:
    concrete :class:`GlobalVariable` identities, :data:`ARGS_OBJECT` (memory
    reachable through pointer arguments) and :data:`UNKNOWN_OBJECT`
    (anything — analysis gave up). A function's own allocas are excluded:
    frame storage is private to the call and, when the call happens inside a
    loop iteration, iteration-private under the runtime's cactus-stack rule.
    """

    __slots__ = ("reads", "writes")

    def __init__(self):
        self.reads = set()
        self.writes = set()

    @property
    def is_opaque(self):
        return UNKNOWN_OBJECT in self.reads or UNKNOWN_OBJECT in self.writes

    @property
    def touches_memory(self):
        return bool(self.reads or self.writes)

    def __repr__(self):
        def show(objects):
            names = sorted(
                obj.name if isinstance(obj, GlobalVariable) else str(obj)
                for obj in objects
            )
            return "{" + ", ".join(names) + "}"

        return f"<MemSummary reads={show(self.reads)} writes={show(self.writes)}>"


def _summary_object(pointer):
    """Map a pointer to its summary object (``None`` = frame-private)."""
    base = _trace_to_base(pointer)
    if isinstance(base, GlobalVariable):
        return base
    if isinstance(base, Alloca):
        return None  # callee frame storage: invisible to callers
    if isinstance(base, Argument):
        return ARGS_OBJECT
    return UNKNOWN_OBJECT


def module_memory_summaries(module, callgraph=None):
    """Bottom-up :class:`FunctionMemorySummary` for every module function."""
    if callgraph is None:
        callgraph = CallGraph(module)
    summaries = {}
    for component in callgraph.sccs_bottom_up():
        scc = set(component)
        for function in component:
            summary = FunctionMemorySummary()
            summaries[function] = summary
            if function.is_intrinsic:
                info = function.intrinsic
                if info.reads_memory:
                    summary.reads.add(ARGS_OBJECT)
                if info.writes_memory:
                    summary.writes.add(ARGS_OBJECT)
                # side_effects / global_state intrinsics (rand, print...)
                # have no *modeled-memory* traffic: the interpreter never
                # issues mem_read/mem_write for them, so they are invisible
                # to the dynamic conflict tracker and safely omitted here.
                continue
            if function.is_declaration:
                summary.reads.add(UNKNOWN_OBJECT)
                summary.writes.add(UNKNOWN_OBJECT)
                continue
            for instruction in function.instructions():
                if isinstance(instruction, Load):
                    obj = _summary_object(instruction.pointer)
                    if obj is not None:
                        summary.reads.add(obj)
                elif isinstance(instruction, Store):
                    if instruction.value.type.is_pointer:
                        # A stored pointer value creates aliasing routes the
                        # base-object model cannot track.
                        summary.writes.add(UNKNOWN_OBJECT)
                    obj = _summary_object(instruction.pointer)
                    if obj is not None:
                        summary.writes.add(obj)
                elif isinstance(instruction, Call):
                    callee = instruction.callee
                    if callee in scc:
                        # Recursion inside the SCC: punt.
                        summary.reads.add(UNKNOWN_OBJECT)
                        summary.writes.add(UNKNOWN_OBJECT)
                        continue
                    callee_summary = summaries[callee]
                    _absorb_call(summary.reads, callee_summary.reads, instruction)
                    _absorb_call(summary.writes, callee_summary.writes, instruction)
    return summaries


def _absorb_call(target, source, call):
    """Translate a callee summary across a call site: ``ARGS_OBJECT``
    entries become the objects behind the call's pointer arguments."""
    for obj in source:
        if obj == ARGS_OBJECT:
            for arg in call.args:
                if arg.type.is_pointer:
                    translated = _summary_object(arg)
                    if translated is not None:
                        target.add(translated)
        else:
            target.add(obj)


# -- access model ----------------------------------------------------------------


class _Access:
    """One memory access the loop may perform each iteration."""

    __slots__ = ("is_write", "base", "pointer", "whole_object", "label",
                 "block")

    def __init__(self, is_write, base, pointer, whole_object, label,
                 block=None):
        self.is_write = is_write
        self.base = base          # GlobalVariable | Alloca | Argument | None
        self.pointer = pointer    # IR pointer value (None for whole-object)
        self.whole_object = whole_object
        self.label = label        # deterministic human-readable description
        self.block = block        # where the access executes (span bounds)


class _Linear:
    """``const + Σ coeff·sym + stride·i + [span_lo, span_hi]`` w.r.t. a loop."""

    __slots__ = ("const", "terms", "stride", "span_lo", "span_hi")

    def __init__(self, const=0, terms=None, stride=0, span_lo=0, span_hi=0):
        self.const = const
        self.terms = terms if terms is not None else {}
        self.stride = stride
        self.span_lo = span_lo
        self.span_hi = span_hi


class LoopDependence:
    """The static memory-dependence verdict for one loop."""

    __slots__ = ("loop_id", "verdict", "distance", "reasons", "tested_pairs",
                 "access_count")

    def __init__(self, loop_id, verdict, distance=None, reasons=(),
                 tested_pairs=0, access_count=0):
        self.loop_id = loop_id
        self.verdict = verdict
        self.distance = distance
        self.reasons = tuple(reasons)
        self.tested_pairs = tested_pairs
        self.access_count = access_count

    def describe(self):
        if self.verdict == VERDICT_LCD and self.distance is not None:
            return f"{VERDICT_LCD}(dist={self.distance})"
        return self.verdict

    def to_dict(self):
        return {
            "loop_id": self.loop_id,
            "verdict": self.verdict,
            "distance": self.distance,
            "reasons": list(self.reasons),
            "tested_pairs": self.tested_pairs,
            "access_count": self.access_count,
        }

    def __repr__(self):
        return f"<LoopDependence {self.loop_id} {self.describe()}>"


class DependenceAnalysis:
    """Per-function loop-carried memory dependence analysis."""

    def __init__(self, function, loop_info=None, scev=None, summaries=None):
        self.function = function
        self.loop_info = loop_info if loop_info is not None else LoopInfo(function)
        self.scev = scev if scev is not None else ScalarEvolution(
            function, self.loop_info)
        self.summaries = summaries or {}
        self._footprints = {}  # (id(pointer), id(loop)) -> _Linear | None
        self._trips = {}       # id(loop) -> int | None

    # -- public API -------------------------------------------------------------

    def loop_verdict(self, loop):
        return self._verdict(loop, front=0, back=0)

    def loop_verdict_if_peeled(self, loop, front=0, back=0):
        """Verdict of the residual loop after peeling ``front`` leading and
        ``back`` trailing iterations — the static trial the peeling pass
        runs before committing to a transform. Requires a constant trip
        count large enough that the residual loop still runs."""
        if front < 0 or back < 0 or front + back == 0:
            raise ValueError("peel trial needs front/back >= 0, not both 0")
        trip = self._trip(loop)
        if trip is None:
            return LoopDependence(
                loop.loop_id, VERDICT_UNKNOWN,
                reasons=("peel trial needs a constant trip count",))
        if trip - front - back < 1:
            return LoopDependence(
                loop.loop_id, VERDICT_UNKNOWN,
                reasons=(f"peeling {front}+{back} of {trip} iterations "
                         f"leaves no residual loop",))
        return self._verdict(loop, front=front, back=back)

    def _verdict(self, loop, front, back):
        if loop.latches and loop.single_latch() is None:
            # Multiple back edges: the loop has no unique iteration point,
            # so access functions (and the instrumentation) cannot key on
            # "the iteration". An explicit bailout — not absence of a loop.
            return LoopDependence(
                loop.loop_id, VERDICT_UNKNOWN,
                reasons=(f"loop has {len(loop.latches)} latches "
                         f"(multi-latch bailout)",))
        accesses, opaque_reasons = self._collect(loop)
        if len(accesses) > _MAX_ACCESSES:
            return LoopDependence(
                loop.loop_id, VERDICT_UNKNOWN,
                reasons=(f"loop body has {len(accesses)} memory accesses "
                         f"(analysis cap {_MAX_ACCESSES})",),
                access_count=len(accesses))
        may_reasons = list(opaque_reasons)
        lcd_distances = []
        tested = 0
        writes = [a for a in accesses if a.is_write]
        reads = [a for a in accesses if not a.is_write]
        trip = self._trip(loop)
        if trip is not None:
            trip -= front + back
        for index, write in enumerate(writes):
            # write-vs-write (WAW can carry a RAW chain through memory) and
            # write-vs-read pairs; a write is also paired with itself (the
            # same instruction on two different iterations).
            for other in writes[index:] + reads:
                tested += 1
                result = self._test_pair(loop, write, other, trip,
                                         front=front)
                kind = result[0]
                if kind == "lcd":
                    lcd_distances.append(result[1])
                elif kind == "may":
                    may_reasons.append(result[1])
        if may_reasons:
            verdict, distance = VERDICT_UNKNOWN, None
            if lcd_distances:
                # A dependence is *proven*; unknown pairs cannot undo that.
                verdict, distance = VERDICT_LCD, min(lcd_distances)
            reasons = _dedupe(may_reasons)
        elif lcd_distances:
            verdict, distance = VERDICT_LCD, min(lcd_distances)
            reasons = ()
        else:
            verdict, distance = VERDICT_DOALL, None
            reasons = ()
        return LoopDependence(loop.loop_id, verdict, distance, reasons,
                              tested, len(accesses))

    # -- access collection -------------------------------------------------------

    def _collect(self, loop):
        accesses = []
        opaque = []
        for block in loop.blocks_in_function_order():
            for instruction in block.instructions:
                if isinstance(instruction, Load):
                    self._add_pointer_access(
                        accesses, loop, False, instruction.pointer,
                        f"load in {block.name}", block)
                elif isinstance(instruction, Store):
                    if instruction.value.type.is_pointer:
                        opaque.append(
                            f"store of a pointer value in {block.name} "
                            f"(untracked aliasing)")
                    self._add_pointer_access(
                        accesses, loop, True, instruction.pointer,
                        f"store in {block.name}", block)
                elif isinstance(instruction, Call):
                    self._add_call_accesses(
                        accesses, opaque, loop, instruction, block)
        return accesses, opaque

    def _add_pointer_access(self, accesses, loop, is_write, pointer, label,
                            block):
        base = _trace_to_base(pointer)
        if not isinstance(base, (GlobalVariable, Alloca, Argument)):
            base = None
        if self._is_iteration_private(base, loop):
            return
        name = base.name if base is not None else "?"
        accesses.append(_Access(is_write, base, pointer, False,
                                f"{label} of @{name}", block))

    def _add_call_accesses(self, accesses, opaque, loop, call, block):
        summary = self.summaries.get(call.callee)
        if summary is None:
            opaque.append(
                f"call @{call.callee.name} in {block.name} has no memory "
                f"summary")
            return
        for is_write, objects in ((False, summary.reads),
                                  (True, summary.writes)):
            for obj in objects:
                if obj == UNKNOWN_OBJECT:
                    opaque.append(
                        f"call @{call.callee.name} in {block.name} touches "
                        f"unanalyzable memory")
                elif obj == ARGS_OBJECT:
                    for arg in call.args:
                        if not arg.type.is_pointer:
                            continue
                        base = _trace_to_base(arg)
                        if not isinstance(
                                base, (GlobalVariable, Alloca, Argument)):
                            opaque.append(
                                f"call @{call.callee.name} in {block.name} "
                                f"passes an unresolvable pointer")
                            continue
                        if self._is_iteration_private(base, loop):
                            continue
                        accesses.append(_Access(
                            is_write, base, None, True,
                            f"call @{call.callee.name} in {block.name} "
                            f"{'writes' if is_write else 'reads'} @{base.name}"))
                else:
                    accesses.append(_Access(
                        is_write, obj, None, True,
                        f"call @{call.callee.name} in {block.name} "
                        f"{'writes' if is_write else 'reads'} @{obj.name}"))

    @staticmethod
    def _is_iteration_private(base, loop):
        """Static mirror of the runtime cactus-stack privatization rule: an
        alloca inside the loop body is reborn every iteration, so accesses
        to it can never carry a dependence for this loop."""
        return isinstance(base, Alloca) and base.parent in loop.blocks

    # -- statement-level dependence graph ----------------------------------------

    def statement_graph(self, loop):
        """Build the :class:`StatementGraph` for ``loop`` (see its
        docstring). Returns a graph whose ``failure`` is set when the loop
        cannot be modeled: non-canonical shape, calls, possibly-trapping
        division, allocas, or pointer-typed stores in the body."""
        shape, reason = canonical_loop_shape(loop, self.loop_info.cfg)
        if shape is None:
            return StatementGraph(loop, failure=reason)
        statements = []
        for block in shape.chain:
            for instruction in block.instructions:
                if instruction.is_terminator:
                    continue
                statements.append(instruction)
        for statement in statements:
            if isinstance(statement, Call):
                return StatementGraph(loop, failure="call in loop body")
            if isinstance(statement, Alloca):
                return StatementGraph(loop, failure="alloca in loop body")
            if isinstance(statement, Store) \
                    and statement.value.type.is_pointer:
                return StatementGraph(
                    loop, failure="pointer-typed store in loop body")
            if isinstance(statement, BinaryOp) \
                    and statement.opcode in TRAPPING_DIV_OPS \
                    and not is_nonzero_constant(statement.rhs):
                # Reordering relative to other traps would change which
                # trap fires first; only provably safe divisions pass.
                return StatementGraph(
                    loop, failure="possibly trapping division in body")
        index_of = {id(s): i for i, s in enumerate(statements)}
        edges = [set() for _ in statements]
        serial = set()

        # SSA def -> use edges (defs precede uses in a straight-line body).
        for i, statement in enumerate(statements):
            for operand in statement.operands:
                j = index_of.get(id(operand))
                if j is not None and j != i:
                    edges[j].add(i)

        # Memory dependences.
        accesses = {}
        for i, statement in enumerate(statements):
            if isinstance(statement, (Load, Store)):
                access = self._statement_access(loop, statement)
                if access is not None:
                    accesses[i] = access
        trip = self._trip(loop)
        ordered = sorted(accesses)
        for position, i in enumerate(ordered):
            first = accesses[i]
            if first.is_write:
                # Same store on two different iterations.
                if self._test_pair(loop, first, first, trip)[0] != "independent":
                    serial.add(i)
            for j in ordered[position + 1:]:
                second = accesses[j]
                if not (first.is_write or second.is_write):
                    continue
                if self._alias(first, second) == "no":
                    continue
                if self._test_pair(loop, first, second, trip)[0] == "independent":
                    # No cross-iteration overlap; a forward edge keeps the
                    # groups in program order so any same-iteration overlap
                    # still observes its original write/read order.
                    edges[i].add(j)
                else:
                    edges[i].add(j)
                    edges[j].add(i)
                    serial.add(i)
                    serial.add(j)

        # Register recurrences: everything feeding a non-computable (or
        # reduction) header phi must stay in one loop with the phi.
        phi_groups = []
        for _, phi, reg_class, _ in classify_header_phis(loop, self.scev):
            if reg_class == REG_COMPUTABLE:
                continue
            members = set()
            latch_value = phi.incoming_for_block(shape.latch)
            j = index_of.get(id(latch_value))
            if j is not None:
                members.add(j)
            for i, statement in enumerate(statements):
                if any(operand is phi for operand in statement.operands):
                    members.add(i)
            for i in members:
                for j in members:
                    if i != j:
                        edges[i].add(j)
            if reg_class == REG_NONCOMPUTABLE:
                serial |= members
            phi_groups.append((phi, reg_class, frozenset(members)))
        return StatementGraph(loop, shape, statements, edges, serial,
                              phi_groups)

    def _statement_access(self, loop, instruction):
        """The :class:`_Access` for one load/store statement (``None`` when
        iteration-private)."""
        is_write = isinstance(instruction, Store)
        pointer = instruction.pointer
        base = _trace_to_base(pointer)
        if not isinstance(base, (GlobalVariable, Alloca, Argument)):
            base = None
        if self._is_iteration_private(base, loop):
            return None
        name = base.name if base is not None else "?"
        label = f"{'store' if is_write else 'load'} in " \
                f"{instruction.parent.name} of @{name}"
        return _Access(is_write, base, pointer, False, label,
                       instruction.parent)

    def load_duplicable(self, loop, load, write_accesses, trip=None):
        """May this load be re-executed by any distributed sibling of
        ``loop``? True when it provably never overlaps any write of the
        loop — same iteration or across iterations — so every copy reads
        memory the distributed loops never touch."""
        access = self._statement_access(loop, load)
        if access is None:
            return True  # iteration-private: each copy has its own storage
        if trip is None:
            trip = self._trip(loop)
        for write in write_accesses:
            alias = self._alias(access, write)
            if alias == "no":
                continue
            if alias == "may":
                return False
            fp1 = self._footprint(access.pointer, loop, access.block)
            fp2 = self._footprint(write.pointer, loop, write.block)
            if fp1 is None or fp2 is None:
                return False
            if self._subscript_test(
                    fp1, fp2, trip, access, write)[0] != "independent":
                return False
            # Cross-iteration independence proven; still reject any
            # same-iteration overlap (k = 0).
            if not (fp1.span_lo == fp1.span_hi == 0
                    and fp2.span_lo == fp2.span_hi == 0):
                return False
            delta = fp2.const - fp1.const
            if fp1.stride == fp2.stride:
                if delta == 0:
                    return False
            else:
                # Same-iteration overlap at iteration t needs
                # (b2 - b1)·t == -delta for some t in [0, trip].
                db = fp2.stride - fp1.stride
                if db == 0:
                    if delta == 0:
                        return False
                elif (-delta) % db == 0:
                    t = (-delta) // db
                    if 0 <= t <= (trip if trip is not None else 1 << 62):
                        return False
        return True

    # -- pair testing ------------------------------------------------------------

    def _test_pair(self, loop, first, second, trip, front=0):
        alias = self._alias(first, second)
        if alias == "no":
            return ("independent",)
        if alias == "may":
            return ("may",
                    f"{first.label} may alias {second.label}")
        # Same base object from here on.
        if first.whole_object or second.whole_object:
            return ("may",
                    f"{first.label} overlaps {second.label} (whole-object)")
        fp1 = self._footprint(first.pointer, loop, first.block)
        fp2 = self._footprint(second.pointer, loop, second.block)
        if fp1 is None or fp2 is None:
            which = first.label if fp1 is None else second.label
            return ("may", f"{which} has a non-affine access function")
        if front:
            # Peel trial: iteration i of the residual loop is iteration
            # i + front of the original, so c + b·i becomes
            # (c + b·front) + b·i. The cached footprints stay unshifted.
            fp1 = _shift_footprint(fp1, front)
            fp2 = _shift_footprint(fp2, front)
            if fp1 is None or fp2 is None:
                return ("may", f"{first.label} peel-shifted offset outside "
                               f"the i32 range")
        return self._subscript_test(fp1, fp2, trip, first, second)

    def _alias(self, first, second):
        """Base-object disambiguation: 'no' | 'same' | 'may'.

        The slot-addressed memory model gives every global and alloca its
        own storage, so distinct concrete objects never overlap. An
        argument pointer may point anywhere in the caller — except into a
        fresh alloca of this very function, which no caller can name.
        """
        b1, b2 = first.base, second.base
        if b1 is None or b2 is None:
            return "may"
        if b1 is b2:
            return "same"
        concrete1 = isinstance(b1, (GlobalVariable, Alloca))
        concrete2 = isinstance(b2, (GlobalVariable, Alloca))
        if concrete1 and concrete2:
            return "no"
        if isinstance(b1, Argument) and isinstance(b2, Alloca):
            return "no"
        if isinstance(b2, Argument) and isinstance(b1, Alloca):
            return "no"
        return "may"  # argument vs global / argument vs other argument

    def _trip(self, loop):
        key = id(loop)
        if key not in self._trips:
            self._trips[key] = self.scev.trip_count(loop)
        return self._trips[key]

    # -- linearization -----------------------------------------------------------

    def _footprint(self, pointer, loop, access_block):
        """Linear form of the pointer's SCEV w.r.t. ``loop`` with the base
        object's term removed, or ``None`` when not affine."""
        key = (id(pointer), id(loop), id(access_block))
        if key in self._footprints:
            return self._footprints[key]
        result = self._compute_footprint(pointer, loop, access_block)
        self._footprints[key] = result
        return result

    def _compute_footprint(self, pointer, loop, access_block):
        expr = self.scev.get(pointer)
        linear = self._linearize(expr, loop, access_block)
        if linear is None:
            return None
        base = _trace_to_base(pointer)
        base_term = SCEVUnknown(base)
        coeff = linear.terms.pop(base_term, 0)
        if coeff != 1:
            return None  # base pointer scaled or missing: not a plain offset
        for term in linear.terms:
            if isinstance(term, SCEVUnknown) and getattr(
                    term.value, "type", None) is not None \
                    and term.value.type.is_pointer:
                return None  # second pointer in the subscript: give up
        return linear

    def _linearize(self, expr, loop, access_block):
        """Decompose ``expr`` into a :class:`_Linear` w.r.t. ``loop``:
        constant + symbolic loop-invariant terms + a constant stride per
        iteration of ``loop`` + a bounded span from inner-loop IVs.
        Returns ``None`` when the expression does not fit the form (or any
        constant is large enough to have wrapped in i32 arithmetic)."""
        if isinstance(expr, SCEVConstant):
            if abs(expr.value) >= _WRAP_LIMIT:
                return None
            return _Linear(const=expr.value)
        if isinstance(expr, SCEVAddRec):
            return self._linearize_addrec(expr, loop, access_block)
        if isinstance(expr, SCEVAdd):
            total = _Linear()
            for op in expr.operands:
                part = self._linearize(op, loop, access_block)
                if part is None:
                    return None
                total.const += part.const
                total.stride += part.stride
                total.span_lo += part.span_lo
                total.span_hi += part.span_hi
                for term, coeff in part.terms.items():
                    merged = total.terms.get(term, 0) + coeff
                    if merged:
                        total.terms[term] = merged
                    else:
                        total.terms.pop(term, None)
            if (abs(total.const) >= _WRAP_LIMIT
                    or abs(total.stride) >= _WRAP_LIMIT
                    or abs(total.span_lo) >= _WRAP_LIMIT
                    or abs(total.span_hi) >= _WRAP_LIMIT):
                return None
            return total
        if isinstance(expr, (SCEVUnknown, SCEVMul)):
            if expr.is_invariant_in(loop):
                return _Linear(terms={expr: 1})
            return None
        return None  # COULD_NOT_COMPUTE, markers, anything else

    def _linearize_addrec(self, expr, loop, access_block):
        if expr.loop is loop:
            if not isinstance(expr.step, SCEVConstant):
                return None
            if abs(expr.step.value) >= _WRAP_LIMIT:
                return None
            inner = self._linearize(expr.start, loop, access_block)
            if inner is None or inner.stride != 0:
                return None
            inner.stride = expr.step.value
            return inner
        if loop.contains_loop(expr.loop):
            # Inner-loop IV: its contribution within one iteration of
            # ``loop`` spans [0, step * max_index]. The addrec index equals
            # the completed latch traversals at evaluation time: body
            # blocks of the inner loop only ever run with index <=
            # trip - 1, while the inner header (the trailing exit check)
            # and any final-value use outside the inner loop can see
            # index == trip. Requires a constant inner trip count.
            if not isinstance(expr.step, SCEVConstant):
                return None
            inner_trip = self._trip(expr.loop)
            if inner_trip is None:
                return None
            max_index = inner_trip
            if (access_block is not None
                    and access_block in expr.loop.blocks
                    and access_block is not expr.loop.header):
                max_index = inner_trip - 1
            extent = expr.step.value * max_index
            if abs(extent) >= _WRAP_LIMIT:
                return None
            outer = self._linearize(expr.start, loop, access_block)
            if outer is None:
                return None
            outer.span_lo += min(0, extent)
            outer.span_hi += max(0, extent)
            return outer
        # Addrec of an outer or disjoint loop: fixed for the whole
        # invocation of ``loop``. Its *start* may still carry the base
        # pointer (``{{A,+,8}<outer>,+,1}<inner>`` seen from the inner
        # loop), so split value = start + {0,+,step}<that-loop>: the start
        # linearizes normally and the iteration-dependent remainder stays
        # one symbolic term both accesses of a pair share structurally.
        start = self._linearize(expr.start, loop, access_block)
        if start is None:
            return None
        offset_term = SCEVAddRec(ZERO, expr.step, expr.loop)
        start.terms[offset_term] = start.terms.get(offset_term, 0) + 1
        return start

    # -- subscript tests ----------------------------------------------------------

    def _subscript_test(self, fp1, fp2, trip, first, second):
        """ZIV / strong-SIV / GCD / Banerjee over two same-base footprints.

        ``fp1`` covers ``c1 + b1·i + [lo1, hi1]`` at iteration ``i``; ``fp2``
        covers ``c2 + b2·j + [lo2, hi2]`` at iteration ``j``. A loop-carried
        dependence needs overlap with ``k = j - i ≠ 0``; when the trip count
        is known, additionally ``|k| <= trip``.
        """
        delta_terms = dict(fp1.terms)
        for term, coeff in fp2.terms.items():
            merged = delta_terms.get(term, 0) - coeff
            if merged:
                delta_terms[term] = merged
            else:
                delta_terms.pop(term, None)
        if delta_terms:
            return ("may",
                    f"{first.label} and {second.label} differ by a symbolic "
                    f"offset")
        delta = fp2.const - fp1.const  # f2 minus f1 at equal indices
        if abs(delta) >= _WRAP_LIMIT:
            return ("may", f"{first.label} offset outside the i32 range")
        b1, b2 = fp1.stride, fp2.stride
        # Overlap condition: b2·j - b1·i ∈ [L, U].
        lower = fp1.span_lo - fp2.span_hi - delta
        upper = fp1.span_hi - fp2.span_lo - delta
        exact = (fp1.span_lo == fp1.span_hi == 0
                 and fp2.span_lo == fp2.span_hi == 0)
        if trip is not None and (
                (max(abs(b1), abs(b2)) * (trip + 1)
                 + max(abs(fp1.span_lo), abs(fp1.span_hi))
                 + max(abs(fp2.span_lo), abs(fp2.span_hi))) >= _WRAP_LIMIT):
            return ("may", f"{first.label} index range may wrap i32")
        if b1 == 0 and b2 == 0:
            # ZIV: loop-invariant addresses.
            if lower <= 0 <= upper:
                if exact:
                    return ("lcd", 1)  # same cell every iteration
                return ("may",
                        f"{first.label} and {second.label} revisit "
                        f"overlapping invariant storage")
            return ("independent",)
        if b1 == b2:
            # Strong SIV: equal strides, so b·k ∈ [L, U] with k = j - i.
            solutions = _stride_multiples_in(lower, upper, b1)
            if solutions is None:
                return ("may",
                        f"{first.label} strong-SIV bounds degenerate")
            k_min, k_max = solutions
            if trip is not None:
                # Accesses execute in the body only: indices span
                # [0, trip-1], so distances span at most trip-1.
                k_min = max(k_min, -(trip - 1))
                k_max = min(k_max, trip - 1)
            if k_min > k_max or (k_min == k_max == 0):
                return ("independent",)
            if exact and k_min == k_max:
                return ("lcd", abs(k_min))
            return ("may",
                    f"{first.label} and {second.label} collide at several "
                    f"possible distances")
        # Weak SIV / different strides: GCD + Banerjee range test.
        g = gcd(abs(b1), abs(b2))
        if g:
            first_multiple = -(-lower // g) * g  # smallest multiple >= lower
            if first_multiple > upper:
                return ("independent",)
        if trip is not None:
            # Banerjee bounds: i, j ∈ [0, trip-1] — loads and stores run
            # in the body only, never at the trailing header evaluation.
            last = trip - 1
            reachable_lo = min(0, b2 * last) - max(0, b1 * last)
            reachable_hi = max(0, b2 * last) - min(0, b1 * last)
            if reachable_hi < lower or reachable_lo > upper:
                return ("independent",)
        return ("may",
                f"{first.label} and {second.label} have unequal strides "
                f"({b1} vs {b2})")


def _shift_footprint(fp, front):
    """``fp`` advanced by ``front`` iterations (``None`` if it may wrap)."""
    const = fp.const + fp.stride * front
    if abs(const) >= _WRAP_LIMIT:
        return None
    return _Linear(const=const, terms=dict(fp.terms), stride=fp.stride,
                   span_lo=fp.span_lo, span_hi=fp.span_hi)


def _stride_multiples_in(lower, upper, stride):
    """Integer ``k`` range with ``stride·k ∈ [lower, upper]`` (or ``None``
    if unbounded — stride 0 inside a nonempty interval)."""
    if stride == 0:
        if lower <= 0 <= upper:
            return None
        return (1, 0)  # empty range
    if stride > 0:
        return (-(-lower // stride), upper // stride)
    return (-(-upper // stride), lower // stride)


def _dedupe(reasons, cap=8):
    seen = []
    for reason in reasons:
        if reason not in seen:
            seen.append(reason)
    seen.sort()
    if len(seen) > cap:
        seen = seen[:cap] + [f"... and {len(seen) - cap} more"]
    return seen


# -- canonical loop shape ---------------------------------------------------------

# Division/remainder opcodes trap on a zero divisor; restructuring passes
# must not move one relative to other traps unless the divisor is a
# provably nonzero constant.
TRAPPING_DIV_OPS = ("sdiv", "srem", "udiv", "urem", "fdiv")


def is_nonzero_constant(value):
    return isinstance(value, Constant) and value.value != 0


class LoopShape:
    """A canonical counted loop: preheader -> header (phis + compare +
    CondBr) -> straight-line body chain -> latch -> header, with one
    dedicated exit block. The only shape the transform passes restructure."""

    __slots__ = ("preheader", "header", "compare", "body_entry", "chain",
                 "latch", "exit_block")

    def __init__(self, preheader, header, compare, body_entry, chain, latch,
                 exit_block):
        self.preheader = preheader
        self.header = header
        self.compare = compare
        self.body_entry = body_entry
        self.chain = chain
        self.latch = latch
        self.exit_block = exit_block


def canonical_loop_shape(loop, cfg):
    """``(LoopShape, None)`` when the loop is canonical, else
    ``(None, reason)``. Mirrors the vec planner's shape screen so every
    loop the transform tier restructures is one the other tiers already
    know how to reason about."""
    if loop.subloops:
        return None, "contains an inner loop"
    preheader = loop.preheader(cfg)
    if preheader is None:
        return None, "no preheader"
    latch = loop.single_latch()
    if latch is None:
        return None, f"{len(loop.latches)} latches (multi-latch bailout)"
    if not isinstance(preheader.terminator, Br):
        return None, "guarded preheader"
    header = loop.header
    if latch is header:
        return None, "body folded into the header"
    instructions = header.instructions
    compare = None
    for position, instruction in enumerate(instructions):
        if isinstance(instruction, Phi):
            if compare is not None:
                return None, "complex header"
            continue
        if isinstance(instruction, ICmp):
            if compare is not None or position != len(instructions) - 2:
                return None, "complex header"
            compare = instruction
            continue
        if isinstance(instruction, CondBr):
            if compare is None or instruction.condition is not compare:
                return None, "complex header"
            continue
        return None, "complex header"
    if compare is None or not isinstance(header.terminator, CondBr):
        return None, "complex header"
    successors = header.terminator.successors()
    inside = [s for s in successors if s in loop.blocks]
    outside = [s for s in successors if s not in loop.blocks]
    if len(inside) != 1 or len(outside) != 1:
        return None, "complex header"
    if set(loop.exiting_blocks(cfg)) != {header}:
        return None, "multiple exiting blocks"
    exit_block = outside[0]
    if cfg.predecessors(exit_block) != [header]:
        return None, "shared exit block"
    body_entry = inside[0]
    chain = []
    seen = set()
    block = body_entry
    while True:
        if block is header or id(block) in seen:
            return None, "control flow in body"
        seen.add(id(block))
        chain.append(block)
        terminator = block.terminator
        if not isinstance(terminator, Br):
            return None, "control flow in body"
        if block is latch:
            if terminator.target is not header:
                return None, "control flow in body"
            break
        block = terminator.target
        if block not in loop.blocks:
            return None, "control flow in body"
    if set(chain) | {header} != loop.blocks:
        return None, "control flow in body"
    for block in chain:
        for instruction in block.instructions:
            if isinstance(instruction, Phi):
                return None, "phi in body"
    return LoopShape(preheader, header, compare, body_entry, chain, latch,
                     exit_block), None


# -- statement-level dependence graph ---------------------------------------------


class StatementGraph:
    """Statement-level dependence graph of one canonical loop body.

    Nodes are the non-terminator instructions of the body chain in program
    order. A forward edge ``i -> j`` means statement ``j`` must not run in
    an *earlier* distributed loop than ``i``; a bidirectional pair means
    the two statements must stay in the same loop (a dependence cycle).
    ``serial`` marks statements that carry an iteration-ordering constraint
    (a proven or unrefuted cross-iteration memory dependence, or a
    non-computable register recurrence) — the statements fission wants to
    quarantine away from the DOALL-able remainder.

    ``failure`` is ``None`` when the graph was built, else the reason the
    loop cannot be modeled at statement level.
    """

    __slots__ = ("loop", "shape", "statements", "edges", "serial",
                 "phi_groups", "failure")

    def __init__(self, loop, shape=None, statements=(), edges=(),
                 serial=(), phi_groups=(), failure=None):
        self.loop = loop
        self.shape = shape
        self.statements = list(statements)
        self.edges = [set(successors) for successors in edges]
        self.serial = set(serial)
        self.phi_groups = list(phi_groups)  # (phi, reg_class, member set)
        self.failure = failure

    def sccs(self):
        """Strongly connected components, deterministic (Tarjan, ordered
        neighbor expansion), each sorted by statement index."""
        count = len(self.statements)
        index = [None] * count
        low = [0] * count
        onstack = [False] * count
        stack = []
        result = []
        counter = 0
        for root in range(count):
            if index[root] is not None:
                continue
            index[root] = low[root] = counter
            counter += 1
            stack.append(root)
            onstack[root] = True
            work = [(root, iter(sorted(self.edges[root])))]
            while work:
                node, successors = work[-1]
                advanced = False
                for succ in successors:
                    if index[succ] is None:
                        index[succ] = low[succ] = counter
                        counter += 1
                        stack.append(succ)
                        onstack[succ] = True
                        work.append((succ, iter(sorted(self.edges[succ]))))
                        advanced = True
                        break
                    if onstack[succ]:
                        low[node] = min(low[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        onstack[member] = False
                        component.append(member)
                        if member == node:
                            break
                    result.append(sorted(component))
        result.sort(key=lambda component: component[0])
        return result

    def fission_groups(self):
        """Partition into distributable groups: a topological order of the
        SCC condensation with consecutive same-kind (serial / parallel)
        components merged. Returns ``[(sorted_statement_indices,
        is_serial)]`` in execution order, or ``[]`` when the loop is not
        worth distributing (fewer than two groups)."""
        if self.failure is not None or not self.statements:
            return []
        components = self.sccs()
        if len(components) < 2:
            return []
        component_of = {}
        for ci, component in enumerate(components):
            for member in component:
                component_of[member] = ci
        successors = [set() for _ in components]
        indegree = [0] * len(components)
        for i in range(len(self.statements)):
            for j in self.edges[i]:
                a, b = component_of[i], component_of[j]
                if a != b and b not in successors[a]:
                    successors[a].add(b)
                    indegree[b] += 1
        # Kahn with a min-index priority: deterministic, and valid even
        # when components interleave in program order.
        ready = sorted(
            (ci for ci in range(len(components)) if indegree[ci] == 0),
            key=lambda ci: components[ci][0])
        order = []
        while ready:
            ci = ready.pop(0)
            order.append(ci)
            changed = False
            for succ in successors[ci]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
                    changed = True
            if changed:
                ready.sort(key=lambda ci: components[ci][0])
        if len(order) != len(components):  # defensive: cycle across SCCs
            return []
        groups = []
        for ci in order:
            component = components[ci]
            is_serial = any(member in self.serial for member in component)
            if groups and groups[-1][1] == is_serial:
                groups[-1][0].extend(component)
            else:
                groups.append((list(component), is_serial))
        return [(sorted(members), is_serial) for members, is_serial in groups]

    def describe(self):
        if self.failure is not None:
            return f"no statement graph: {self.failure}"
        kinds = ["serial" if i in self.serial else "parallel"
                 for i in range(len(self.statements))]
        return (f"{len(self.statements)} statements "
                f"({kinds.count('serial')} serial, "
                f"{kinds.count('parallel')} parallel)")


# -- module driver ---------------------------------------------------------------


def analyze_module(module, loop_infos=None):
    """``{loop_id: LoopDependence}`` for every loop in the module.

    ``loop_infos`` may carry precomputed per-function :class:`LoopInfo`
    objects keyed by function name (as ``ModuleStaticInfo`` holds them) so
    loop identities line up with the instrumentation's.
    """
    summaries = module_memory_summaries(module)
    verdicts = {}
    for function in module.defined_functions():
        loop_info = None
        if loop_infos is not None:
            loop_info = loop_infos.get(function.name)
        analysis = DependenceAnalysis(
            function, loop_info=loop_info, summaries=summaries)
        for loop in analysis.loop_info.all_loops():
            verdicts[loop.loop_id] = analysis.loop_verdict(loop)
    return verdicts
