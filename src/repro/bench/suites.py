"""Suite registry and cached benchmark runner.

Five suites mirror the paper's benchmark groups:

* non-numeric: ``specint2000``, ``specint2006``
* numeric: ``eembc``, ``specfp2000``, ``specfp2006``

Profiling a benchmark is the expensive step (one instrumented interpreter
run); this module memoizes the :class:`~repro.core.framework.Loopapalooza`
instance per benchmark so the figure harnesses and pytest benchmarks share
profiles within a process.
"""

from __future__ import annotations

from ..core.framework import Loopapalooza
from ..errors import FrameworkError
from .programs import eembc, specfp2000, specfp2006, specint2000, specint2006

NON_NUMERIC_SUITES = ("specint2000", "specint2006")
NUMERIC_SUITES = ("eembc", "specfp2000", "specfp2006")
ALL_SUITES = NON_NUMERIC_SUITES + NUMERIC_SUITES

_SUITE_MODULES = {
    "eembc": eembc,
    "specfp2000": specfp2000,
    "specfp2006": specfp2006,
    "specint2000": specint2000,
    "specint2006": specint2006,
}


def suite_programs(suite):
    """The :class:`BenchmarkProgram` list of one suite."""
    try:
        module = _SUITE_MODULES[suite]
    except KeyError:
        raise FrameworkError(
            f"unknown suite {suite!r} (choose from {sorted(_SUITE_MODULES)})"
        ) from None
    return module.programs()


def all_programs():
    """Every benchmark across every suite."""
    result = []
    for suite in ALL_SUITES:
        result.extend(suite_programs(suite))
    return result


def find_program(full_name):
    """Look up ``suite/name``."""
    suite, _, name = full_name.partition("/")
    for program in suite_programs(suite):
        if program.name == name:
            return program
    raise FrameworkError(f"unknown benchmark {full_name!r}")


class SuiteRunner:
    """Compiles, profiles, and evaluates benchmarks with caching."""

    def __init__(self, fuel=50_000_000):
        self.fuel = fuel
        self._instances = {}

    def instance(self, program):
        """The (cached) Loopapalooza instance for one benchmark."""
        key = program.full_name
        lp = self._instances.get(key)
        if lp is None:
            lp = Loopapalooza(program.source, name=key, fuel=self.fuel)
            lp.profile()
            self._instances[key] = lp
        return lp

    def evaluate(self, program, config):
        return self.instance(program).evaluate(config)

    def evaluate_suite(self, suite, config):
        """``{benchmark_name: EvaluationResult}`` for one configuration."""
        return {
            program.name: self.evaluate(program, config)
            for program in suite_programs(suite)
        }

    def suite_speedups(self, suite, config):
        return {
            name: result.speedup
            for name, result in self.evaluate_suite(suite, config).items()
        }

    def suite_coverages(self, suite, config):
        return {
            name: result.coverage
            for name, result in self.evaluate_suite(suite, config).items()
        }


_DEFAULT_RUNNER = None


def default_runner():
    """Process-wide shared runner (profiles are expensive; share them)."""
    global _DEFAULT_RUNNER
    if _DEFAULT_RUNNER is None:
        _DEFAULT_RUNNER = SuiteRunner()
    return _DEFAULT_RUNNER
