"""Suite registry, cached benchmark runner, and the parallel sweep engine.

Five suites mirror the paper's benchmark groups:

* non-numeric: ``specint2000``, ``specint2006``
* numeric: ``eembc``, ``specfp2000``, ``specfp2006``

Profiling a benchmark is the expensive step (one instrumented interpreter
run). Three layers of caching keep it off the iteration loop:

1. the :class:`~repro.core.framework.Loopapalooza` instance per benchmark is
   memoized per runner, so profiles are shared within a process;
2. every profiling run is persisted in the on-disk
   :class:`~repro.runtime.profile_store.ProfileStore` (keyed by source +
   fuel + schema versions), so warm starts — a second ``pytest`` run, a
   re-run of ``examples/full_paper_run.py`` — skip re-profiling entirely;
3. evaluation results are memoized per ``(benchmark, configuration)``, so
   the figure harnesses never evaluate the same cell twice (Fig. 4 and
   Fig. 5 reuse the Fig. 2/3 sweep).

:meth:`SuiteRunner.evaluate_many` adds the multiprocess sweep: the
(benchmark x configuration) grid is chunked *by benchmark* so each worker
materializes one profile (from the shared disk store when warm) and
evaluates every configuration against it, amortizing deserialization.
Results are merged in input order — process-pool completion order never
leaks into the aggregation, so the parallel sweep is bit-identical to the
serial one (enforced by ``tests/test_sweep_determinism.py``).

Fault tolerance: the sweep survives worker crashes, hangs, and poisoned
tasks instead of aborting. Failed tasks are retried with exponential
backoff up to ``retries`` times; a task that keeps failing is
*quarantined* — degraded to the in-process serial path — so one bad
benchmark cannot kill a long run. Repeated pool collapses
(``_CRASH_LOOP_LIMIT`` consecutive broken pools) trip crash-loop
detection and degrade the whole remaining sweep to serial. When a
:class:`~repro.runtime.telemetry.RunTelemetry` is attached, every
completed task is checkpointed (with its serialized results) to the run's
JSONL ledger, so an interrupted sweep resumes via
``RunTelemetry.resume(run_id)`` and skips completed cells.
"""

from __future__ import annotations

import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError

from ..core.config import LPConfig
from ..core.framework import Loopapalooza
from ..errors import FrameworkError
from ..runtime.faults import FAULT_SENTINEL_ENV, maybe_inject_fault
from ..runtime.profile_store import ProfileStore, default_store
from .programs import eembc, specfp2000, specfp2006, specint2000, specint2006

#: Consecutive broken process pools before the sweep stops rebuilding pools
#: and degrades every remaining task to the serial path.
_CRASH_LOOP_LIMIT = 3

#: Exponential-backoff schedule between retry rounds (seconds).
_BACKOFF_BASE_S = 0.25
_BACKOFF_CAP_S = 5.0

# FAULT_SENTINEL_ENV is re-exported from runtime.faults (the sweep engine
# and the parallel execution tier share one fault-injection mechanism).

NON_NUMERIC_SUITES = ("specint2000", "specint2006")
NUMERIC_SUITES = ("eembc", "specfp2000", "specfp2006")
ALL_SUITES = NON_NUMERIC_SUITES + NUMERIC_SUITES

_SUITE_MODULES = {
    "eembc": eembc,
    "specfp2000": specfp2000,
    "specfp2006": specfp2006,
    "specint2000": specint2000,
    "specint2006": specint2006,
}


def suite_programs(suite):
    """The :class:`BenchmarkProgram` list of one suite."""
    try:
        module = _SUITE_MODULES[suite]
    except KeyError:
        raise FrameworkError(
            f"unknown suite {suite!r} (choose from {sorted(_SUITE_MODULES)})"
        ) from None
    return module.programs()


def all_programs():
    """Every benchmark across every suite."""
    result = []
    for suite in ALL_SUITES:
        result.extend(suite_programs(suite))
    return result


def find_program(full_name):
    """Look up ``suite/name``."""
    suite, _, name = full_name.partition("/")
    for program in suite_programs(suite):
        if program.name == name:
            return program
    raise FrameworkError(f"unknown benchmark {full_name!r}")


def _as_config(config):
    return LPConfig.parse(config) if isinstance(config, str) else config


class SuiteRunner:
    """Compiles, profiles, and evaluates benchmarks with caching.

    ``cache_dir`` selects a profile-store location; by default the shared
    store under ``~/.cache/repro/profiles`` is used (``store=False``
    disables persistence, ``store=<ProfileStore>`` injects one).
    """

    def __init__(self, fuel=50_000_000, cache_dir=None, store=None):
        self.fuel = fuel
        if store is False:
            self.store = None
        elif store is not None:
            self.store = store
        elif cache_dir is not None:
            self.store = ProfileStore(cache_dir)
        else:
            self.store = default_store()
        self._instances = {}
        self._results = {}  # (full_name, config.name) -> EvaluationResult

    def instance(self, program):
        """The (cached) Loopapalooza instance for one benchmark."""
        key = program.full_name
        lp = self._instances.get(key)
        if lp is None:
            lp = Loopapalooza(
                program.source, name=key, fuel=self.fuel, store=self.store
            )
            lp.profile()
            self._instances[key] = lp
        return lp

    @property
    def profiles_measured(self):
        """How many instances actually re-profiled (cache misses)."""
        return sum(
            1 for lp in self._instances.values() if not lp.profiled_from_cache
        )

    def evaluate(self, program, config):
        config = _as_config(config)
        key = (program.full_name, config.name)
        result = self._results.get(key)
        if result is None:
            result = self.instance(program).evaluate(config)
            self._results[key] = result
        return result

    # -- the parallel sweep engine ---------------------------------------------

    def evaluate_many(self, programs, configs, jobs=None, *, telemetry=None,
                      task_timeout=None, retries=2):
        """Evaluate the full (program x config) grid; returns
        ``{program.full_name: {config.name: EvaluationResult}}`` in input
        order.

        ``jobs > 1`` fans the grid out over a process pool, chunked by
        benchmark: one task per program, each evaluating every
        configuration against a single materialized profile. Workers share
        the runner's on-disk profile store, so a cold parallel sweep also
        populates the cache for the parent process (e.g. the Table-I census
        that follows never re-profiles). ``jobs=1`` is the documented
        serial fast path: it shares this runner's in-process caches and
        spawns no pool (identical to ``jobs=None``); ``jobs < 1`` is an
        error.

        Fault handling (pool path only): a task that raises, times out
        (``task_timeout`` seconds per result wait), or dies with its worker
        is retried up to ``retries`` times with exponential backoff;
        beyond that it is quarantined and evaluated on the serial path
        instead of aborting the sweep. ``telemetry``
        (a :class:`~repro.runtime.telemetry.RunTelemetry`) checkpoints
        every completed task to the run ledger and restores
        previously-completed cells on a resumed run.
        """
        programs = list(programs)
        configs = [_as_config(c) for c in configs]
        if jobs is not None and jobs < 1:
            raise FrameworkError(
                f"jobs must be a positive worker count, got {jobs!r}"
            )
        config_names = [config.name for config in configs]
        if telemetry is not None:
            telemetry.sweep_started(len(programs), len(configs), jobs)
            self._restore_from_ledger(programs, config_names, telemetry)
        quarantined = {}
        if jobs is not None and jobs > 1 and programs:
            quarantined = self._sweep_parallel(
                programs, configs, jobs, telemetry, task_timeout, retries
            )
        grid = {}
        for program in programs:
            full_name = program.full_name
            missing = [
                config for config in configs
                if (full_name, config.name) not in self._results
            ]
            if missing:
                path = (
                    "serial-fallback" if full_name in quarantined else "serial"
                )
                start = time.perf_counter()
                for config in missing:
                    self.evaluate(program, config)
                if telemetry is not None:
                    lp = self._instances[full_name]
                    telemetry.task_done(
                        full_name,
                        {
                            config.name: self._results[(full_name, config.name)]
                            for config in missing
                        },
                        wall_s=time.perf_counter() - start,
                        cache_hit=lp.profiled_from_cache,
                        instructions=lp.profile().total_cost,
                        path=path,
                    )
            grid[full_name] = {
                config.name: self._results[(full_name, config.name)]
                for config in configs
            }
        return grid

    def _restore_from_ledger(self, programs, config_names, telemetry):
        """Resume support: adopt every completed task the ledger covers."""
        for program in programs:
            full_name = program.full_name
            needed = [
                name for name in config_names
                if (full_name, name) not in self._results
            ]
            if not needed:
                continue
            restored = telemetry.completed_results(full_name, needed)
            if restored is None:
                continue
            for config_name, result in restored.items():
                self._results[(full_name, config_name)] = result
            telemetry.task_resumed(full_name)

    def _sweep_parallel(self, programs, configs, jobs, telemetry,
                        task_timeout, retries):
        """Round-based fault-tolerant fan-out; returns the quarantine map
        (``{full_name: reason}``) of tasks degraded to the serial path."""
        config_names = [config.name for config in configs]
        cache_root = str(self.store.root) if self.store is not None else None
        pending = [
            program.full_name
            for program in programs
            if any(
                (program.full_name, name) not in self._results
                for name in config_names
            )
        ]
        quarantined = {}
        if not pending:
            return quarantined
        attempts = dict.fromkeys(pending, 0)
        pool_breaks = 0
        remaining = list(pending)
        round_no = 0
        while remaining:
            if round_no > 0:
                time.sleep(min(
                    _BACKOFF_BASE_S * (2 ** (round_no - 1)), _BACKOFF_CAP_S
                ))
            failed = []
            pool_broken = False
            abandoned = False
            pool = ProcessPoolExecutor(max_workers=jobs)
            try:
                futures = []
                for full_name in remaining:
                    try:
                        futures.append((full_name, pool.submit(
                            _sweep_worker, full_name, config_names,
                            self.fuel, cache_root,
                        )))
                    except BrokenExecutor:
                        # An abrupt worker death can break the pool while
                        # submissions are still in flight, in which case
                        # submit itself raises; everything not yet
                        # submitted fails over to the retry rounds.
                        pool_broken = True
                        for missed in remaining[len(futures):]:
                            attempts[missed] += 1
                            failed.append((missed, "worker-crash"))
                        break
                # Collect in submission (= input) order: pool completion
                # order must never influence the result structure.
                for full_name, future in futures:
                    attempts[full_name] += 1
                    try:
                        name, results, meta = future.result(
                            timeout=task_timeout
                        )
                    except FuturesTimeoutError:
                        abandoned = True
                        failed.append((full_name, "timeout"))
                    except BrokenExecutor:
                        pool_broken = True
                        failed.append((full_name, "worker-crash"))
                    except Exception as exc:
                        failed.append(
                            (full_name, f"error:{type(exc).__name__}")
                        )
                    else:
                        for config_name, result in results.items():
                            self._results[(name, config_name)] = result
                        if telemetry is not None:
                            telemetry.task_done(
                                name, results,
                                attempt=attempts[name],
                                wall_s=meta["wall_s"],
                                cache_hit=meta["cache_hit"],
                                instructions=meta["instructions"],
                                path="pool",
                            )
            finally:
                # A hung task cannot be killed through the executor API:
                # abandon the pool without waiting (the stray worker dies
                # with its task) and rebuild for the retry round.
                pool.shutdown(
                    wait=not (abandoned or pool_broken), cancel_futures=True
                )
            if pool_broken:
                pool_breaks += 1
            else:
                pool_breaks = 0
            crash_loop = pool_breaks >= _CRASH_LOOP_LIMIT
            next_round = []
            for full_name, reason in failed:
                if crash_loop:
                    quarantined[full_name] = "crash-loop"
                elif attempts[full_name] > retries:
                    quarantined[full_name] = reason
                else:
                    if telemetry is not None:
                        telemetry.task_retry(
                            full_name, attempts[full_name], reason
                        )
                    next_round.append(full_name)
                    continue
                if telemetry is not None:
                    telemetry.task_quarantined(
                        full_name, quarantined[full_name]
                    )
            remaining = next_round
            round_no += 1
        return quarantined

    def evaluate_suite(self, suite, config):
        """``{benchmark_name: EvaluationResult}`` for one configuration."""
        return {
            program.name: self.evaluate(program, config)
            for program in suite_programs(suite)
        }

    def suite_speedups(self, suite, config):
        return {
            name: result.speedup
            for name, result in self.evaluate_suite(suite, config).items()
        }

    def suite_coverages(self, suite, config):
        return {
            name: result.coverage
            for name, result in self.evaluate_suite(suite, config).items()
        }


def _maybe_inject_fault():
    """Kill this worker when the fault-injection smoke hook is armed.

    ``always`` kills every task (quarantine path); a path kills exactly one
    task fleet-wide — the sentinel file is created with ``O_EXCL`` so
    concurrent workers race for a single SIGKILL (retry path). Shared with
    the parallel execution tier via :mod:`repro.runtime.faults`.
    """
    maybe_inject_fault(FAULT_SENTINEL_ENV)


def _sweep_worker(full_name, config_names, fuel, cache_root):
    """Process-pool task: one benchmark, every configuration.

    Runs in a worker process. The profile comes from the shared disk store
    when warm (deserialized once per worker task, not once per config);
    a cold worker profiles and *stores*, so concurrent workers and the
    parent all converge on one profiling run per benchmark. Returns
    ``(full_name, results, meta)`` where ``meta`` feeds the run telemetry.
    """
    _maybe_inject_fault()
    start = time.perf_counter()
    program = find_program(full_name)
    store = ProfileStore(cache_root) if cache_root is not None else None
    lp = Loopapalooza(program.source, name=full_name, fuel=fuel, store=store)
    results = lp.evaluate_many(config_names)
    meta = {
        "wall_s": time.perf_counter() - start,
        "cache_hit": lp.profiled_from_cache,
        "instructions": lp.profile().total_cost,
    }
    return full_name, results, meta


_DEFAULT_RUNNER = None


def default_runner():
    """Process-wide shared runner (profiles are expensive; share them)."""
    global _DEFAULT_RUNNER
    if _DEFAULT_RUNNER is None:
        _DEFAULT_RUNNER = SuiteRunner()
    return _DEFAULT_RUNNER
