"""Suite registry, cached benchmark runner, and the parallel sweep engine.

Five suites mirror the paper's benchmark groups:

* non-numeric: ``specint2000``, ``specint2006``
* numeric: ``eembc``, ``specfp2000``, ``specfp2006``

Profiling a benchmark is the expensive step (one instrumented interpreter
run). Three layers of caching keep it off the iteration loop:

1. the :class:`~repro.core.framework.Loopapalooza` instance per benchmark is
   memoized per runner, so profiles are shared within a process;
2. every profiling run is persisted in the on-disk
   :class:`~repro.runtime.profile_store.ProfileStore` (keyed by source +
   fuel + schema versions), so warm starts — a second ``pytest`` run, a
   re-run of ``examples/full_paper_run.py`` — skip re-profiling entirely;
3. evaluation results are memoized per ``(benchmark, configuration)``, so
   the figure harnesses never evaluate the same cell twice (Fig. 4 and
   Fig. 5 reuse the Fig. 2/3 sweep).

:meth:`SuiteRunner.evaluate_many` adds the multiprocess sweep: the
(benchmark x configuration) grid is chunked *by benchmark* so each worker
materializes one profile (from the shared disk store when warm) and
evaluates every configuration against it, amortizing deserialization.
Results are merged in input order — process-pool completion order never
leaks into the aggregation, so the parallel sweep is bit-identical to the
serial one (enforced by ``tests/test_sweep_determinism.py``).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

from ..core.config import LPConfig
from ..core.framework import Loopapalooza
from ..errors import FrameworkError
from ..runtime.profile_store import ProfileStore, default_store
from .programs import eembc, specfp2000, specfp2006, specint2000, specint2006

NON_NUMERIC_SUITES = ("specint2000", "specint2006")
NUMERIC_SUITES = ("eembc", "specfp2000", "specfp2006")
ALL_SUITES = NON_NUMERIC_SUITES + NUMERIC_SUITES

_SUITE_MODULES = {
    "eembc": eembc,
    "specfp2000": specfp2000,
    "specfp2006": specfp2006,
    "specint2000": specint2000,
    "specint2006": specint2006,
}


def suite_programs(suite):
    """The :class:`BenchmarkProgram` list of one suite."""
    try:
        module = _SUITE_MODULES[suite]
    except KeyError:
        raise FrameworkError(
            f"unknown suite {suite!r} (choose from {sorted(_SUITE_MODULES)})"
        ) from None
    return module.programs()


def all_programs():
    """Every benchmark across every suite."""
    result = []
    for suite in ALL_SUITES:
        result.extend(suite_programs(suite))
    return result


def find_program(full_name):
    """Look up ``suite/name``."""
    suite, _, name = full_name.partition("/")
    for program in suite_programs(suite):
        if program.name == name:
            return program
    raise FrameworkError(f"unknown benchmark {full_name!r}")


def _as_config(config):
    return LPConfig.parse(config) if isinstance(config, str) else config


class SuiteRunner:
    """Compiles, profiles, and evaluates benchmarks with caching.

    ``cache_dir`` selects a profile-store location; by default the shared
    store under ``~/.cache/repro/profiles`` is used (``store=False``
    disables persistence, ``store=<ProfileStore>`` injects one).
    """

    def __init__(self, fuel=50_000_000, cache_dir=None, store=None):
        self.fuel = fuel
        if store is False:
            self.store = None
        elif store is not None:
            self.store = store
        elif cache_dir is not None:
            self.store = ProfileStore(cache_dir)
        else:
            self.store = default_store()
        self._instances = {}
        self._results = {}  # (full_name, config.name) -> EvaluationResult

    def instance(self, program):
        """The (cached) Loopapalooza instance for one benchmark."""
        key = program.full_name
        lp = self._instances.get(key)
        if lp is None:
            lp = Loopapalooza(
                program.source, name=key, fuel=self.fuel, store=self.store
            )
            lp.profile()
            self._instances[key] = lp
        return lp

    @property
    def profiles_measured(self):
        """How many instances actually re-profiled (cache misses)."""
        return sum(
            1 for lp in self._instances.values() if not lp.profiled_from_cache
        )

    def evaluate(self, program, config):
        config = _as_config(config)
        key = (program.full_name, config.name)
        result = self._results.get(key)
        if result is None:
            result = self.instance(program).evaluate(config)
            self._results[key] = result
        return result

    # -- the parallel sweep engine ---------------------------------------------

    def evaluate_many(self, programs, configs, jobs=None):
        """Evaluate the full (program x config) grid; returns
        ``{program.full_name: {config.name: EvaluationResult}}`` in input
        order.

        ``jobs > 1`` fans the grid out over a process pool, chunked by
        benchmark: one task per program, each evaluating every
        configuration against a single materialized profile. Workers share
        the runner's on-disk profile store, so a cold parallel sweep also
        populates the cache for the parent process (e.g. the Table-I census
        that follows never re-profiles). The serial path (``jobs`` absent
        or 1) shares this runner's in-process caches.
        """
        programs = list(programs)
        configs = [_as_config(c) for c in configs]
        if jobs is not None and jobs > 1 and programs:
            self._sweep_parallel(programs, configs, jobs)
        grid = {}
        for program in programs:
            grid[program.full_name] = {
                config.name: self.evaluate(program, config)
                for config in configs
            }
        return grid

    def _sweep_parallel(self, programs, configs, jobs):
        config_names = [config.name for config in configs]
        cache_root = str(self.store.root) if self.store is not None else None
        pending = [
            program.full_name
            for program in programs
            if any(
                (program.full_name, name) not in self._results
                for name in config_names
            )
        ]
        if not pending:
            return
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                pool.submit(
                    _sweep_worker, full_name, config_names, self.fuel, cache_root
                )
                for full_name in pending
            ]
            # Collect in submission (= input) order: pool completion order
            # must never influence the result structure.
            for future in futures:
                full_name, results = future.result()
                for config_name, result in results.items():
                    self._results[(full_name, config_name)] = result

    def evaluate_suite(self, suite, config):
        """``{benchmark_name: EvaluationResult}`` for one configuration."""
        return {
            program.name: self.evaluate(program, config)
            for program in suite_programs(suite)
        }

    def suite_speedups(self, suite, config):
        return {
            name: result.speedup
            for name, result in self.evaluate_suite(suite, config).items()
        }

    def suite_coverages(self, suite, config):
        return {
            name: result.coverage
            for name, result in self.evaluate_suite(suite, config).items()
        }


def _sweep_worker(full_name, config_names, fuel, cache_root):
    """Process-pool task: one benchmark, every configuration.

    Runs in a worker process. The profile comes from the shared disk store
    when warm (deserialized once per worker task, not once per config);
    a cold worker profiles and *stores*, so concurrent workers and the
    parent all converge on one profiling run per benchmark.
    """
    program = find_program(full_name)
    store = ProfileStore(cache_root) if cache_root is not None else None
    lp = Loopapalooza(program.source, name=full_name, fuel=fuel, store=store)
    results = lp.evaluate_many(config_names)
    return full_name, results


_DEFAULT_RUNNER = None


def default_runner():
    """Process-wide shared runner (profiles are expensive; share them)."""
    global _DEFAULT_RUNNER
    if _DEFAULT_RUNNER is None:
        _DEFAULT_RUNNER = SuiteRunner()
    return _DEFAULT_RUNNER
