"""Loop-throughput kernels: the Fig. 3 numeric benchmarks' DOALL loops,
isolated.

Whole-program tier timings are dominated by the loops the vector tier
*cannot* take (tracked reductions, loop-carried dependences), so they
measure Amdahl's law, not kernel throughput. Each kernel here is one
innermost DOALL loop pattern lifted from a numeric-suite benchmark —
same body shape, same intrinsics — widened until the loop is >99% of the
program's dynamic instructions. ``repro bench --tiers ... --loops`` times
these per backend; the vec-vs-jit geomean over this suite is the
"vector tier throughput on Fig. 3 numeric loops" number recorded in
BENCH_infrastructure.json.

Every kernel must vectorize (plan status "vectorized"), which
tests/test_veccodegen.py enforces, so the suite cannot silently decay
into measuring scalar loops against scalar loops.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Inner trip count. Large enough that kernel setup (trip computation,
#: guard, arange) amortizes to noise; comfortably under the planner's
#: _MAX_VEC_TRIP so every kernel takes the vector path.
TRIP = 1 << 17

#: Outer repetitions: the inner loop re-enters, so per-invocation costs
#: (bookkeeping, cache effects) are averaged over several invocations.
REPS = 4


@dataclass(frozen=True)
class LoopKernel:
    name: str
    derived_from: str  # the fig3 numeric benchmark whose loop this is
    description: str
    source: str


def _program(body, decls, step="i = i + 1", trip=TRIP):
    # The inner bound is a global scalar, so every kernel exercises the
    # runtime-computed trip path (the planner proves the count from the
    # live bound register and guards it).
    return (
        f"int N = {trip};\n"
        f"{decls}\n"
        "int main() { int r; int i;\n"
        f"  for (r = 0; r < {REPS}; r = r + 1) {{\n"
        f"    for (i = 0; i < N; {step}) {{ {body} }}\n"
        "  }\n"
        "  return 0; }\n"
    )


def loop_kernels():
    """The loop-throughput suite, in a stable order."""
    n = TRIP
    return [
        LoopKernel(
            "noise_fill", "specfp2000/swim_like",
            "initialization fill from the deterministic noise intrinsic",
            _program("V[i] = noise_f64(i + r) - 0.5;",
                     f"float V[{n}];"),
        ),
        LoopKernel(
            "stencil_sweep", "specfp2000/swim_like",
            "shallow-water five-point stencil: new grid from old grid",
            _program("W[i] = 0.25 * (U[i - 1] + U[i + 1] + U[i - 64]"
                     " + U[i + 64]) + 0.5 * V[i];",
                     f"float W[{n + 128}]; float U[{n + 128}];"
                     f" float V[{n + 128}];",
                     step="i = i + 1", trip=n).replace(
                         "for (i = 0;", "for (i = 64;"),
        ),
        LoopKernel(
            "match_distance", "specfp2000/art_like",
            "L1 match distance: fabs of an elementwise difference",
            _program("Y[i] = fabs(W[i] - P[i]);",
                     f"float Y[{n}]; float W[{n}]; float P[{n}];"),
        ),
        LoopKernel(
            "clamp_shade", "specfp2000/mesa_like",
            "shading clamp: fmin/fmax pipeline over a lit intensity",
            _program("C[i] = fmin(fmax(L[i] * 0.8 + 0.1, 0.0), 1.0);",
                     f"float C[{n}]; float L[{n}];"),
        ),
        LoopKernel(
            "sparsity_init", "specfp2000/equake_like",
            "sparse-value init: noise from masked indices, index rescale",
            _program("V[i] = noise_f64((i * 69069 + 12345) % 4096) - 0.5;"
                     " C[i] = (i * 69069 + r) % 420;",
                     f"float V[{n}]; int C[{n}];"),
        ),
        LoopKernel(
            "energy_sqrt", "specfp2006/sphinx_like",
            "per-bin magnitude: sqrt over non-negative energies",
            _program("S[i] = sqrt(E[i] * E[i] + 1.0);",
                     f"float S[{n}]; float E[{n}];"),
        ),
        LoopKernel(
            "link_cmul", "specfp2006/milc_like",
            "lattice link update: in-place complex multiply per site",
            _program("float nr = LR[i] * GR[i] - LI[i] * GI[i];"
                     " float ni = LR[i] * GI[i] + LI[i] * GR[i];"
                     " LR[i] = nr; LI[i] = ni;",
                     f"float LR[{n}]; float LI[{n}];"
                     f" float GR[{n}]; float GI[{n}];"),
        ),
        LoopKernel(
            "hash_fill", "eembc/fft_bfly",
            "integer avalanche-hash table fill",
            _program("H[i] = hash_i32(i * 7 + r);",
                     f"int H[{n}];"),
        ),
        LoopKernel(
            "pixel_threshold", "eembc/dither",
            "integer clamp and absolute error per pixel",
            _program("D[i] = imin(imax(P[i] - 128, 0 - 64), 64)"
                     " + iabs(Q[i] - 128);",
                     f"int D[{n}]; int P[{n}]; int Q[{n}];"),
        ),
        LoopKernel(
            "strided_copy", "eembc/matrix",
            "strided scale-copy (stride-2 affine accesses)",
            _program("B[i] = A[i] * 3 + 1;",
                     f"int A[{n * 2}]; int B[{n * 2}];",
                     step="i = i + 2", trip=n * 2),
        ),
    ]


def find_kernel(name):
    for kernel in loop_kernels():
        if kernel.name == name:
            return kernel
    raise KeyError(name)
