"""Tier benchmarking: wall-clock comparison of the execution tiers.

Times plain (uninstrumented) execution on any subset of the four tiers
— ``closure`` (reference interpreter), ``jit`` (scalar block-template
JIT), ``vec`` (vector-enabled JIT), ``par`` (parallel tier: proved-DOALL
chunks on worker processes, TLS elsewhere) — over either the bundled
benchmark programs or the loop-throughput kernel suite
(:mod:`repro.bench.loop_kernels`).  ``repro bench --tiers ...`` is the
CLI face; :func:`bench_row` shapes a result for
``BENCH_infrastructure.json``.

Whole programs measure end-to-end tier overheads (Amdahl-bound: tracked
reductions and LCD loops stay scalar in every tier).  The ``--loops``
kernels isolate proved-DOALL loop bodies, so their vec-vs-jit geomean is
the vector tier's kernel throughput number.
"""

from __future__ import annotations

import time

from ..frontend.codegen import compile_source
from ..interp.interpreter import Interpreter
from ..reporting.stats import geomean

TIERS = ("closure", "jit", "vec", "par")

#: The closure interpreter is ~2 orders slower than the JIT tiers; when
#: it is among the timed tiers, callers may prefer fewer repeats.
DEFAULT_REPEATS = 3


def parse_tiers(text):
    """Validate a ``closure,jit,vec,par`` selection string, keeping order."""
    tiers = tuple(part.strip() for part in text.split(",") if part.strip())
    for tier in tiers:
        if tier not in TIERS:
            raise ValueError(
                f"unknown tier {tier!r} (expected a comma-separated subset "
                f"of {', '.join(TIERS)})"
            )
    if len(tiers) < 2:
        raise ValueError("need at least two tiers to compare")
    return tiers


def time_source(source, tier, repeats=DEFAULT_REPEATS, fuel=2_000_000_000,
                par_workers=None):
    """Best-of-``repeats`` plain execution time, compile excluded.

    Each repeat re-instantiates the interpreter on a pre-compiled module
    so warm code-cache behavior is measured (the cross-run steady state),
    not first-compile latency. ``par_workers`` only affects the ``par``
    tier (worker-pool width; None = auto).
    """
    module = compile_source(source)
    best = float("inf")
    for _ in range(repeats):
        machine = Interpreter(module, fuel=fuel, backend=tier,
                              par_workers=par_workers)
        started = time.perf_counter()
        machine.run("main")
        best = min(best, time.perf_counter() - started)
    return best


def _finish_row(row, tiers):
    baseline = row["times"].get(tiers[0])
    for tier in tiers[1:]:
        if baseline and row["times"].get(tier):
            row["speedups"][f"{tiers[0]}_vs_{tier}"] = round(
                baseline / row["times"][tier], 3
            )
    if "jit" in tiers and "vec" in tiers and row["times"].get("vec"):
        row["speedups"]["jit_vs_vec"] = round(
            row["times"]["jit"] / row["times"]["vec"], 3
        )
    if "jit" in tiers and "par" in tiers and row["times"].get("par"):
        row["speedups"]["jit_vs_par"] = round(
            row["times"]["jit"] / row["times"]["par"], 3
        )
    return row


def bench_loop_kernels(tiers, repeats=DEFAULT_REPEATS, par_workers=None):
    """Time the loop-throughput kernel suite on each tier."""
    from ..interp.veccodegen import vector_decisions
    from .loop_kernels import loop_kernels

    rows = []
    for kernel in loop_kernels():
        decisions = vector_decisions(compile_source(kernel.source))
        row = {
            "name": kernel.name,
            "derived_from": kernel.derived_from,
            "vectorized": any(
                d["status"] == "vectorized" for d in decisions
            ),
            "times": {
                tier: time_source(kernel.source, tier, repeats,
                                  par_workers=par_workers)
                for tier in tiers
            },
            "speedups": {},
        }
        rows.append(_finish_row(row, tiers))
    return {"mode": "loops", "tiers": list(tiers),
            "par_workers": par_workers, "rows": rows}


def bench_programs(tiers, suite=None, repeats=DEFAULT_REPEATS,
                   par_workers=None):
    """Time bundled benchmark programs end-to-end on each tier."""
    from .suites import all_programs, suite_programs

    programs = suite_programs(suite) if suite else all_programs()
    rows = []
    for program in programs:
        row = {
            "name": program.full_name,
            "times": {
                tier: time_source(program.source, tier, repeats,
                                  par_workers=par_workers)
                for tier in tiers
            },
            "speedups": {},
        }
        rows.append(_finish_row(row, tiers))
    return {
        "mode": "programs",
        "suite": suite,
        "tiers": list(tiers),
        "par_workers": par_workers,
        "rows": rows,
    }


def speedup_geomeans(result):
    """Geomean of each speedup column across the result's rows."""
    keys = sorted({key for row in result["rows"] for key in row["speedups"]})
    return {
        key: round(geomean(
            row["speedups"][key] for row in result["rows"]
            if key in row["speedups"]
        ), 3)
        for key in keys
    }


def format_tier_table(result):
    """Human-readable speedup table for a bench result."""
    tiers = result["tiers"]
    lines = []
    header = f"{'benchmark':24s}" + "".join(
        f"{tier + ' (s)':>14s}" for tier in tiers
    )
    speedup_keys = sorted(
        {key for row in result["rows"] for key in row["speedups"]}
    )
    header += "".join(f"{key:>18s}" for key in speedup_keys)
    lines.append(header)
    for row in result["rows"]:
        line = f"{row['name']:24s}" + "".join(
            f"{row['times'][tier]:>14.4f}" for tier in tiers
        )
        line += "".join(
            f"{row['speedups'].get(key, float('nan')):>17.2f}x"
            for key in speedup_keys
        )
        if row.get("vectorized") is False:
            line += "  [NOT VECTORIZED]"
        lines.append(line)
    means = speedup_geomeans(result)
    if means:
        line = f"{'geomean':24s}" + " " * (14 * len(tiers))
        line += "".join(f"{means[key]:>17.2f}x" for key in speedup_keys)
        lines.append(line)
    return "\n".join(lines)


def bench_row(result, repeats):
    """Shape a bench result as a BENCH_infrastructure.json row."""
    return {
        "kind": "tier_bench",
        "mode": result["mode"],
        "suite": result.get("suite"),
        "tiers": result["tiers"],
        "par_workers": result.get("par_workers"),
        "repeats": repeats,
        "rows": result["rows"],
        "geomeans": speedup_geomeans(result),
    }
