"""Benchmark program descriptor.

Each synthetic benchmark is a MiniC source string engineered to exhibit the
dependence character of its SPEC/EEMBC namesake (see DESIGN.md for the
substitution rationale). ``traits`` records which Table-I behaviours the
program was designed to exercise, so tests can assert the design holds.
"""

from __future__ import annotations


class BenchmarkProgram:
    """One synthetic benchmark: source + provenance + design intent."""

    __slots__ = ("name", "suite", "source", "description", "traits")

    def __init__(self, name, suite, source, description, traits=()):
        self.name = name
        self.suite = suite
        self.source = source
        self.description = description
        self.traits = frozenset(traits)

    @property
    def full_name(self):
        return f"{self.suite}/{self.name}"

    def __repr__(self):
        return f"<BenchmarkProgram {self.full_name}>"


# Trait vocabulary (used by tests/test_suite_traits.py):
TRAIT_DOALL = "doall-friendly"             # conflict-free data-parallel loops
TRAIT_REDUCTION = "reduction"              # reduction accumulators in hot loops
TRAIT_PREDICTABLE_LCD = "predictable-lcd"  # non-computable but predictable LCDs
TRAIT_UNPREDICTABLE_LCD = "unpredictable-lcd"
TRAIT_FREQUENT_MEM_LCD = "frequent-mem-lcd"
TRAIT_INFREQUENT_MEM_LCD = "infrequent-mem-lcd"
TRAIT_CALLS = "calls-in-loops"             # user helpers in hot loops
TRAIT_UNSAFE_CALLS = "unsafe-calls"        # rand()/IO in loops (fn3-only)
TRAIT_PDOALL_FRIENDLY = "pdoall-friendly"  # rare conflicts: PDOALL beats HELIX
