"""SpecFP2006-like suite (numeric).

Design intent (paper §IV): FP2006 benefits mostly from ``dep2`` (predictable
recurrences) and ``fn2`` (helpers in hot loops), somewhat less from
``reduc1`` than FP2000. ``450_soplex`` and ``482_sphinx`` are Fig. 4
PDOALL-wins cases: their hot loops conflict rarely, so speculative restarts
beat HELIX's per-iteration synchronization.
"""

from __future__ import annotations

from ..program import (
    BenchmarkProgram,
    TRAIT_CALLS,
    TRAIT_DOALL,
    TRAIT_INFREQUENT_MEM_LCD,
    TRAIT_PDOALL_FRIENDLY,
    TRAIT_PREDICTABLE_LCD,
    TRAIT_REDUCTION,
)

_BWAVES = r"""
// bwaves_like: blast-wave flux stencil, old grid -> new grid, plus a
// stability (CFL) max-reduction.
int N = 56;
float Q[3136]; float QN[3136];
float CHK = 0.0;

int main() {
  int it; int i; int j;
  float cfl = 0.0;
  Q[0] = 0.125;
  for (i = 1; i < N * N; i = i + 1) {
    Q[i] = Q[i - 1] * 0.5 + (noise_f64(i) - 0.5);
  }
  for (it = 0; it < 3; it = it + 1) {
    for (i = 1; i < N - 1; i = i + 1) {
      for (j = 1; j < N - 1; j = j + 1) {
        float flux = Q[(i + 1) * N + j] - Q[(i - 1) * N + j]
                   + Q[i * N + j + 1] - Q[i * N + j - 1];
        QN[i * N + j] = Q[i * N + j] + 0.1 * flux;
      }
    }
    for (i = 1; i < N - 1; i = i + 1) {
      for (j = 1; j < N - 1; j = j + 1) {
        Q[i * N + j] = QN[i * N + j];
      }
    }
  }
  for (i = 0; i < N * N; i = i + 1) {
    if (Q[i] > cfl) { cfl = Q[i]; }
  }
  CHK = cfl;
  return (int)(cfl * 1024.0);
}
"""

_MILC = r"""
// milc_like: lattice link updates through small complex-arithmetic helpers.
int NL = 1400;
float LRE[1400]; float LIM[1400];
float GRE[1400]; float GIM[1400];
float CHK = 0.0;

float cmul_re(float ar, float ai, float br, float bi) {
  return ar * br - ai * bi;
}

float cmul_im(float ar, float ai, float br, float bi) {
  return ar * bi + ai * br;
}

int main() {
  int s;
  float action = 0.0;
  LRE[0] = 0.25;
  for (s = 1; s < NL; s = s + 1) {
    LRE[s] = LRE[s - 1] * 0.5 + (noise_f64(s) - 0.5);
  }
  for (s = 0; s < NL; s = s + 1) {
    LIM[s] = noise_f64(s + 3000) - 0.5;
    GRE[s] = noise_f64(s + 6000) - 0.5;
    GIM[s] = noise_f64(s + 9000) - 0.5;
  }
  for (s = 0; s < NL; s = s + 1) {
    float nr = cmul_re(LRE[s], LIM[s], GRE[s], GIM[s]);
    float ni = cmul_im(LRE[s], LIM[s], GRE[s], GIM[s]);
    LRE[s] = nr;
    LIM[s] = ni;
  }
  for (s = 0; s < NL; s = s + 1) { action = action + LRE[s] * LRE[s]; }
  CHK = action;
  return (int)(action * 4.0);
}
"""

_NAMD = r"""
// namd_like: pair-list force kernel. The neighbour-list cursor advances by
// a data-independent fixed stride (predictable LCD, opaque to SCEV because
// it wraps through a conditional reset); forces accumulate per atom.
int NA = 300;
int NPAIR = 12;
float POS[300]; float FRC[300];
float CHK = 0.0;

int main() {
  int i; int k;
  int cursor = 0;
  float total = 0.0;
  POS[0] = 1.0;
  for (i = 1; i < NA; i = i + 1) {
    POS[i] = POS[i - 1] * 0.5 + noise_f64(i * 3) * 8.0;
  }
  for (i = 0; i < NA; i = i + 1) {
    float f = 0.0;
    for (k = 0; k < NPAIR; k = k + 1) {
      float d = POS[i] - POS[(i + k * 11 + 3) % 300];
      f = f + d / (0.5 + d * d);
    }
    FRC[i] = f;
    cursor = cursor + 7;
    if (cursor > 4096) { cursor = cursor - 4096; }
  }
  for (i = 0; i < NA; i = i + 1) { total = total + FRC[i]; }
  CHK = total + (float)0;
  return (int)total;
}
"""

_DEALII = r"""
// dealii_like: FEM assembly. Element contributions scatter into a global
// vector; neighbouring elements share a node only at a coarse stride, so
// conflicts are infrequent.
int NE = 480;
float GLOBALV[964];
float CHK = 0.0;

int main() {
  int e; int q;
  float total = 0.0;
  // Serial mesh read feeding the element loop.
  GLOBALV[0] = 0.0078125;
  for (e = 1; e < NE; e = e + 1) {
    GLOBALV[e % 964] = GLOBALV[(e - 1) % 964] * 0.5 + 0.001;
  }
  for (e = 0; e < NE; e = e + 1) {
    float contrib = 0.0;
    for (q = 0; q < 6; q = q + 1) {
      float x = noise_f64(e * 6 + q) - 0.5;
      contrib = contrib + x * x;
    }
    GLOBALV[e * 2] = GLOBALV[e * 2] + contrib;
    // Every 16th element also touches its right neighbour's node,
    // producing the rare cross-iteration RAW.
    if ((e & 15) == 0) {
      GLOBALV[e * 2 + 2] = GLOBALV[e * 2 + 2] + 0.5 * contrib;
    }
  }
  for (e = 0; e < NE * 2; e = e + 1) { total = total + GLOBALV[e]; }
  CHK = total;
  return (int)(total * 2.0);
}
"""

_SOPLEX = r"""
// soplex_like: simplex pricing scan. Candidate columns are scored
// independently; the shared incumbent state is rewritten only on the rare
// improving column -- the canonical PDOALL-beats-HELIX shape.
int NC = 620;
int NR = 12;
float COLSEED[620];
float PRICE[620];
float BESTV[4];
float CHK = 0.0;

int main() {
  int c; int r;
  float total = 0.0;
  BESTV[0] = -1000.0;
  // Serial read of the column file (one seed per column).
  COLSEED[0] = 0.0625;
  for (c = 1; c < NC; c = c + 1) {
    COLSEED[c] = COLSEED[c - 1] * 0.25 + (noise_f64(c) - 0.5);
  }
  for (c = 0; c < NC; c = c + 1) {
    // Every column posts its price late (blind write); only every 16th
    // column steers against the previous price early. Conflicts are rare
    // (well under the 80 % serial cutoff) but adjacent -- the
    // PDOALL-pays-a-restart / HELIX-stalls-a-whole-iteration shape.
    int probe = c & 15;
    float score = 0.0;
    if (probe == 0) {
      score = BESTV[0] * 0.0001;  // early read of the last price (rare)
    }
    float x = COLSEED[c];
    for (r = 0; r < NR; r = r + 1) {
      x = x * 0.8 + 0.3;
      score = score + x * x - 0.4;
    }
    PRICE[c] = score;
    BESTV[0] = score;             // late write: every column posts
  }
  for (c = 0; c < NC; c = c + 1) { total = total + PRICE[c]; }
  CHK = total + BESTV[0];
  return (int)(total * 2.0);
}
"""

_POVRAY = r"""
// povray_like: ray-sphere intersection tests through math helpers.
int NRAY = 520;
float OX[520]; float OY[520];
float HIT[520];
float CHK = 0.0;

float ray_hit(float ox, float oy) {
  float b = ox * 0.8 + oy * 0.6;
  float c = ox * ox + oy * oy - 1.0;
  float disc = b * b - c;
  if (disc < 0.0) { return 0.0; }
  return 0.0 - b + sqrt(disc);
}

int main() {
  int r;
  float total = 0.0;
  OX[0] = 0.5;
  for (r = 1; r < NRAY; r = r + 1) {
    OX[r] = OX[r - 1] * 0.5 + noise_f64(r) - 0.5;
  }
  for (r = 0; r < NRAY; r = r + 1) {
    OY[r] = noise_f64(r + 600) * 2.0 - 1.0;
  }
  for (r = 0; r < NRAY; r = r + 1) {
    HIT[r] = ray_hit(OX[r], OY[r]);
  }
  for (r = 0; r < NRAY; r = r + 1) { total = total + HIT[r]; }
  CHK = total;
  return (int)(total * 8.0);
}
"""

_LBM = r"""
// lbm_like: lattice Boltzmann stream-and-collide over two grids.
int N = 52;
float F0[2704]; float F1[2704];
float CHK = 0.0;

int main() {
  int it; int i; int j;
  float mass = 0.0;
  F0[0] = 0.75;
  for (i = 1; i < N * N; i = i + 1) {
    F0[i] = F0[i - 1] * 0.5 + noise_f64(i) * 0.5 + 0.25;
  }
  for (it = 0; it < 3; it = it + 1) {
    for (i = 1; i < N - 1; i = i + 1) {
      for (j = 1; j < N - 1; j = j + 1) {
        float rho = F0[i * N + j] + 0.25 * (F0[(i - 1) * N + j]
                  + F0[(i + 1) * N + j] + F0[i * N + j - 1] + F0[i * N + j + 1]);
        F1[i * N + j] = F0[i * N + j] + 0.6 * (rho * 0.2 - F0[i * N + j]);
      }
    }
    for (i = 1; i < N - 1; i = i + 1) {
      for (j = 1; j < N - 1; j = j + 1) {
        F0[i * N + j] = F1[i * N + j];
      }
    }
  }
  for (i = 0; i < N * N; i = i + 1) { mass = mass + F0[i]; }
  CHK = mass;
  return (int)mass;
}
"""

_SPHINX = r"""
// sphinx_like: per-frame Gaussian mixture scoring via a helper; the running
// best-score normalizer is rewritten only when a frame beats it by a margin
// (rare) -- the other Fig. 4 PDOALL-wins case.
int NF = 360;
int NG = 10;
float FEAT[360];
float MEAN[10]; float PREC[10];
float SCORE[360];
float NORM[4];
float CHK = 0.0;

float gauss(float x, float mean, float prec) {
  float d = x - mean;
  return 0.0 - d * d * prec;
}

int main() {
  int f; int g;
  float total = 0.0;
  NORM[0] = -900.0;
  FEAT[0] = 0.5;
  for (f = 1; f < NF; f = f + 1) {
    FEAT[f] = FEAT[f - 1] * 0.5 + noise_f64(f * 5);
  }
  for (g = 0; g < NG; g = g + 1) {
    MEAN[g] = noise_f64(g + 41) * 2.0;
    PREC[g] = noise_f64(g + 97) + 0.5;
  }
  for (f = 0; f < NF; f = f + 1) {
    // Every frame stores its normalizer late (blind write); only every
    // 16th frame reads the previous one back early. Conflicts stay far
    // below the 80 % serial cutoff but are adjacent, so HELIX would stall
    // nearly a full iteration while Partial-DOALL pays a rare restart.
    int probe = f & 15;
    float best = -1000.0;
    if (probe == 0) {
      best = best + NORM[0] * 0.0001;  // early read of last norm (rare)
    }
    for (g = 0; g < NG; g = g + 1) {
      float s = gauss(FEAT[f], MEAN[g], PREC[g]);
      if (s > best) { best = s; }
    }
    SCORE[f] = best;
    NORM[0] = best + 0.125;            // late write: every frame stores
  }
  for (f = 0; f < NF; f = f + 1) { total = total + SCORE[f]; }
  CHK = total + NORM[0];
  return (int)(0.0 - total);
}
"""


def programs():
    """The SpecFP2006-like suite."""
    return [
        BenchmarkProgram(
            "bwaves_like", "specfp2006", _BWAVES,
            "blast-wave flux stencil with a CFL max-reduction",
            (TRAIT_DOALL, TRAIT_REDUCTION),
        ),
        BenchmarkProgram(
            "milc_like", "specfp2006", _MILC,
            "lattice link updates through complex-mult helpers",
            (TRAIT_DOALL, TRAIT_CALLS),
        ),
        BenchmarkProgram(
            "namd_like", "specfp2006", _NAMD,
            "pair-list forces with a predictable cursor recurrence",
            (TRAIT_DOALL, TRAIT_REDUCTION, TRAIT_PREDICTABLE_LCD),
        ),
        BenchmarkProgram(
            "dealii_like", "specfp2006", _DEALII,
            "FEM assembly with rare shared-node conflicts",
            (TRAIT_DOALL, TRAIT_INFREQUENT_MEM_LCD),
        ),
        BenchmarkProgram(
            "soplex_like", "specfp2006", _SOPLEX,
            "simplex pricing scan with rare incumbent updates (PDOALL wins)",
            (TRAIT_DOALL, TRAIT_REDUCTION, TRAIT_INFREQUENT_MEM_LCD,
             TRAIT_PDOALL_FRIENDLY),
        ),
        BenchmarkProgram(
            "povray_like", "specfp2006", _POVRAY,
            "ray-sphere intersection through math helpers",
            (TRAIT_DOALL, TRAIT_CALLS),
        ),
        BenchmarkProgram(
            "lbm_like", "specfp2006", _LBM,
            "lattice Boltzmann stream-and-collide over two grids",
            (TRAIT_DOALL, TRAIT_REDUCTION),
        ),
        BenchmarkProgram(
            "sphinx_like", "specfp2006", _SPHINX,
            "GMM frame scoring with a rare normalizer rewrite (PDOALL wins)",
            (TRAIT_DOALL, TRAIT_CALLS, TRAIT_INFREQUENT_MEM_LCD,
             TRAIT_PDOALL_FRIENDLY),
        ),
    ]
