"""SpecFP2000-like suite (numeric).

Design intent (paper §IV): *"SpecFP2000 benefits greatly from both reduc1
and dep2"* — hot loops carry clean reductions plus non-computable but
stride-predictable floating-point recurrences. ``179_art`` is one of the
Fig. 4 benchmarks where Partial-DOALL beats HELIX: its hot loop conflicts
*rarely*, so speculative restarts are cheaper than always-on
synchronization.
"""

from __future__ import annotations

from ..program import (
    BenchmarkProgram,
    TRAIT_CALLS,
    TRAIT_DOALL,
    TRAIT_FREQUENT_MEM_LCD,
    TRAIT_INFREQUENT_MEM_LCD,
    TRAIT_PDOALL_FRIENDLY,
    TRAIT_PREDICTABLE_LCD,
    TRAIT_REDUCTION,
)

_SWIM = r"""
// swim_like: shallow-water stencil sweeps. Updates write a new grid from an
// old grid (no carried dependency within a sweep); sweeps alternate.
int N = 64;
float U[4096]; float V[4096]; float UNEW[4096];
float CHK = 0.0;

int main() {
  int it; int i; int j;
  float total = 0.0;
  // Serial restart-file read for U; V derives in parallel.
  U[0] = 0.03125;
  for (i = 1; i < N * N; i = i + 1) {
    U[i] = U[i - 1] * 0.5 + (noise_f64(i) - 0.5);
  }
  for (i = 0; i < N * N; i = i + 1) { V[i] = noise_f64(i + 4096) - 0.5; }
  for (it = 0; it < 3; it = it + 1) {
    for (i = 1; i < N - 1; i = i + 1) {
      for (j = 1; j < N - 1; j = j + 1) {
        UNEW[i * N + j] = 0.25 * (U[(i - 1) * N + j] + U[(i + 1) * N + j]
                        + U[i * N + j - 1] + U[i * N + j + 1])
                        + 0.5 * V[i * N + j];
      }
    }
    for (i = 1; i < N - 1; i = i + 1) {
      for (j = 1; j < N - 1; j = j + 1) {
        U[i * N + j] = UNEW[i * N + j];
      }
    }
  }
  for (i = 0; i < N * N; i = i + 1) { total = total + U[i]; }
  CHK = total;
  return (int)(total * 8.0);
}
"""

_MGRID = r"""
// mgrid_like: residual smoothing plus a norm reduction per level.
int N = 48;
float P[2304]; float R[2304];
float CHK = 0.0;

int main() {
  int lvl; int i; int j;
  float norm = 0.0;
  P[0] = 0.0625;
  for (i = 1; i < N * N; i = i + 1) {
    P[i] = P[i - 1] * 0.25 + (noise_f64(i * 5) - 0.5);
  }
  for (lvl = 0; lvl < 4; lvl = lvl + 1) {
    for (i = 1; i < N - 1; i = i + 1) {
      for (j = 1; j < N - 1; j = j + 1) {
        R[i * N + j] = P[i * N + j]
                     - 0.25 * (P[(i - 1) * N + j] + P[(i + 1) * N + j]
                     + P[i * N + j - 1] + P[i * N + j + 1]);
      }
    }
    for (i = 1; i < N - 1; i = i + 1) {
      for (j = 1; j < N - 1; j = j + 1) {
        P[i * N + j] = P[i * N + j] - 0.7 * R[i * N + j];
      }
    }
  }
  for (i = 0; i < N * N; i = i + 1) { norm = norm + P[i] * P[i]; }
  CHK = norm;
  return (int)norm;
}
"""

_APPLU = r"""
// applu_like: SSOR-style line solve. The j-sweep carries a frequent memory
// LCD (each line depends on the previous line), while the i-loop within a
// line is parallel. HELIX pipelines the sweep; (P)DOALL cannot.
int N = 72;
float G[5184];
float CHK = 0.0;

int main() {
  int i; int j;
  float total = 0.0;
  G[0] = 0.25;
  for (i = 1; i < N * N; i = i + 1) {
    G[i] = G[i - 1] * 0.5 + (noise_f64(i) - 0.5);
  }
  for (j = 1; j < N; j = j + 1) {
    for (i = 0; i < N; i = i + 1) {
      G[j * N + i] = 0.6 * G[j * N + i] + 0.4 * G[(j - 1) * N + i];
    }
  }
  for (i = 0; i < N * N; i = i + 1) { total = total + G[i]; }
  CHK = total;
  return (int)(total * 2.0);
}
"""

_MESA = r"""
// mesa_like: vertex/pixel pipeline stages built from helper calls. Pure
// data parallelism hidden behind fn2.
int NV = 900;
float VX[900]; float VY[900]; float VZ[900];
float SX[900]; float SY[900];
float CHK = 0.0;

float project(float v, float z) {
  return v / (1.0 + z * z * 0.1);
}

float shade(float x, float y) {
  float d = x * x + y * y;
  return 1.0 / (1.0 + d);
}

int main() {
  int v;
  float lum = 0.0;
  VX[0] = 0.125;
  for (v = 1; v < NV; v = v + 1) {
    VX[v] = VX[v - 1] * 0.5 + (noise_f64(v) - 0.5);
  }
  for (v = 0; v < NV; v = v + 1) {
    VY[v] = noise_f64(v + 1000) - 0.5;
    VZ[v] = noise_f64(v + 2000);
  }
  for (v = 0; v < NV; v = v + 1) {
    SX[v] = project(VX[v], VZ[v]);
    SY[v] = project(VY[v], VZ[v]);
  }
  for (v = 0; v < NV; v = v + 1) {
    lum = lum + shade(SX[v], SY[v]);
  }
  CHK = lum;
  return (int)(lum * 32.0);
}
"""

_ART = r"""
// art_like: neural template matching. The match loop only *rarely* touches
// shared state (a handful of resonance updates across ~500 iterations), so
// Partial-DOALL restarts beat HELIX's always-on synchronization -- one of
// the paper's Fig. 4 PDOALL-wins cases.
int NF = 520;
int NW = 64;
float INP[520];
float WGT[64];
float SCORE[520];
float RES[8];
float CHK = 0.0;

int main() {
  int f; int w;
  float total = 0.0;
  INP[0] = 0.0625;
  for (f = 1; f < NF; f = f + 1) {
    INP[f] = INP[f - 1] * 0.25 + (noise_f64(f * 3) - 0.5);
  }
  for (w = 0; w < NW; w = w + 1) { WGT[w] = noise_f64(w + 555) - 0.5; }
  for (w = 0; w < 8; w = w + 1) { RES[w] = 0.0; }
  RES[0] = -1000.0;
  for (f = 0; f < NF; f = f + 1) {
    // Every frame records its resonance late (blind write); only every
    // 16th frame reads it back early, so conflicting iterations stay far
    // below the 80 % serial cutoff (Partial-DOALL pays a few restarts).
    // But each conflict is *adjacent* (read-at-top of f, written at the
    // end of f-1), so HELIX would have to stall nearly a whole iteration
    // per iteration -- its synchronized schedule shows no gain here.
    int probe = f & 15;
    float acc = 0.0;
    if (probe == 0) {
      acc = RES[0] * 0.0001;    // early read of the last resonance (rare)
    }
    for (w = 0; w < NW; w = w + 1) {
      acc = acc + INP[(f + w) % 520] * WGT[w];
    }
    SCORE[f] = acc;
    RES[0] = acc;               // late write: every frame records
  }
  for (f = 0; f < NF; f = f + 1) { total = total + SCORE[f]; }
  for (w = 0; w < 8; w = w + 1) { total = total + RES[w]; }
  CHK = total;
  return (int)(total * 2.0);
}
"""

_EQUAKE = r"""
// equake_like: sparse matrix-vector product plus an energy reduction.
// Indirection through column indices; rows are independent.
int NR = 420;
int NNZ = 8;
int COLIDX[3360];
float VAL[3360];
float X[420]; float Y[420];
float CHK = 0.0;

int main() {
  int r; int k;
  float energy = 0.0;
  for (r = 0; r < NR; r = r + 1) { X[r] = noise_f64(r) - 0.5; }
  // Serial mesh-file read: the sparsity pattern arrives as a chain.
  COLIDX[0] = 39916801;
  for (k = 1; k < NR * NNZ; k = k + 1) {
    COLIDX[k] = (COLIDX[k - 1] * 69069 + 12345 + k) & 2147483647;
  }
  for (k = 0; k < NR * NNZ; k = k + 1) {
    VAL[k] = noise_f64(COLIDX[k] & 4095) - 0.5;
    COLIDX[k] = (COLIDX[k] >> 7) % 420;
  }
  for (r = 0; r < NR; r = r + 1) {
    float acc = 0.0;
    for (k = 0; k < NNZ; k = k + 1) {
      acc = acc + VAL[r * NNZ + k] * X[COLIDX[r * NNZ + k]];
    }
    Y[r] = acc;
  }
  for (r = 0; r < NR; r = r + 1) { energy = energy + Y[r] * Y[r]; }
  CHK = energy;
  return (int)(energy * 8.0);
}
"""

_AMMP = r"""
// ammp_like: force accumulation with a stride-predictable cutoff radius
// recurrence -- non-computable to SCEV (it feeds back through fmin) yet
// trivially caught by the stride/last-value predictors (dep2).
int NA = 360;
float PX[360]; float FX[360];
float CHK = 0.0;

int main() {
  int i; int j;
  float cutoff = 2.0;
  float total = 0.0;
  PX[0] = 0.5;
  for (i = 1; i < NA; i = i + 1) {
    PX[i] = PX[i - 1] * 0.5 + noise_f64(i * 9) * 4.0;
  }
  for (i = 0; i < NA; i = i + 1) {
    float f = 0.0;
    for (j = 0; j < 16; j = j + 1) {
      float d = PX[i] - PX[(i + j * 7) % 360];
      float d2 = d * d + 0.1;
      if (d2 < cutoff) { f = f + 1.0 / d2; }
    }
    FX[i] = f;
    // The cutoff relaxes on a fixed schedule: predictable at run time,
    // opaque to SCEV (float recurrence used inside the loop). The step is
    // a dyadic rational so the additions are exact and a stride predictor
    // reproduces them bit-for-bit.
    cutoff = cutoff + 0.0078125;
  }
  for (i = 0; i < NA; i = i + 1) { total = total + FX[i]; }
  CHK = total;
  return (int)total;
}
"""

_SIXTRACK = r"""
// sixtrack_like: beamline element sweep. The accumulated phase advance is a
// float stride recurrence (exact dyadic step) consumed by every element
// update: opaque to SCEV, trivial for the stride predictor -- the dep2
// showcase. No memory LCDs, so prediction alone unlocks the loop.
int NS = 2600;
float KICK[2600];
float OUT[2600];
float CHK = 0.0;

int main() {
  int s;
  float total = 0.0;
  float phase = 0.25;
  KICK[0] = 0.03125;
  for (s = 1; s < NS; s = s + 1) {
    KICK[s] = KICK[s - 1] * 0.25 + (noise_f64(s) - 0.5);
  }
  for (s = 0; s < NS; s = s + 1) {
    phase = phase + 0.015625;
    OUT[s] = KICK[s] * cos(phase) + 0.1 * sin(phase);
  }
  for (s = 0; s < NS; s = s + 1) { total = total + OUT[s]; }
  CHK = total;
  return (int)(total * 16.0);
}
"""


def programs():
    """The SpecFP2000-like suite."""
    return [
        BenchmarkProgram(
            "swim_like", "specfp2000", _SWIM,
            "shallow-water stencil sweeps (old->new grid)",
            (TRAIT_DOALL, TRAIT_REDUCTION),
        ),
        BenchmarkProgram(
            "mgrid_like", "specfp2000", _MGRID,
            "multigrid-ish smoothing with per-level norm reduction",
            (TRAIT_DOALL, TRAIT_REDUCTION),
        ),
        BenchmarkProgram(
            "applu_like", "specfp2000", _APPLU,
            "SSOR line solve: serial sweep over parallel lines",
            (TRAIT_FREQUENT_MEM_LCD, TRAIT_DOALL),
        ),
        BenchmarkProgram(
            "mesa_like", "specfp2000", _MESA,
            "graphics pipeline stages behind helper calls",
            (TRAIT_DOALL, TRAIT_CALLS, TRAIT_REDUCTION),
        ),
        BenchmarkProgram(
            "art_like", "specfp2000", _ART,
            "template matching with rare resonance conflicts (PDOALL wins)",
            (TRAIT_DOALL, TRAIT_REDUCTION, TRAIT_INFREQUENT_MEM_LCD,
             TRAIT_PDOALL_FRIENDLY),
        ),
        BenchmarkProgram(
            "equake_like", "specfp2000", _EQUAKE,
            "sparse matvec with indirection + energy reduction",
            (TRAIT_DOALL, TRAIT_REDUCTION),
        ),
        BenchmarkProgram(
            "ammp_like", "specfp2000", _AMMP,
            "force loop with a stride-predictable cutoff recurrence",
            (TRAIT_REDUCTION, TRAIT_PREDICTABLE_LCD),
        ),
        BenchmarkProgram(
            "sixtrack_like", "specfp2000", _SIXTRACK,
            "particle tracking: float stride recurrence per turn",
            (TRAIT_DOALL, TRAIT_PREDICTABLE_LCD, TRAIT_CALLS),
        ),
    ]
