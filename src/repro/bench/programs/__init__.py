"""Synthetic benchmark programs, one module per suite."""

from . import eembc, specfp2000, specfp2006, specint2000, specint2006

__all__ = ["eembc", "specfp2000", "specfp2006", "specint2000", "specint2006"]
