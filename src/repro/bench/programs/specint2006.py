"""SpecINT2006-like suite (non-numeric).

Design intent (paper §IV): INT2006 follows the INT2000 pattern (frequent
register and memory LCDs, calls everywhere) but contains a few famously
parallel members — ``libquantum`` (data-parallel gate application),
``hmmer`` (DP rows), ``h264ref`` (independent macroblocks) — which is why
the paper reports higher limits for INT2006 than INT2000 at every
configuration (2.0 vs 1.2 at ``dep2-fn2`` PDOALL; 7.2 vs 4.6 at
``dep1-fn2`` HELIX). ``429_mcf`` is a Fig. 4 PDOALL-wins case.
"""

from __future__ import annotations

from ..program import (
    BenchmarkProgram,
    TRAIT_CALLS,
    TRAIT_DOALL,
    TRAIT_FREQUENT_MEM_LCD,
    TRAIT_INFREQUENT_MEM_LCD,
    TRAIT_PDOALL_FRIENDLY,
    TRAIT_UNPREDICTABLE_LCD,
)

_PERLBENCH = r"""
// perlbench_like: regex-ish matcher VM. Early data-dependent pc advance,
// helper call in the hot loop, match-state table with early producers.
int PLEN = 6000;
int PAT[6000];
int STATE[64];
int CHK = 0;

int step_class(int op, int c) {
  if ((op & 3) == 0) { return (c & 7); }
  if ((op & 3) == 1) { return (c >> 3) & 7; }
  return (c * 3) & 7;
}

int main() {
  int i;
  int pc = 0;
  int matches = 0;
  PAT[0] = 141650963;
  for (i = 1; i < PLEN; i = i + 1) {
    PAT[i] = (PAT[i - 1] * 1103515245 + 12345 + i * 3) & 2147483647;
  }
  while (pc < PLEN - 4) {
    int at = pc;
    int op = (PAT[at] >> 11) & 63;
    int adv = 1 + (op & 3);
    pc = pc + adv;                        // early pc resolution
    int cls = step_class(op, (PAT[at + 1] >> 6) & 255);
    STATE[cls * 8] = STATE[cls * 8] + 1;  // early-ish table update
    int k;
    int work = 0;
    for (k = 0; k < 5; k = k + 1) {
      work = work + ((op * (k + 11) + at) & 255);
    }
    matches = matches + (work & 3);
  }
  CHK = matches;
  return matches & 65535;
}
"""

_BZIP2_06 = r"""
// bzip2_like06: block compressor. Blocks are independent (outer loop
// parallel at fn2); within a block the RLE cursor is the usual early
// unpredictable register LCD.
int NBLK = 60;
int BLEN = 128;
int DATA[7680];
int OUTV[60];
int CHK = 0;

int rle_len(int a, int b) {
  if (a == b) { return 2; }
  return 1;
}

int main() {
  int blk; int i;
  int total = 0;
  DATA[0] = 2017;
  for (i = 1; i < NBLK * BLEN; i = i + 1) {
    DATA[i] = (DATA[i - 1] * 69069 + 12345 + i) & 2147483647;
  }
  for (blk = 0; blk < NBLK; blk = blk + 1) {
    int pos = 0;
    int acc = 0;
    while (pos < BLEN - 2) {
      int at = blk * BLEN + pos;
      int run = rle_len((DATA[at] >> 9) & 31, (DATA[at + 1] >> 9) & 31);
      pos = pos + run;                   // early cursor (inner loop)
      acc = acc + ((DATA[at] >> 9) & 31) * run;
    }
    OUTV[blk] = acc;
  }
  for (blk = 0; blk < NBLK; blk = blk + 1) { total = total + OUTV[blk]; }
  CHK = total;
  return total & 65535;
}
"""

_GCC_06 = r"""
// gcc_like06: dataflow solver. Iterate-to-fixpoint over basic blocks: the
// outer pass loop carries the whole fact table (frequent memory LCD), the
// inner per-block update is parallel once its helper call is admitted.
int NB = 180;
int FACTS[180]; int SUCC1[180]; int SUCC2[180];
int CHK = 0;

int meet(int a, int b) {
  return a & b;
}

int main() {
  int pass; int b;
  int changed = 0;
  FACTS[0] = 65537;
  for (b = 1; b < NB; b = b + 1) {
    FACTS[b] = (FACTS[b - 1] * 1103515245 + 12345 + b) & 2147483647;
  }
  for (b = 0; b < NB; b = b + 1) {
    SUCC1[b] = (FACTS[b] >> 8) % 180;
    SUCC2[b] = (FACTS[b] >> 17) % 180;
  }
  for (b = 0; b < NB; b = b + 1) { FACTS[b] = FACTS[b] & 1023; }
  for (pass = 0; pass < 8; pass = pass + 1) {
    for (b = 0; b < NB; b = b + 1) {
      int fresh = meet(FACTS[SUCC1[b]], FACTS[SUCC2[b]]) | (b & 15);
      if (fresh != FACTS[b]) {
        FACTS[b] = fresh;
        changed = changed + 1;
      }
    }
  }
  CHK = changed;
  return changed;
}
"""

_MCF_06 = r"""
// mcf_like06: SPP network simplex pricing, bigger arc set than the 2000
// edition; only rare candidate arcs probe the shared dual (early read,
// late rewrite) -> conflicting iterations stay far below the 80 % serial
// cutoff and PDOALL wins (Fig. 4 429_mcf).
int NA = 1800;
int TAIL[1800]; int HEAD[1800]; int COST[1800];
int POT[160];
int DUAL[1];
int CHK = 0;

int main() {
  int a;
  int pushes = 0;
  TAIL[0] = 7368787;
  for (a = 1; a < NA; a = a + 1) {
    TAIL[a] = (TAIL[a - 1] * 69069 + 90021 + a) & 2147483647;
  }
  for (a = 0; a < NA; a = a + 1) {
    HEAD[a] = (TAIL[a] >> 12) % 160;
    COST[a] = (TAIL[a] >> 5) & 511;
  }
  for (a = 0; a < 160; a = a + 1) { POT[a] = (TAIL[a * 8] >> 20) & 127; }
  for (a = 0; a < NA; a = a + 1) { TAIL[a] = (TAIL[a] >> 3) % 160; }
  DUAL[0] = 1000000;
  for (a = 0; a < NA; a = a + 1) {
    int probe = COST[a] & 31;            // rare candidate arcs price the dual
    int best = 0;
    if (probe == 0) {
      best = DUAL[0];                    // early read of the running min
    }
    int red = COST[a] + POT[TAIL[a]] - POT[HEAD[a]];
    int w;
    int score = 0;
    for (w = 0; w < 6; w = w + 1) {
      score = score + ((red * (w + 5)) & 511);
    }
    pushes = pushes + (score & 3);
    if (probe == 0) {
      if (red < best) {                  // rare (running min), late rewrite
        DUAL[0] = red;
      }
    }
  }
  CHK = pushes;
  return pushes & 65535;
}
"""

_GOBMK = r"""
// gobmk_like: move generation/evaluation. Candidate moves are scored
// independently through helpers; the game-state update loop that follows is
// a short serial chain.
int NMOVES = 520;
int BOARD[361];
int SCOREV[520];
int CHK = 0;

int influence(int stone, int dist) {
  if (dist == 0) { return stone * 4; }
  return (stone * 4) / (dist + 1);
}

int main() {
  int m; int d;
  int total = 0;
  BOARD[0] = 19937;
  for (m = 1; m < 361; m = m + 1) {
    BOARD[m] = (BOARD[m - 1] * 1103515245 + 12345 + m) & 2147483647;
  }
  for (m = 0; m < 361; m = m + 1) { BOARD[m] = (BOARD[m] >> 14) % 3; }
  for (m = 0; m < NMOVES; m = m + 1) {
    int pt = (m * 7) % 361;
    int acc = 0;
    for (d = 0; d < 6; d = d + 1) {
      acc = acc + influence(BOARD[(pt + d * d) % 361], d);
    }
    SCOREV[m] = acc;
  }
  int state = 1;
  for (m = 0; m < NMOVES; m = m + 1) {
    state = ((state * 5 + SCOREV[m]) & 4095) | 1;   // unpredictable chain
    total = total + (state & 15);
  }
  CHK = total;
  return total & 65535;
}
"""

_HMMER = r"""
// hmmer_like: profile-HMM DP. Rows depend on the previous row (frequent
// memory LCD across the outer loop) but the per-row cell loop is parallel
// and dominated by max/add work: the "numeric-ish" INT2006 member.
int NROW = 90;
int NCOL = 64;
int PREV[64]; int CUR[64];
int EMIT[5760];
int CHK = 0;

int main() {
  int r; int c;
  int best = 0;
  EMIT[0] = 104711;
  for (r = 1; r < NROW * NCOL; r = r + 1) {
    EMIT[r] = (EMIT[r - 1] * 69069 + 12345 + r) & 2147483647;
  }
  for (r = 0; r < NROW * NCOL; r = r + 1) { EMIT[r] = (EMIT[r] >> 10) & 63; }
  for (c = 0; c < NCOL; c = c + 1) { PREV[c] = 0; }
  for (r = 1; r < NROW; r = r + 1) {
    for (c = 1; c < NCOL; c = c + 1) {
      int up = PREV[c] + 3;
      int diag = PREV[c - 1] + EMIT[r * NCOL + c];
      int m = up;
      if (diag > m) { m = diag; }
      CUR[c] = m;
    }
    for (c = 1; c < NCOL; c = c + 1) { PREV[c] = CUR[c]; }
  }
  for (c = 1; c < NCOL; c = c + 1) {
    if (PREV[c] > best) { best = PREV[c]; }
  }
  CHK = best;
  return best;
}
"""

_SJENG = r"""
// sjeng_like: game-tree scan with hash-table probes. The Zobrist-style key
// is an unpredictable register LCD threaded through every node; probe
// writes alias occasionally.
int NNODE = 1000;
int MOVES[1000];
int TT[512];
int CHK = 0;

int main() {
  int n;
  int key = 12345;
  int hits = 0;
  MOVES[0] = 262147;
  for (n = 1; n < NNODE; n = n + 1) {
    MOVES[n] = (MOVES[n - 1] * 1103515245 + 12345 + n * 13) & 2147483647;
  }
  for (n = 0; n < NNODE; n = n + 1) {
    key = (key * 2654435761 + MOVES[n]) & 2147483647;  // early, unpredictable
    int slot = key & 511;
    int k;
    int evalv = 0;
    for (k = 0; k < 6; k = k + 1) {
      evalv = evalv + ((MOVES[n] >> k) & 31);
    }
    if (TT[slot] == 0) { TT[slot] = evalv | 1; }
    if (TT[slot] != 0) { hits = hits + 1; }
  }
  CHK = hits + (key & 255);
  return (hits + key) & 65535;
}
"""

_LIBQUANTUM = r"""
// libquantum_like: quantum gate application. Pure bit-manipulation sweeps
// over the amplitude index array -- data-parallel with no calls at all, the
// famously DOALL member of INT2006.
int NSTATE = 4096;
int AMP[4096];
int CHK = 0;

int main() {
  int g; int i;
  int parity = 0;
  AMP[0] = 40961;
  for (i = 1; i < NSTATE; i = i + 1) {
    AMP[i] = (AMP[i - 1] * 69069 + 12345 + i) & 2147483647;
  }
  for (i = 0; i < NSTATE; i = i + 1) { AMP[i] = (AMP[i] >> 8) & 4095; }
  for (g = 0; g < 4; g = g + 1) {
    for (i = 0; i < NSTATE; i = i + 1) {
      AMP[i] = AMP[i] ^ (1 << g) ^ ((AMP[i] >> 3) & 7);
    }
  }
  for (i = 0; i < NSTATE; i = i + 1) { parity = parity ^ AMP[i]; }
  CHK = parity;
  return parity & 65535;
}
"""

_H264 = r"""
// h264ref_like: motion estimation. Macroblock SAD searches are independent
// (parallel at fn2); the reconstruction sweep depends on the left
// neighbour with an early producer -- HELIX pipelines it.
int NMB = 140;
int NCAND = 8;
int REFB[2240]; int CURB[2240];
int BESTSAD[140];
int RECON[140];
int CHK = 0;

int sad16(int a, int b) {
  int d = a - b;
  if (d < 0) { return 0 - d; }
  return d;
}

int main() {
  int mb; int c; int k;
  int total = 0;
  REFB[0] = 84631;
  for (k = 1; k < NMB * 16; k = k + 1) {
    REFB[k] = (REFB[k - 1] * 1103515245 + 12345 + k) & 2147483647;
  }
  for (k = 0; k < NMB * 16; k = k + 1) {
    CURB[k] = (REFB[k] >> 13) & 255;
    REFB[k] = (REFB[k] >> 5) & 255;
  }
  for (mb = 0; mb < NMB; mb = mb + 1) {
    int best = 1000000;
    for (c = 0; c < NCAND; c = c + 1) {
      int acc = 0;
      for (k = 0; k < 16; k = k + 1) {
        acc = acc + sad16(CURB[mb * 16 + k], REFB[((mb + c) % 140) * 16 + k]);
      }
      if (acc < best) { best = acc; }
    }
    BESTSAD[mb] = best;
  }
  RECON[0] = BESTSAD[0];
  for (mb = 1; mb < NMB; mb = mb + 1) {
    int pred = RECON[mb - 1] >> 1;        // early producer read
    RECON[mb] = pred + (BESTSAD[mb] & 63);  // early producer write
    int w;
    int filt = 0;
    for (w = 0; w < 8; w = w + 1) {       // late deblocking-ish work
      filt = filt + ((RECON[mb] * (w + 3)) & 255);
    }
    total = total + (filt & 7);
  }
  CHK = total;
  return total & 65535;
}
"""

_OMNETPP = r"""
// omnetpp_like: discrete-event simulation. The event clock and the queue
// head index form a serial chain through every iteration; the queue array
// is rewritten each event (frequent memory LCD, late producers).
int NEV = 900;
int QUEUE[256];
int CHK = 0;

int main() {
  int e; int i;
  int clock = 0;
  int head = 0;
  int fired = 0;
  QUEUE[0] = 524287;
  for (i = 1; i < 256; i = i + 1) {
    QUEUE[i] = (QUEUE[i - 1] * 69069 + 12345 + i) & 1023;
  }
  for (e = 0; e < NEV; e = e + 1) {
    int ev = QUEUE[head & 255];
    clock = clock + (ev & 15) + 1;        // serial clock advance
    int k;
    int effect = 0;
    for (k = 0; k < 6; k = k + 1) {
      effect = effect + ((ev * (k + 3) + clock) & 511);
    }
    QUEUE[(head + (effect & 63)) & 255] = (ev + effect) & 1023;  // late insert
    head = head + 1 + (effect & 1);       // late head update
    fired = fired + 1;
  }
  CHK = fired + clock;
  return (fired + clock) & 65535;
}
"""

_ASTAR = r"""
// astar_like: grid path relaxation. Wavefront passes relax all cells from
// their neighbours (parallel within a pass at fn2); pass-to-pass carries
// the whole cost grid.
int W = 48;
int COSTG[2304]; int DIST[2304];
int CHK = 0;

int relax(int current, int candidate) {
  if (candidate < current) { return candidate; }
  return current;
}

int main() {
  int pass; int i; int j;
  int total = 0;
  COSTG[0] = 92821;
  for (i = 1; i < W * W; i = i + 1) {
    COSTG[i] = (COSTG[i - 1] * 1103515245 + 12345 + i) & 2147483647;
  }
  for (i = 0; i < W * W; i = i + 1) {
    COSTG[i] = 1 + ((COSTG[i] >> 9) & 7);
    DIST[i] = 100000;
  }
  DIST[0] = 0;
  for (pass = 0; pass < 5; pass = pass + 1) {
    for (i = 1; i < W - 1; i = i + 1) {
      for (j = 1; j < W - 1; j = j + 1) {
        int here = DIST[i * W + j];
        int viaw = DIST[i * W + j - 1] + COSTG[i * W + j];
        int vian = DIST[(i - 1) * W + j] + COSTG[i * W + j];
        here = relax(here, viaw);
        here = relax(here, vian);
        DIST[i * W + j] = here;
      }
    }
  }
  for (i = 0; i < W * W; i = i + 1) {
    if (DIST[i] < 100000) { total = total + (DIST[i] & 63); }
  }
  CHK = total;
  return total & 65535;
}
"""

_XALANCBMK = r"""
// xalancbmk_like: tree-to-text transform. The output cursor advances by the
// node's rendered width (early, data-dependent); rendering goes through a
// helper; sibling nodes are otherwise independent.
int NN = 800;
int NODEW[800]; int KIND[800];
int OUTBUF[8192];
int CHK = 0;

int render_width(int kind) {
  if (kind == 0) { return 3; }
  if (kind == 1) { return 5; }
  return 2 + (kind & 3);
}

int main() {
  int n; int k;
  int outpos = 0;
  int rendered = 0;
  KIND[0] = 786433;
  for (n = 1; n < NN; n = n + 1) {
    KIND[n] = (KIND[n - 1] * 69069 + 12345 + n * 17) & 2147483647;
  }
  for (n = 0; n < NN; n = n + 1) { KIND[n] = (KIND[n] >> 12) & 7; }
  for (n = 0; n < NN; n = n + 1) {
    int w = render_width(KIND[n]);
    int base = outpos;
    outpos = outpos + w;                  // early output cursor
    for (k = 0; k < w; k = k + 1) {
      OUTBUF[(base + k) & 8191] = (KIND[n] * 31 + k) & 255;
    }
    NODEW[n] = w;
    rendered = rendered + 1;
  }
  for (n = 0; n < NN; n = n + 1) { CHK = CHK + NODEW[n]; }
  return (CHK + outpos) & 65535;
}
"""


def programs():
    """The SpecINT2006-like suite."""
    return [
        BenchmarkProgram(
            "perlbench_like", "specint2006", _PERLBENCH,
            "regex VM: early pc, helper in hot loop, state table",
            (TRAIT_UNPREDICTABLE_LCD, TRAIT_FREQUENT_MEM_LCD, TRAIT_CALLS),
        ),
        BenchmarkProgram(
            "bzip2_like06", "specint2006", _BZIP2_06,
            "block compressor: independent blocks over serial RLE cursors",
            (TRAIT_DOALL, TRAIT_UNPREDICTABLE_LCD, TRAIT_CALLS),
        ),
        BenchmarkProgram(
            "gcc_like06", "specint2006", _GCC_06,
            "dataflow fixpoint: serial passes over parallel block updates",
            (TRAIT_FREQUENT_MEM_LCD, TRAIT_CALLS, TRAIT_DOALL),
        ),
        BenchmarkProgram(
            "mcf_like06", "specint2006", _MCF_06,
            "network simplex pricing, rare rewrites (PDOALL wins, Fig. 4)",
            (TRAIT_INFREQUENT_MEM_LCD, TRAIT_PDOALL_FRIENDLY),
        ),
        BenchmarkProgram(
            "gobmk_like", "specint2006", _GOBMK,
            "move scoring through helpers + short serial state chain",
            (TRAIT_DOALL, TRAIT_CALLS, TRAIT_UNPREDICTABLE_LCD),
        ),
        BenchmarkProgram(
            "hmmer_like", "specint2006", _HMMER,
            "profile-HMM DP: serial rows over parallel cells",
            (TRAIT_FREQUENT_MEM_LCD, TRAIT_DOALL),
        ),
        BenchmarkProgram(
            "sjeng_like", "specint2006", _SJENG,
            "tree scan with a Zobrist-key register LCD + TT probes",
            (TRAIT_UNPREDICTABLE_LCD, TRAIT_INFREQUENT_MEM_LCD),
        ),
        BenchmarkProgram(
            "libquantum_like", "specint2006", _LIBQUANTUM,
            "gate application sweeps: call-free DOALL loops",
            (TRAIT_DOALL,),
        ),
        BenchmarkProgram(
            "h264ref_like", "specint2006", _H264,
            "independent SAD searches + left-neighbour reconstruction",
            (TRAIT_DOALL, TRAIT_CALLS, TRAIT_FREQUENT_MEM_LCD),
        ),
        BenchmarkProgram(
            "omnetpp_like", "specint2006", _OMNETPP,
            "event simulation: serial clock/queue chain",
            (TRAIT_UNPREDICTABLE_LCD, TRAIT_FREQUENT_MEM_LCD),
        ),
        BenchmarkProgram(
            "astar_like", "specint2006", _ASTAR,
            "wavefront relaxation: serial passes over parallel cells",
            (TRAIT_FREQUENT_MEM_LCD, TRAIT_CALLS, TRAIT_DOALL),
        ),
        BenchmarkProgram(
            "xalancbmk_like", "specint2006", _XALANCBMK,
            "tree rendering: early output cursor through a helper",
            (TRAIT_UNPREDICTABLE_LCD, TRAIT_CALLS),
        ),
    ]
