"""EEMBC-like suite: small embedded kernels (numeric).

Design intent (paper §IV): EEMBC is the most regular suite — dominated by
data-parallel pixel/DSP loops and clean reductions — but its hot loops call
small helper functions, so it *"benefits more from fn2 than from
reduc1/dep2"*: with calls forbidden (fn0) almost nothing parallelizes, and
allowing instrumented/pure calls (fn2) unlocks most of the suite at once.
"""

from __future__ import annotations

from ..program import (
    BenchmarkProgram,
    TRAIT_CALLS,
    TRAIT_DOALL,
    TRAIT_FREQUENT_MEM_LCD,
    TRAIT_REDUCTION,
)

_RGBCMY = r"""
// rgbcmy: RGB -> CMY(K) pixel conversion. Pure elementwise map, but every
// pixel goes through clamp/convert helpers -> serial below fn1.
int W = 1536;
int RAWPX[1536];
int R[1536]; int G[1536]; int B[1536];
int C[1536]; int M[1536]; int Y[1536];
int CHK = 0;

int clamp8(int v) {
  if (v < 0) { return 0; }
  if (v > 255) { return 255; }
  return v;
}

int convert(int channel) {
  return clamp8(255 - channel);
}

int main() {
  int i;
  int sum = 0;
  // Serial pixel-stream read (input phase)...
  RAWPX[0] = 16807;
  for (i = 1; i < W; i = i + 1) {
    RAWPX[i] = (RAWPX[i - 1] * 1103515245 + 12345 + i) & 2147483647;
  }
  // ...then parallel channel unpack.
  for (i = 0; i < W; i = i + 1) {
    R[i] = (RAWPX[i] >> 5) & 255;
    G[i] = (RAWPX[i] >> 13) & 255;
    B[i] = (RAWPX[i] >> 21) & 255;
  }
  for (i = 0; i < W; i = i + 1) {
    C[i] = convert(R[i]);
    M[i] = convert(G[i]);
    Y[i] = convert(B[i]);
  }
  for (i = 0; i < W; i = i + 1) {
    sum = sum + C[i] + M[i] + Y[i];
  }
  CHK = sum;
  return sum & 65535;
}
"""

_AIFIRF = r"""
// aifirf: FIR filter. Outer loop over samples is DOALL once the inner
// tap-accumulation reduction and the tap helper call are admitted.
int NS = 700;
int NT = 24;
float SIG[724];
float COEF[24];
float OUT[700];
float CHK = 0.0;

float tap(float c, float x) {
  return c * x;
}

int main() {
  int i; int t;
  float total = 0.0;
  SIG[0] = 0.1875;
  for (i = 1; i < NS + NT; i = i + 1) {
    // Serial sample acquisition: each sample perturbs the DC estimate.
    SIG[i] = SIG[i - 1] * 0.5 + (noise_f64(i) - 0.5);
  }
  for (t = 0; t < NT; t = t + 1) { COEF[t] = noise_f64(t + 977) * 0.25; }
  for (i = 0; i < NS; i = i + 1) {
    float acc = 0.0;
    for (t = 0; t < NT; t = t + 1) {
      acc = acc + tap(COEF[t], SIG[i + t]);
    }
    OUT[i] = acc;
  }
  for (i = 0; i < NS; i = i + 1) { total = total + OUT[i]; }
  CHK = total;
  return (int)(total * 16.0);
}
"""

_AUTCOR = r"""
// autcor: autocorrelation. Nested reductions, no calls in the hot loops:
// the one EEMBC kernel that parallelizes under plain reduc1 DOALL.
int NS = 640;
int NL = 24;
float X[664];
float ACR[24];
float CHK = 0.0;

int main() {
  int lag; int i;
  float total = 0.0;
  X[0] = 0.25;
  for (i = 1; i < NS + NL; i = i + 1) {
    X[i] = X[i - 1] * 0.25 + (noise_f64(i * 3 + 1) - 0.5);
  }
  for (lag = 0; lag < NL; lag = lag + 1) {
    float acc = 0.0;
    for (i = 0; i < NS; i = i + 1) {
      acc = acc + X[i] * X[i + lag];
    }
    ACR[lag] = acc;
  }
  for (lag = 0; lag < NL; lag = lag + 1) { total = total + ACR[lag]; }
  CHK = total;
  return (int)(total * 4.0);
}
"""

_MATRIX = r"""
// matrix: dense matmul (flattened 2-D). Triple nest: two DOALL levels over
// an inner dot-product reduction.
int N = 40;
float A[1600]; float B[1600]; float C[1600];
float CHK = 0.0;

int main() {
  int i; int j; int k;
  float total = 0.0;
  // Serial matrix-file read for A; B derives in parallel.
  A[0] = 0.125;
  for (i = 1; i < N * N; i = i + 1) {
    A[i] = A[i - 1] * 0.5 + (noise_f64(i) - 0.5);
  }
  for (i = 0; i < N * N; i = i + 1) {
    B[i] = noise_f64(i + 31337) - 0.5;
  }
  for (i = 0; i < N; i = i + 1) {
    for (j = 0; j < N; j = j + 1) {
      float acc = 0.0;
      for (k = 0; k < N; k = k + 1) {
        acc = acc + A[i * N + k] * B[k * N + j];
      }
      C[i * N + j] = acc;
    }
  }
  for (i = 0; i < N * N; i = i + 1) { total = total + C[i]; }
  CHK = total;
  return (int)total;
}
"""

_FFT_BFLY = r"""
// fft_bfly: one radix-2 butterfly pass per stage with sin/cos twiddles.
// Strided elementwise updates; the pure math intrinsics keep it serial at
// fn0 and unlock it at fn1+.
int N = 1024;
float RE[1024]; float IM[1024];
float CHK = 0.0;

int main() {
  int stage; int half; int i; int j;
  float total = 0.0;
  RE[0] = 0.125;
  for (i = 1; i < N; i = i + 1) {
    RE[i] = RE[i - 1] * 0.5 + (noise_f64(i) - 0.5);
  }
  for (i = 0; i < N; i = i + 1) { IM[i] = 0.0; }
  half = 1;
  for (stage = 0; stage < 4; stage = stage + 1) {
    for (i = 0; i < N; i = i + 2 * half) {
      for (j = 0; j < half; j = j + 1) {
        float ang = 3.14159265 * (float)j / (float)half;
        float wr = cos(ang);
        float wi = 0.0 - sin(ang);
        float tr = wr * RE[i + j + half] - wi * IM[i + j + half];
        float ti = wr * IM[i + j + half] + wi * RE[i + j + half];
        RE[i + j + half] = RE[i + j] - tr;
        IM[i + j + half] = IM[i + j] - ti;
        RE[i + j] = RE[i + j] + tr;
        IM[i + j] = IM[i + j] + ti;
      }
    }
    half = half * 2;
  }
  for (i = 0; i < N; i = i + 1) { total = total + RE[i] * RE[i] + IM[i] * IM[i]; }
  CHK = total;
  return (int)total;
}
"""

_VITERBI = r"""
// viterbi_like: trellis relaxation. Time steps carry a frequent memory LCD
// (the whole metric array), but the per-step state loop is parallel; the
// max-metric recurrence uses the pure imax intrinsic.
int T = 160;
int S = 32;
int METRIC[32];
int NEXTM[32];
int TRANS[1024];
int CHK = 0;

int main() {
  int t; int s; int p;
  int best = 0;
  TRANS[0] = 48611;
  for (p = 1; p < S * S; p = p + 1) {
    TRANS[p] = (TRANS[p - 1] * 69069 + 12345 + p) & 2147483647;
  }
  for (p = 0; p < S * S; p = p + 1) { TRANS[p] = (TRANS[p] >> 9) & 63; }
  for (s = 0; s < S; s = s + 1) { METRIC[s] = 0; }
  for (t = 0; t < T; t = t + 1) {
    for (s = 0; s < S; s = s + 1) {
      int m = -1000000;
      for (p = 0; p < S; p = p + 1) {
        m = imax(m, METRIC[p] + TRANS[p * S + s]);
      }
      NEXTM[s] = m;
    }
    for (s = 0; s < S; s = s + 1) { METRIC[s] = NEXTM[s]; }
  }
  for (s = 0; s < S; s = s + 1) { best = imax(best, METRIC[s]); }
  CHK = best;
  return best;
}
"""

_DITHER = r"""
// dither: Floyd-Steinberg-style error diffusion. The running error is a
// frequent, *unpredictable* register LCD produced early in each iteration,
// so HELIX pipelines it while (P)DOALL cannot.
int W = 4096;
int IMG[4096];
int OUTP[4096];
int CHK = 0;

int main() {
  int i;
  int err = 0;
  int count = 0;
  IMG[0] = 3511;
  for (i = 1; i < W; i = i + 1) {
    IMG[i] = (IMG[i - 1] * 1103515245 + 12345 + i * 7) & 2147483647;
  }
  for (i = 0; i < W; i = i + 1) { IMG[i] = (IMG[i] >> 11) & 255; }
  for (i = 0; i < W; i = i + 1) {
    int v = IMG[i] + err;
    int px = 0;
    if (v > 127) { px = 255; }
    err = v - px;
    OUTP[i] = px;
    count = count + px;
  }
  CHK = count;
  return count & 65535;
}
"""

_ROUTELOOKUP = r"""
// routelookup: per-packet table walks. Packets are independent (outer
// DOALL), each walk is a read-only chase through the table via a helper.
int NP = 400;
int NODES = 512;
int LEFT[512]; int RIGHT[512]; int LEAF[512];
int DST[400];
int HOPS[400];
int CHK = 0;

int step_node(int node, int bit) {
  if (bit == 1) { return RIGHT[node]; }
  return LEFT[node];
}

int main() {
  int n; int p;
  int total = 0;
  LEFT[0] = 60013;
  for (n = 1; n < NODES; n = n + 1) {
    LEFT[n] = (LEFT[n - 1] * 69069 + 12345 + n) & 2147483647;
  }
  for (n = 0; n < NODES; n = n + 1) {
    RIGHT[n] = (LEFT[n] >> 11) & 511;
    LEAF[n] = (LEFT[n] >> 20) & 1;
  }
  for (n = 0; n < NODES; n = n + 1) { LEFT[n] = (LEFT[n] >> 2) & 511; }
  for (p = 0; p < NP; p = p + 1) { DST[p] = hash_i32(p * 13 + 5); }
  for (p = 0; p < NP; p = p + 1) {
    int node = DST[p] & 511;
    int depth = 0;
    int key = DST[p];
    while (depth < 16 && LEAF[node] == 0) {
      node = step_node(node, (key >> depth) & 1);
      depth = depth + 1;
    }
    HOPS[p] = depth;
  }
  for (p = 0; p < NP; p = p + 1) { total = total + HOPS[p]; }
  CHK = total;
  return total;
}
"""


def programs():
    """The EEMBC-like suite."""
    return [
        BenchmarkProgram(
            "rgbcmy", "eembc", _RGBCMY,
            "RGB->CMY pixel conversion through clamp helpers",
            (TRAIT_DOALL, TRAIT_CALLS),
        ),
        BenchmarkProgram(
            "aifirf", "eembc", _AIFIRF,
            "FIR filter: per-sample tap reduction via a helper",
            (TRAIT_DOALL, TRAIT_REDUCTION, TRAIT_CALLS),
        ),
        BenchmarkProgram(
            "autcor", "eembc", _AUTCOR,
            "autocorrelation: nested reductions, no calls",
            (TRAIT_DOALL, TRAIT_REDUCTION),
        ),
        BenchmarkProgram(
            "matrix", "eembc", _MATRIX,
            "dense matrix multiply (two DOALL levels over a reduction)",
            (TRAIT_DOALL, TRAIT_REDUCTION),
        ),
        BenchmarkProgram(
            "fft_bfly", "eembc", _FFT_BFLY,
            "radix-2 butterfly passes with trig intrinsics",
            (TRAIT_DOALL, TRAIT_CALLS),
        ),
        BenchmarkProgram(
            "viterbi_like", "eembc", _VITERBI,
            "trellis relaxation: serial time steps, parallel state loop",
            (TRAIT_FREQUENT_MEM_LCD, TRAIT_CALLS, TRAIT_DOALL),
        ),
        BenchmarkProgram(
            "dither", "eembc", _DITHER,
            "error diffusion: frequent early-resolving register LCD",
            (TRAIT_FREQUENT_MEM_LCD,),
        ),
        BenchmarkProgram(
            "routelookup", "eembc", _ROUTELOOKUP,
            "per-packet read-only table walks via a helper",
            (TRAIT_DOALL, TRAIT_CALLS),
        ),
    ]
