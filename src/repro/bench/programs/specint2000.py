"""SpecINT2000-like suite (non-numeric).

Design intent (paper §IV): non-numeric codes are "sufficiently complex that
their loops are serialized due to frequent true LCDs, both through memory
and registers, as well as frequent structural (call-stack) hazards". The
recurring hot-loop shape here is a *stream cursor*: a data-dependent,
unpredictable register LCD (``pos += length-of-current-token``) computed
**early** in the iteration, followed by the heavy per-token work. DOALL and
Partial-DOALL can do nothing with it; HELIX ``dep1`` pipelines it — which is
exactly how the paper gets INT speedups only at ``dep1-fn2`` HELIX.

Every program starts with a *serial input phase*: an in-program LCG chain
threaded through memory (``A[i] = f(A[i-1])``), standing in for the input
parsing real SPEC binaries do. It bounds the limit speedup the way real
serial phases do (Amdahl), is unparallelizable under every (P)DOALL
configuration, and gains only a small pipelining factor under HELIX. Data
consumed by control decisions is taken from the *high* bits of the chain so
the value predictors cannot exploit the LCG's periodic low bits.
"""

from __future__ import annotations

from ..program import (
    BenchmarkProgram,
    TRAIT_CALLS,
    TRAIT_DOALL,
    TRAIT_FREQUENT_MEM_LCD,
    TRAIT_INFREQUENT_MEM_LCD,
    TRAIT_PDOALL_FRIENDLY,
    TRAIT_UNPREDICTABLE_LCD,
    TRAIT_UNSAFE_CALLS,
)

_GZIP = r"""
// gzip_like: LZ-style scan over a serially-parsed stream. The cursor
// advances by the data-dependent match length, resolved at the top of the
// iteration; the emit/model work below dominates the iteration.
int SLEN = 10000;
int STREAM[10000];
int LITCNT[256];
int CHK = 0;

int main() {
  int i;
  int pos = 0;
  int emitted = 0;
  // Serial input phase: LCG chain through memory.
  STREAM[0] = 48271;
  for (i = 1; i < SLEN; i = i + 1) {
    STREAM[i] = (STREAM[i - 1] * 1103515245 + 12345 + i) & 2147483647;
  }
  while (pos < SLEN - 8) {
    int base = pos;
    int head = (STREAM[base] >> 9) & 255;
    int mlen = 1 + ((STREAM[base] >> 17) & 7);
    pos = pos + mlen;                     // early: cursor resolves here
    int k;
    int acc = 0;
    for (k = 0; k < 6; k = k + 1) {       // heavy emit/model update work
      acc = acc + (((STREAM[base + k] >> 7) * 31 + k) & 1023);
    }
    LITCNT[head] = LITCNT[head] + 1;
    emitted = emitted + acc;
  }
  CHK = emitted;
  return emitted & 65535;
}
"""

_VPR = r"""
// vpr_like: placement annealing. Each move reads and writes two
// data-dependent cells: frequent, scattered memory LCDs on top of a serial
// netlist-parse phase.
int NC = 512;
int NMOVE = 1500;
int CELLS[512];
int MOVA[1500]; int MOVB[1500];
int CHK = 0;

int main() {
  int m; int i;
  int accepted = 0;
  CELLS[0] = 99991;
  for (i = 1; i < NC; i = i + 1) {
    CELLS[i] = (CELLS[i - 1] * 69069 + 12345 + i) & 2147483647;
  }
  MOVA[0] = 7;
  for (m = 1; m < NMOVE; m = m + 1) {
    MOVA[m] = (MOVA[m - 1] * 1103515245 + 12345) & 2147483647;
  }
  for (m = 0; m < NMOVE; m = m + 1) { MOVB[m] = (MOVA[m] >> 13) & 511; }
  for (m = 0; m < NMOVE; m = m + 1) {
    int a = (MOVA[m] >> 5) & 511;
    int b = MOVB[m];
    int ca = CELLS[a];
    int cb = CELLS[b];
    int delta = ((cb & 1023) - (ca & 1023)) * ((m & 3) - 1);
    if (delta < 16) {
      CELLS[a] = cb;
      CELLS[b] = ca;
      accepted = accepted + 1;
    }
  }
  CHK = accepted;
  return accepted;
}
"""

_GCC = r"""
// gcc_like: compiler-ish passes over a serially-built instruction table:
// per-instruction classification through a helper (parallel at fn2), then a
// worklist sweep with a data-dependent early cursor.
int NI = 2200;
int OPS[2200]; int USES[2200]; int FLAGS[2200];
int CHK = 0;

int classify(int op) {
  if ((op & 3) == 0) { return 2; }
  if ((op & 7) < 3) { return 1; }
  return 3;
}

int main() {
  int i;
  int cursor = 0;
  int marks = 0;
  OPS[0] = 31337;
  for (i = 1; i < NI; i = i + 1) {
    OPS[i] = (OPS[i - 1] * 1103515245 + 12345 + i * 7) & 2147483647;
  }
  for (i = 0; i < NI; i = i + 1) { USES[i] = (OPS[i] >> 19) & 7; }
  // Pass 1: per-instruction classification (parallel once calls allowed).
  for (i = 0; i < NI; i = i + 1) {
    FLAGS[i] = classify((OPS[i] >> 8) & 63);
  }
  // Pass 2: worklist walk with a data-dependent stride (early cursor).
  while (cursor < NI - 4) {
    int at = cursor;
    int stride = 1 + ((OPS[at] >> 11) & 3);
    cursor = cursor + stride;             // early cursor resolution
    int j;
    int localsum = 0;
    for (j = 0; j < 4; j = j + 1) {
      localsum = localsum + FLAGS[(at + j) % 2200] * USES[(at + j) % 2200];
    }
    marks = marks + localsum;
  }
  CHK = marks;
  return marks & 65535;
}
"""

_MCF = r"""
// mcf_like: arc relaxation over a serially-parsed network. Only the rare
// candidate arcs probe the shared dual (early read, late rewrite), so
// conflicting iterations are infrequent -- the Fig. 4 181_mcf
// PDOALL-beats-HELIX shape. (Probing on every iteration would push the
// conflicting-iteration fraction past the paper's 80 % serial cutoff.)
int NA = 1400;
int ARCS[1400];
int POT[128];
int DUAL[1];
int CHK = 0;

int main() {
  int a;
  int improved = 0;
  ARCS[0] = 271828;
  for (a = 1; a < NA; a = a + 1) {
    ARCS[a] = (ARCS[a - 1] * 69069 + 90001 + a) & 2147483647;
  }
  for (a = 0; a < 128; a = a + 1) { POT[a] = (ARCS[a * 4] >> 21) & 63; }
  DUAL[0] = 1000000;
  for (a = 0; a < NA; a = a + 1) {
    int probe = ARCS[a] & 31;   // rare candidate arcs relax the dual
    int best = 0;
    if (probe == 0) {
      best = DUAL[0];           // early read of the running-min dual
    }
    int tail = (ARCS[a] >> 7) & 127;
    int head = (ARCS[a] >> 14) & 127;
    int reduced = ((ARCS[a] >> 5) & 255) + POT[tail] - POT[head];
    int w;
    int score = 0;
    for (w = 0; w < 8; w = w + 1) {
      score = score + ((reduced * (w + 3)) & 255);
    }
    improved = improved + (score & 7);
    if (probe == 0) {
      if (reduced < best) {     // rare (running min), late rewrite
        DUAL[0] = reduced;
      }
    }
  }
  CHK = improved;
  return improved & 65535;
}
"""

_CRAFTY = r"""
// crafty_like: board evaluation. An early xor-mask register LCD plus
// popcount chains: register-only constraints, the dep3 showcase (the
// bitboards themselves arrive through a serial parse chain).
int NPOS = 900;
int BOARDS[900];
int CHK = 0;

int main() {
  int p;
  int total = 0;
  BOARDS[0] = 555557;
  for (p = 1; p < NPOS; p = p + 1) {
    BOARDS[p] = (BOARDS[p - 1] * 1103515245 + 12345 + p * 3) & 2147483647;
  }
  int mask = 0;
  for (p = 0; p < NPOS; p = p + 1) {
    mask = mask ^ BOARDS[p];      // early, unpredictable register LCD
    int bits = BOARDS[p];
    int count = 0;
    while (bits != 0) {
      bits = bits & (bits - 1);   // unpredictable chain: b = b & (b-1)
      count = count + 1;
    }
    int score = count * 16 + ((BOARDS[p] ^ mask) & 15);
    total = total + score;
  }
  CHK = total;
  return total & 65535;
}
"""

_PARSER = r"""
// parser_like: tokenizer over serially-read text. Early data-dependent
// cursor advance plus link counting into a hash table.
int TLEN = 8000;
int TEXT[8000];
int LINKS[256];
int CHK = 0;

int main() {
  int i;
  int pos = 0;
  int tokens = 0;
  TEXT[0] = 1299709;
  for (i = 1; i < TLEN; i = i + 1) {
    TEXT[i] = (TEXT[i - 1] * 69069 + 12345 + i) & 2147483647;
  }
  while (pos < TLEN - 8) {
    int at = pos;
    int tlen = 1 + ((TEXT[at] >> 15) & 3);
    pos = pos + tlen;                    // early cursor resolution
    int h = 0;
    int k;
    for (k = 0; k < 5; k = k + 1) {
      h = (h * 33 + ((TEXT[at + k] >> 9) & 127)) & 255;
    }
    LINKS[h] = LINKS[h] + 1;
    tokens = tokens + 1;
  }
  CHK = tokens;
  return tokens;
}
"""

_EON = r"""
// eon_like: C++-style rendering pipeline: per-probe shading through small
// helpers. Independent probes -> parallel at fn2; the scene description is
// parsed serially first.
int NPROBE = 1400;
int SCENE[1400];
int SHADE[1400];
int CHK = 0;

int facet(int x, int y) {
  int d = x * x + y * y;
  return (d >> 4) & 255;
}

int lightmix(int base, int f) {
  return (base * (255 - f) + f * 96) >> 8;
}

int main() {
  int p;
  int total = 0;
  SCENE[0] = 104729;
  for (p = 1; p < NPROBE; p = p + 1) {
    SCENE[p] = (SCENE[p - 1] * 1103515245 + 12345 + p) & 2147483647;
  }
  for (p = 0; p < NPROBE; p = p + 1) {
    int x = (SCENE[p] >> 8) & 63;
    int y = (SCENE[p] >> 17) & 63;
    int f = facet(x, y);
    SHADE[p] = lightmix(x + y, f);
  }
  for (p = 0; p < NPROBE; p = p + 1) { total = total + SHADE[p]; }
  CHK = total;
  return total & 65535;
}
"""

_PERLBMK = r"""
// perlbmk_like: bytecode interpreter. The instruction pointer advances by a
// data-dependent opcode length (early); the virtual stack pointer is a
// frequent memory LCD whose producers also sit early in the iteration.
int PLEN = 6000;
int PROG[6000];
int STACK[256];
int SP[1];
int CHK = 0;

int main() {
  int i;
  int ip = 0;
  int executed = 0;
  PROG[0] = 611953;
  for (i = 1; i < PLEN; i = i + 1) {
    PROG[i] = (PROG[i - 1] * 69069 + 12345 + i * 5) & 2147483647;
  }
  SP[0] = 8;
  while (ip < PLEN - 4) {
    int base = ip;
    int op = (PROG[base] >> 10) & 63;
    int oplen = 1 + (op & 3);
    ip = ip + oplen;                      // early: ip resolves here
    int sp = SP[0];
    int nsp = sp;
    if ((op & 12) == 0) { nsp = sp + 1; }
    if ((op & 12) == 4) { nsp = sp - 1; }
    if (nsp < 4) { nsp = 4; }
    if (nsp > 250) { nsp = 250; }
    SP[0] = nsp;                          // early store of the new SP
    int k;
    int work = 0;
    for (k = 0; k < 5; k = k + 1) {       // late: opcode "execution"
      work = work + ((op * (k + 7) + base) & 511);
    }
    STACK[nsp] = work & 1023;
    executed = executed + 1;
  }
  CHK = executed;
  return executed & 65535;
}
"""

_GAP = r"""
// gap_like: multi-precision arithmetic. The outer loop over independent
// bignum pairs is parallel (at fn2); the inner digit loop carries the late
// carry -> early consumer chain that nothing short of dep3 removes. The
// operand digits arrive through a serial parse chain.
int NB = 170;
int ND = 18;
int RAW[3060];
int ANUM[3060]; int BNUM[3060]; int RNUM[3060];
int CHK = 0;

int norm_digit(int s) {
  if (s < 0) { return 0; }
  return s % 10;
}

int main() {
  int n; int d;
  int checks = 0;
  RAW[0] = 777781;
  for (n = 1; n < NB * ND; n = n + 1) {
    RAW[n] = (RAW[n - 1] * 1103515245 + 12345 + n) & 2147483647;
  }
  for (n = 0; n < NB * ND; n = n + 1) {
    ANUM[n] = (RAW[n] >> 9) % 10;
    BNUM[n] = (RAW[n] >> 17) % 10;
  }
  for (n = 0; n < NB; n = n + 1) {
    int carry = 0;
    for (d = 0; d < ND; d = d + 1) {
      int s = ANUM[n * ND + d] + BNUM[n * ND + d] + carry;
      RNUM[n * ND + d] = norm_digit(s);
      carry = s / 10;                     // late producer, early consumer
    }
    checks = checks + RNUM[n * ND] + carry;
  }
  CHK = checks;
  return checks & 65535;
}
"""

_VORTEX = r"""
// vortex_like: object-database transactions over a serially-parsed journal.
// Object sizes drive an early allocation cursor; inserts hash into buckets
// with occasional aliasing.
int NTX = 1100;
int JRNL[1100];
int BUCKETS[128];
int HEAP[8192];
int CHK = 0;

int main() {
  int t;
  int top = 0;
  int stored = 0;
  JRNL[0] = 424243;
  for (t = 1; t < NTX; t = t + 1) {
    JRNL[t] = (JRNL[t - 1] * 69069 + 90017 + t) & 2147483647;
  }
  for (t = 0; t < NTX; t = t + 1) {
    int sz = 2 + ((JRNL[t] >> 13) & 5);
    int base = top;
    top = top + sz;                       // early cursor (data-dependent)
    int k;
    int sig = 0;
    for (k = 0; k < sz; k = k + 1) {
      HEAP[(base + k) & 8191] = (t * 37 + k) & 255;
      sig = sig + HEAP[(base + k) & 8191];
    }
    int b = sig & 127;
    BUCKETS[b] = BUCKETS[b] + 1;
    stored = stored + 1;
  }
  CHK = stored + top;
  return (stored + top) & 65535;
}
"""

_BZIP2 = r"""
// bzip2_like: run-length + MTF modelling over serially-read data. The RLE
// cursor is unpredictable and resolves early; the model update below
// dominates.
int BLEN = 7000;
int DATA[7000];
int FREQ[64];
int CHK = 0;

int main() {
  int i;
  int pos = 0;
  int outlen = 0;
  DATA[0] = 888887;
  for (i = 1; i < BLEN; i = i + 1) {
    DATA[i] = (DATA[i - 1] * 1103515245 + 12345 + i * 11) & 2147483647;
  }
  while (pos < BLEN - 6) {
    int sym = (DATA[pos] >> 12) & 63;
    int run = 1;
    if (((DATA[pos + 1] >> 12) & 63) == sym) { run = 2; }
    if (run == 2 && ((DATA[pos + 2] >> 12) & 63) == sym) { run = 3; }
    pos = pos + run;                       // early-resolved cursor
    int k;                                 // model update work
    int acc = 0;
    for (k = 0; k < 5; k = k + 1) {
      acc = acc + ((sym * 17 + k * 29) & 255);
    }
    FREQ[sym] = FREQ[sym] + run;
    outlen = outlen + acc;
  }
  CHK = outlen;
  return outlen & 65535;
}
"""

_TWOLF = r"""
// twolf_like: standard-cell annealing with row-occupancy bookkeeping:
// frequent scattered memory LCDs keep it near-serial; a periodic
// temperature log uses unsafe I/O (fn3-only territory).
int NC = 400;
int NMOVE = 1200;
int ROWOCC[32];
int CELLROW[400];
int RNDS[1200];
int CHK = 0;

int main() {
  int m; int i;
  int cost = 0;
  RNDS[0] = 121523;
  for (m = 1; m < NMOVE; m = m + 1) {
    RNDS[m] = (RNDS[m - 1] * 69069 + 12345 + m) & 2147483647;
  }
  for (i = 0; i < NC; i = i + 1) {
    CELLROW[i] = (RNDS[i] >> 16) & 31;
    ROWOCC[CELLROW[i]] = ROWOCC[CELLROW[i]] + 1;
  }
  for (m = 0; m < NMOVE; m = m + 1) {
    int c = (RNDS[m] >> 7) % 400;
    int newrow = (RNDS[m] >> 21) & 31;
    int oldrow = CELLROW[c];
    int gain = ROWOCC[oldrow] - ROWOCC[newrow];
    if (gain > 0) {
      ROWOCC[oldrow] = ROWOCC[oldrow] - 1;
      ROWOCC[newrow] = ROWOCC[newrow] + 1;
      CELLROW[c] = newrow;
      cost = cost + gain;
    }
    if ((m & 511) == 511) { print_int(cost); }
  }
  CHK = cost;
  return cost & 65535;
}
"""


def programs():
    """The SpecINT2000-like suite."""
    return [
        BenchmarkProgram(
            "gzip_like", "specint2000", _GZIP,
            "LZ scan: early data-dependent cursor + heavy emit work",
            (TRAIT_UNPREDICTABLE_LCD, TRAIT_FREQUENT_MEM_LCD),
        ),
        BenchmarkProgram(
            "vpr_like", "specint2000", _VPR,
            "placement annealing: scattered read/write cell conflicts",
            (TRAIT_FREQUENT_MEM_LCD,),
        ),
        BenchmarkProgram(
            "gcc_like", "specint2000", _GCC,
            "compiler passes: helper calls + worklist cursor",
            (TRAIT_CALLS, TRAIT_UNPREDICTABLE_LCD, TRAIT_DOALL),
        ),
        BenchmarkProgram(
            "mcf_like", "specint2000", _MCF,
            "arc relaxation with rare potential rewrites (PDOALL wins)",
            (TRAIT_INFREQUENT_MEM_LCD, TRAIT_PDOALL_FRIENDLY),
        ),
        BenchmarkProgram(
            "crafty_like", "specint2000", _CRAFTY,
            "board eval: xor-mask + popcount chains (dep3 unlocks)",
            (TRAIT_UNPREDICTABLE_LCD,),
        ),
        BenchmarkProgram(
            "parser_like", "specint2000", _PARSER,
            "tokenizer: early cursor + hash-bucket link counts",
            (TRAIT_UNPREDICTABLE_LCD, TRAIT_INFREQUENT_MEM_LCD),
        ),
        BenchmarkProgram(
            "eon_like", "specint2000", _EON,
            "probe shading through helpers: parallel only at fn2",
            (TRAIT_DOALL, TRAIT_CALLS),
        ),
        BenchmarkProgram(
            "perlbmk_like", "specint2000", _PERLBMK,
            "bytecode interpreter: early ip/sp, late opcode execution",
            (TRAIT_UNPREDICTABLE_LCD, TRAIT_FREQUENT_MEM_LCD),
        ),
        BenchmarkProgram(
            "gap_like", "specint2000", _GAP,
            "bignum adds: parallel numbers over serial carry chains",
            (TRAIT_DOALL, TRAIT_UNPREDICTABLE_LCD, TRAIT_CALLS),
        ),
        BenchmarkProgram(
            "vortex_like", "specint2000", _VORTEX,
            "object DB: early allocation cursor + bucket inserts",
            (TRAIT_UNPREDICTABLE_LCD, TRAIT_INFREQUENT_MEM_LCD),
        ),
        BenchmarkProgram(
            "bzip2_like", "specint2000", _BZIP2,
            "RLE/MTF: early run-length cursor + model updates",
            (TRAIT_UNPREDICTABLE_LCD, TRAIT_FREQUENT_MEM_LCD),
        ),
        BenchmarkProgram(
            "twolf_like", "specint2000", _TWOLF,
            "cell annealing with unsafe logging (fn3-only loop)",
            (TRAIT_FREQUENT_MEM_LCD, TRAIT_UNSAFE_CALLS),
        ),
    ]
