"""repro.bench — the synthetic SPEC/EEMBC benchmark suites and runner."""

from .program import BenchmarkProgram
from .suites import (
    ALL_SUITES,
    NON_NUMERIC_SUITES,
    NUMERIC_SUITES,
    SuiteRunner,
    all_programs,
    default_runner,
    find_program,
    suite_programs,
)

__all__ = [
    "ALL_SUITES",
    "BenchmarkProgram",
    "NON_NUMERIC_SUITES",
    "NUMERIC_SUITES",
    "SuiteRunner",
    "all_programs",
    "default_runner",
    "find_program",
    "suite_programs",
]
