"""Lexer for MiniC."""

from __future__ import annotations

from ..errors import ParseError

KEYWORDS = {
    "int", "float", "void", "if", "else", "while", "for",
    "return", "break", "continue",
}

# Longest-match-first punctuation table.
PUNCTUATION = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",",
]


class Token:
    __slots__ = ("kind", "text", "value", "line", "column")

    def __init__(self, kind, text, value, line, column):
        self.kind = kind      # 'int', 'float', 'ident', 'kw', 'punct', 'eof'
        self.text = text
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self):
        return f"<Token {self.kind} {self.text!r} @{self.line}:{self.column}>"


def tokenize(source):
    """Convert MiniC source text into a token list ending with an EOF token."""
    tokens = []
    position = 0
    line = 1
    line_start = 0
    length = len(source)

    def column():
        return position - line_start + 1

    while position < length:
        char = source[position]
        if char == "\n":
            line += 1
            position += 1
            line_start = position
            continue
        if char in " \t\r":
            position += 1
            continue
        if source.startswith("//", position):
            newline = source.find("\n", position)
            position = length if newline < 0 else newline
            continue
        if source.startswith("/*", position):
            closing = source.find("*/", position + 2)
            if closing < 0:
                raise ParseError("unterminated block comment", line, column())
            for offset in range(position, closing):
                if source[offset] == "\n":
                    line += 1
                    line_start = offset + 1
            position = closing + 2
            continue
        if char.isdigit() or (char == "." and position + 1 < length and source[position + 1].isdigit()):
            start = position
            start_column = column()
            is_float = False
            while position < length and source[position].isdigit():
                position += 1
            if position < length and source[position] == ".":
                is_float = True
                position += 1
                while position < length and source[position].isdigit():
                    position += 1
            if position < length and source[position] in "eE":
                lookahead = position + 1
                if lookahead < length and source[lookahead] in "+-":
                    lookahead += 1
                if lookahead < length and source[lookahead].isdigit():
                    is_float = True
                    position = lookahead
                    while position < length and source[position].isdigit():
                        position += 1
            text = source[start:position]
            if is_float:
                tokens.append(Token("float", text, float(text), line, start_column))
            else:
                tokens.append(Token("int", text, int(text), line, start_column))
            continue
        if char.isalpha() or char == "_":
            start = position
            start_column = column()
            while position < length and (source[position].isalnum() or source[position] == "_"):
                position += 1
            text = source[start:position]
            kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, text, line, start_column))
            continue
        for punct in PUNCTUATION:
            if source.startswith(punct, position):
                tokens.append(Token("punct", punct, punct, line, column()))
                position += len(punct)
                break
        else:
            raise ParseError(f"unexpected character {char!r}", line, column())

    tokens.append(Token("eof", "", None, line, column()))
    return tokens
