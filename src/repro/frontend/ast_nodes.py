"""Abstract syntax tree for MiniC.

Plain node classes with position info; semantic analysis annotates expression
nodes with ``.ty`` (an IR type) which code generation then consumes.
"""

from __future__ import annotations


class Node:
    """Base AST node; ``line`` is the 1-based source line."""

    __slots__ = ("line",)

    def __init__(self, line):
        self.line = line


# -- top level ------------------------------------------------------------------


class Program(Node):
    __slots__ = ("declarations",)

    def __init__(self, declarations):
        super().__init__(1)
        self.declarations = declarations


class GlobalDecl(Node):
    """``int A[100] = {...};`` or ``float x = 1.5;`` at file scope."""

    __slots__ = ("base_type", "name", "array_size", "initializer")

    def __init__(self, line, base_type, name, array_size, initializer):
        super().__init__(line)
        self.base_type = base_type      # 'int' | 'float'
        self.name = name
        self.array_size = array_size    # None for scalars
        self.initializer = initializer  # scalar literal, list, or None


class Param(Node):
    __slots__ = ("base_type", "name", "is_pointer", "symbol")

    def __init__(self, line, base_type, name, is_pointer):
        super().__init__(line)
        self.base_type = base_type
        self.name = name
        self.is_pointer = is_pointer
        self.symbol = None  # bound by sema


class FunctionDecl(Node):
    __slots__ = ("return_type", "name", "params", "body")

    def __init__(self, line, return_type, name, params, body):
        super().__init__(line)
        self.return_type = return_type  # 'int' | 'float' | 'void'
        self.name = name
        self.params = params
        self.body = body


# -- statements ------------------------------------------------------------------


class Block(Node):
    __slots__ = ("statements",)

    def __init__(self, line, statements):
        super().__init__(line)
        self.statements = statements


class VarDecl(Node):
    """Local declaration; arrays may not have initializers."""

    __slots__ = ("base_type", "name", "array_size", "initializer", "symbol")

    def __init__(self, line, base_type, name, array_size, initializer):
        super().__init__(line)
        self.base_type = base_type
        self.name = name
        self.array_size = array_size
        self.initializer = initializer
        self.symbol = None  # bound by sema


class Assign(Node):
    """``target = value;`` — target is Identifier or Index."""

    __slots__ = ("target", "value")

    def __init__(self, line, target, value):
        super().__init__(line)
        self.target = target
        self.value = value


class ExprStatement(Node):
    __slots__ = ("expression",)

    def __init__(self, line, expression):
        super().__init__(line)
        self.expression = expression


class If(Node):
    __slots__ = ("condition", "then_body", "else_body")

    def __init__(self, line, condition, then_body, else_body):
        super().__init__(line)
        self.condition = condition
        self.then_body = then_body
        self.else_body = else_body


class While(Node):
    __slots__ = ("condition", "body")

    def __init__(self, line, condition, body):
        super().__init__(line)
        self.condition = condition
        self.body = body


class For(Node):
    """``for (init; cond; step) body`` — init/step are statements or None."""

    __slots__ = ("init", "condition", "step", "body")

    def __init__(self, line, init, condition, step, body):
        super().__init__(line)
        self.init = init
        self.condition = condition
        self.step = step
        self.body = body


class Return(Node):
    __slots__ = ("value",)

    def __init__(self, line, value):
        super().__init__(line)
        self.value = value


class Break(Node):
    __slots__ = ()


class Continue(Node):
    __slots__ = ()


# -- expressions ------------------------------------------------------------------


class Expr(Node):
    __slots__ = ("ty",)

    def __init__(self, line):
        super().__init__(line)
        self.ty = None  # annotated by sema with an IR type


class IntLiteral(Expr):
    __slots__ = ("value",)

    def __init__(self, line, value):
        super().__init__(line)
        self.value = value


class FloatLiteral(Expr):
    __slots__ = ("value",)

    def __init__(self, line, value):
        super().__init__(line)
        self.value = value


class Identifier(Expr):
    __slots__ = ("name", "symbol")

    def __init__(self, line, name):
        super().__init__(line)
        self.name = name
        self.symbol = None  # bound by sema


class Index(Expr):
    """``base[index]`` — base is an array or pointer expression."""

    __slots__ = ("base", "index")

    def __init__(self, line, base, index):
        super().__init__(line)
        self.base = base
        self.index = index


class Call(Expr):
    __slots__ = ("name", "args", "callee")

    def __init__(self, line, name, args):
        super().__init__(line)
        self.name = name
        self.args = args
        self.callee = None  # bound by sema


class Unary(Expr):
    """``-x``, ``!x``, ``&lvalue``."""

    __slots__ = ("op", "operand")

    def __init__(self, line, op, operand):
        super().__init__(line)
        self.op = op
        self.operand = operand


class Binary(Expr):
    """Arithmetic / comparison / bitwise / logical binary operators."""

    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, line, op, lhs, rhs):
        super().__init__(line)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class CastExpr(Expr):
    """``(int) expr`` or ``(float) expr``."""

    __slots__ = ("target", "operand")

    def __init__(self, line, target, operand):
        super().__init__(line)
        self.target = target  # 'int' | 'float'
        self.operand = operand
