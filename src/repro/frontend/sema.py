"""Semantic analysis for MiniC.

Resolves names, type-checks every expression, and annotates the AST:

* each ``Expr`` node gets ``.ty`` — an IR type (``I32``, ``F64``, pointer or
  array types for address-producing expressions);
* each ``Identifier`` gets ``.symbol``;
* each ``Call`` gets ``.callee`` — the :class:`Signature` it resolves to.

Type rules are C-flavoured: ``int`` and ``float`` mix in arithmetic with
promotion to ``float``; comparisons and logical operators yield ``int``;
narrowing ``float -> int`` requires an explicit ``(int)`` cast; arrays decay
to element pointers in call arguments and indexing.
"""

from __future__ import annotations

from ..errors import SemanticError
from ..interp.intrinsics import INTRINSICS
from ..ir.types import F64, I32, VOID, ArrayType, PointerType
from . import ast_nodes as ast

_BASE_TYPES = {"int": I32, "float": F64, "void": VOID}


class Symbol:
    """A named variable. ``value_type`` is the type the *name* denotes:
    a scalar type, an ArrayType (for arrays), or a PointerType (for pointer
    parameters)."""

    __slots__ = ("name", "kind", "value_type", "line")

    def __init__(self, name, kind, value_type, line):
        self.name = name
        self.kind = kind  # 'global' | 'local' | 'param'
        self.value_type = value_type
        self.line = line

    def __repr__(self):
        return f"<Symbol {self.name} ({self.kind}): {self.value_type!r}>"


class Signature:
    """A callable's resolved signature."""

    __slots__ = ("name", "param_types", "return_type", "is_intrinsic")

    def __init__(self, name, param_types, return_type, is_intrinsic):
        self.name = name
        self.param_types = tuple(param_types)
        self.return_type = return_type
        self.is_intrinsic = is_intrinsic


class Scope:
    def __init__(self, parent=None):
        self.parent = parent
        self.symbols = {}

    def declare(self, symbol):
        if symbol.name in self.symbols:
            raise SemanticError(
                f"redeclaration of {symbol.name!r}", symbol.line
            )
        self.symbols[symbol.name] = symbol

    def lookup(self, name):
        scope = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


class SemaResult:
    """Annotated program plus the symbol/signature tables codegen needs."""

    def __init__(self, program, globals_, signatures):
        self.program = program
        self.globals = globals_          # name -> Symbol (kind 'global')
        self.signatures = signatures     # name -> Signature


def _is_numeric(type_):
    return type_ is I32 or type_ is F64


class SemanticAnalyzer:
    def __init__(self, program):
        self.program = program
        self.globals = {}
        self.signatures = {}
        self.current_return = None
        self.loop_depth = 0

    def run(self):
        # Intrinsic signatures are always visible.
        for info in INTRINSICS.values():
            self.signatures[info.name] = Signature(
                info.name, info.param_types, info.return_type, True
            )
        # First pass: collect globals and function signatures (so forward
        # calls and mutual recursion type-check).
        for declaration in self.program.declarations:
            if isinstance(declaration, ast.GlobalDecl):
                self._declare_global(declaration)
            elif isinstance(declaration, ast.FunctionDecl):
                self._declare_function(declaration)
        # Second pass: check function bodies.
        for declaration in self.program.declarations:
            if isinstance(declaration, ast.FunctionDecl):
                self._check_function(declaration)
        if "main" not in self.signatures or self.signatures["main"].is_intrinsic:
            raise SemanticError("program has no main() function")
        main = self.signatures["main"]
        if main.param_types or main.return_type is not I32:
            raise SemanticError("main must be declared as 'int main()'")
        return SemaResult(self.program, self.globals, self.signatures)

    # -- declarations --------------------------------------------------------

    def _declare_global(self, decl):
        base = _BASE_TYPES[decl.base_type]
        value_type = (
            ArrayType(base, decl.array_size) if decl.array_size is not None else base
        )
        if decl.name in self.globals or decl.name in self.signatures:
            raise SemanticError(f"redeclaration of {decl.name!r}", decl.line)
        if decl.array_size is None and isinstance(decl.initializer, list):
            raise SemanticError(
                f"scalar global {decl.name!r} cannot take a brace initializer",
                decl.line,
            )
        if decl.array_size is not None and decl.initializer is not None:
            if not isinstance(decl.initializer, list):
                raise SemanticError(
                    f"array global {decl.name!r} needs a brace initializer",
                    decl.line,
                )
            if len(decl.initializer) > decl.array_size:
                raise SemanticError(
                    f"too many initializers for {decl.name!r}", decl.line
                )
        self.globals[decl.name] = Symbol(decl.name, "global", value_type, decl.line)

    def _declare_function(self, decl):
        if decl.name in self.signatures or decl.name in self.globals:
            raise SemanticError(f"redeclaration of {decl.name!r}", decl.line)
        param_types = []
        for param in decl.params:
            base = _BASE_TYPES[param.base_type]
            param_types.append(PointerType(base) if param.is_pointer else base)
        self.signatures[decl.name] = Signature(
            decl.name, param_types, _BASE_TYPES[decl.return_type], False
        )

    # -- functions --------------------------------------------------------------

    def _check_function(self, decl):
        self.current_return = _BASE_TYPES[decl.return_type]
        scope = Scope()
        for param, param_type in zip(decl.params, self.signatures[decl.name].param_types):
            symbol = Symbol(param.name, "param", param_type, param.line)
            scope.declare(symbol)
            param.symbol = symbol
        self._check_block(decl.body, Scope(scope))
        self.current_return = None

    def _check_block(self, block, scope):
        for statement in block.statements:
            self._check_statement(statement, scope)

    def _check_statement(self, statement, scope):
        if isinstance(statement, ast.Block):
            self._check_block(statement, Scope(scope))
        elif isinstance(statement, ast.VarDecl):
            base = _BASE_TYPES[statement.base_type]
            value_type = (
                ArrayType(base, statement.array_size)
                if statement.array_size is not None
                else base
            )
            if statement.initializer is not None:
                init_type = self._check_expr(statement.initializer, scope)
                self._require_convertible(init_type, base, statement.line)
            symbol = Symbol(statement.name, "local", value_type, statement.line)
            scope.declare(symbol)
            statement.symbol = symbol
        elif isinstance(statement, ast.Assign):
            target_type = self._check_expr(statement.target, scope)
            if not target_type.is_scalar:
                raise SemanticError("cannot assign to an array", statement.line)
            value_type = self._check_expr(statement.value, scope)
            self._require_convertible(value_type, target_type, statement.line)
        elif isinstance(statement, ast.ExprStatement):
            self._check_expr(statement.expression, scope)
        elif isinstance(statement, ast.If):
            self._require_condition(statement.condition, scope)
            self._check_statement(statement.then_body, Scope(scope))
            if statement.else_body is not None:
                self._check_statement(statement.else_body, Scope(scope))
        elif isinstance(statement, ast.While):
            self._require_condition(statement.condition, scope)
            self.loop_depth += 1
            self._check_statement(statement.body, Scope(scope))
            self.loop_depth -= 1
        elif isinstance(statement, ast.For):
            inner = Scope(scope)
            if statement.init is not None:
                self._check_statement(statement.init, inner)
            if statement.condition is not None:
                self._require_condition(statement.condition, inner)
            self.loop_depth += 1
            if statement.step is not None:
                self._check_statement(statement.step, inner)
            self._check_statement(statement.body, Scope(inner))
            self.loop_depth -= 1
        elif isinstance(statement, ast.Return):
            if self.current_return is VOID:
                if statement.value is not None:
                    raise SemanticError(
                        "void function cannot return a value", statement.line
                    )
            else:
                if statement.value is None:
                    raise SemanticError(
                        "non-void function must return a value", statement.line
                    )
                value_type = self._check_expr(statement.value, scope)
                self._require_convertible(
                    value_type, self.current_return, statement.line
                )
        elif isinstance(statement, (ast.Break, ast.Continue)):
            if self.loop_depth == 0:
                keyword = "break" if isinstance(statement, ast.Break) else "continue"
                raise SemanticError(f"{keyword} outside a loop", statement.line)
        else:
            raise SemanticError(f"unknown statement {statement!r}")

    # -- expressions --------------------------------------------------------------

    def _check_expr(self, node, scope):
        node.ty = self._type_of(node, scope)
        return node.ty

    def _type_of(self, node, scope):
        if isinstance(node, ast.IntLiteral):
            return I32
        if isinstance(node, ast.FloatLiteral):
            return F64
        if isinstance(node, ast.Identifier):
            symbol = scope.lookup(node.name) or self.globals.get(node.name)
            if symbol is None:
                raise SemanticError(f"use of undeclared name {node.name!r}", node.line)
            node.symbol = symbol
            return symbol.value_type
        if isinstance(node, ast.Index):
            base_type = self._check_expr(node.base, scope)
            index_type = self._check_expr(node.index, scope)
            if index_type is not I32:
                raise SemanticError("array index must be int", node.line)
            if base_type.is_array:
                return base_type.element
            if base_type.is_pointer:
                return base_type.pointee
            raise SemanticError("indexed value is not an array or pointer", node.line)
        if isinstance(node, ast.Call):
            signature = self.signatures.get(node.name)
            if signature is None:
                raise SemanticError(f"call to unknown function {node.name!r}", node.line)
            if len(node.args) != len(signature.param_types):
                raise SemanticError(
                    f"{node.name}() expects {len(signature.param_types)} "
                    f"arguments, got {len(node.args)}",
                    node.line,
                )
            for argument, expected in zip(node.args, signature.param_types):
                actual = self._check_expr(argument, scope)
                if expected.is_pointer:
                    decayed = (
                        PointerType(actual.element) if actual.is_array else actual
                    )
                    if decayed is not expected:
                        raise SemanticError(
                            f"argument type {actual!r} does not match "
                            f"{expected!r} in call to {node.name}()",
                            node.line,
                        )
                else:
                    self._require_convertible(actual, expected, node.line)
            node.callee = signature
            return signature.return_type
        if isinstance(node, ast.Unary):
            if node.op == "&":
                operand_type = self._check_expr(node.operand, scope)
                if not isinstance(node.operand, (ast.Identifier, ast.Index)):
                    raise SemanticError("& requires an lvalue", node.line)
                if not operand_type.is_scalar:
                    raise SemanticError(
                        "& applies to scalars (arrays decay implicitly)", node.line
                    )
                return PointerType(operand_type)
            operand_type = self._check_expr(node.operand, scope)
            if node.op == "-":
                if not _is_numeric(operand_type):
                    raise SemanticError("unary - needs a numeric operand", node.line)
                return operand_type
            if node.op == "!":
                if operand_type is not I32:
                    raise SemanticError("! needs an int operand", node.line)
                return I32
            raise SemanticError(f"unknown unary operator {node.op!r}", node.line)
        if isinstance(node, ast.Binary):
            lhs = self._check_expr(node.lhs, scope)
            rhs = self._check_expr(node.rhs, scope)
            op = node.op
            if op in ("&&", "||"):
                if lhs is not I32 or rhs is not I32:
                    raise SemanticError(f"{op} needs int operands", node.line)
                return I32
            if op in ("%", "<<", ">>", "&", "|", "^"):
                if lhs is not I32 or rhs is not I32:
                    raise SemanticError(f"{op} needs int operands", node.line)
                return I32
            if op in ("==", "!=", "<", "<=", ">", ">="):
                if not (_is_numeric(lhs) and _is_numeric(rhs)):
                    raise SemanticError(
                        f"{op} needs numeric operands", node.line
                    )
                return I32
            if op in ("+", "-", "*", "/"):
                if not (_is_numeric(lhs) and _is_numeric(rhs)):
                    raise SemanticError(f"{op} needs numeric operands", node.line)
                return F64 if (lhs is F64 or rhs is F64) else I32
            raise SemanticError(f"unknown operator {op!r}", node.line)
        if isinstance(node, ast.CastExpr):
            operand_type = self._check_expr(node.operand, scope)
            if not _is_numeric(operand_type):
                raise SemanticError("casts apply to numeric values", node.line)
            return _BASE_TYPES[node.target]
        raise SemanticError(f"unknown expression {node!r}")

    # -- helpers --------------------------------------------------------------

    def _require_condition(self, node, scope):
        condition_type = self._check_expr(node, scope)
        if condition_type is not I32:
            raise SemanticError("condition must be int", node.line)

    @staticmethod
    def _require_convertible(actual, expected, line):
        if actual is expected:
            return
        if actual is I32 and expected is F64:
            return  # implicit widening
        raise SemanticError(
            f"cannot convert {actual!r} to {expected!r} "
            f"(narrowing needs an explicit cast)",
            line,
        )


def analyze(program):
    """Run semantic analysis; returns a :class:`SemaResult`."""
    return SemanticAnalyzer(program).run()
