"""Recursive-descent parser for MiniC.

Grammar (C-like precedence, lowest to highest)::

    program     := (global_decl | function_decl)*
    global_decl := type IDENT ('[' INT ']')? ('=' initializer)? ';'
    function    := ('int'|'float'|'void') IDENT '(' params ')' block
    statement   := block | var_decl | if | while | for | return
                 | 'break' ';' | 'continue' ';' | assign_or_expr ';'
    expr        := logical_or
    logical_or  := logical_and ('||' logical_and)*
    logical_and := bit_or ('&&' bit_or)*
    bit_or      := bit_xor ('|' bit_xor)*          (and so on down to unary)
    unary       := ('-'|'!'|'&') unary | '(' type ')' unary | postfix
    postfix     := primary ('[' expr ']' | '(' args ')')*
"""

from __future__ import annotations

from ..errors import ParseError
from . import ast_nodes as ast
from .lexer import tokenize


class Parser:
    def __init__(self, source):
        self.tokens = tokenize(source)
        self.position = 0

    # -- token helpers ------------------------------------------------------

    @property
    def current(self):
        return self.tokens[self.position]

    def peek(self, offset=1):
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self):
        token = self.current
        if token.kind != "eof":
            self.position += 1
        return token

    def check(self, kind, text=None):
        token = self.current
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind, text=None):
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind, text=None):
        if self.check(kind, text):
            return self.advance()
        want = text if text is not None else kind
        raise ParseError(
            f"expected {want!r}, found {self.current.text!r}",
            self.current.line,
            self.current.column,
        )

    # -- top level -------------------------------------------------------------

    def parse_program(self):
        declarations = []
        while not self.check("eof"):
            declarations.append(self._declaration())
        return ast.Program(declarations)

    def _declaration(self):
        line = self.current.line
        type_token = self.expect("kw")
        if type_token.text not in ("int", "float", "void"):
            raise ParseError(
                f"expected a type, found {type_token.text!r}",
                type_token.line, type_token.column,
            )
        name = self.expect("ident").text
        if self.check("punct", "("):
            return self._function_rest(line, type_token.text, name)
        if type_token.text == "void":
            raise ParseError("void is only valid as a return type", line)
        return self._global_rest(line, type_token.text, name)

    def _function_rest(self, line, return_type, name):
        self.expect("punct", "(")
        params = []
        if not self.check("punct", ")"):
            while True:
                param_line = self.current.line
                param_type = self.expect("kw").text
                if param_type not in ("int", "float"):
                    raise ParseError(
                        f"invalid parameter type {param_type!r}", param_line
                    )
                is_pointer = self.accept("punct", "*") is not None
                param_name = self.expect("ident").text
                params.append(ast.Param(param_line, param_type, param_name, is_pointer))
                if not self.accept("punct", ","):
                    break
        self.expect("punct", ")")
        body = self._block()
        return ast.FunctionDecl(line, return_type, name, params, body)

    def _global_rest(self, line, base_type, name):
        array_size = None
        if self.accept("punct", "["):
            array_size = self.expect("int").value
            self.expect("punct", "]")
        initializer = None
        if self.accept("punct", "="):
            if self.accept("punct", "{"):
                initializer = []
                if not self.check("punct", "}"):
                    while True:
                        initializer.append(self._literal_value())
                        if not self.accept("punct", ","):
                            break
                self.expect("punct", "}")
            else:
                initializer = self._literal_value()
        self.expect("punct", ";")
        return ast.GlobalDecl(line, base_type, name, array_size, initializer)

    def _literal_value(self):
        negative = self.accept("punct", "-") is not None
        token = self.advance()
        if token.kind not in ("int", "float"):
            raise ParseError(
                "global initializers must be literals", token.line, token.column
            )
        value = token.value
        return -value if negative else value

    # -- statements -------------------------------------------------------------

    def _block(self):
        line = self.expect("punct", "{").line
        statements = []
        while not self.check("punct", "}"):
            statements.append(self._statement())
        self.expect("punct", "}")
        return ast.Block(line, statements)

    def _statement(self):
        token = self.current
        if token.kind == "punct" and token.text == "{":
            return self._block()
        if token.kind == "kw":
            if token.text in ("int", "float"):
                return self._var_decl()
            if token.text == "if":
                return self._if()
            if token.text == "while":
                return self._while()
            if token.text == "for":
                return self._for()
            if token.text == "return":
                self.advance()
                value = None if self.check("punct", ";") else self._expression()
                self.expect("punct", ";")
                return ast.Return(token.line, value)
            if token.text == "break":
                self.advance()
                self.expect("punct", ";")
                return ast.Break(token.line)
            if token.text == "continue":
                self.advance()
                self.expect("punct", ";")
                return ast.Continue(token.line)
        statement = self._assign_or_expr()
        self.expect("punct", ";")
        return statement

    def _var_decl(self):
        line = self.current.line
        base_type = self.advance().text
        name = self.expect("ident").text
        array_size = None
        if self.accept("punct", "["):
            array_size = self.expect("int").value
            self.expect("punct", "]")
        initializer = None
        if self.accept("punct", "="):
            if array_size is not None:
                raise ParseError("array locals cannot have initializers", line)
            initializer = self._expression()
        self.expect("punct", ";")
        return ast.VarDecl(line, base_type, name, array_size, initializer)

    def _if(self):
        line = self.advance().line
        self.expect("punct", "(")
        condition = self._expression()
        self.expect("punct", ")")
        then_body = self._statement()
        else_body = None
        if self.accept("kw", "else"):
            else_body = self._statement()
        return ast.If(line, condition, then_body, else_body)

    def _while(self):
        line = self.advance().line
        self.expect("punct", "(")
        condition = self._expression()
        self.expect("punct", ")")
        body = self._statement()
        return ast.While(line, condition, body)

    def _for(self):
        line = self.advance().line
        self.expect("punct", "(")
        init = None
        if not self.check("punct", ";"):
            if self.check("kw", "int") or self.check("kw", "float"):
                init = self._var_decl()  # consumes the ';'
            else:
                init = self._assign_or_expr()
                self.expect("punct", ";")
        else:
            self.expect("punct", ";")
        condition = None
        if not self.check("punct", ";"):
            condition = self._expression()
        self.expect("punct", ";")
        step = None
        if not self.check("punct", ")"):
            step = self._assign_or_expr()
        self.expect("punct", ")")
        body = self._statement()
        return ast.For(line, init, condition, step, body)

    def _assign_or_expr(self):
        line = self.current.line
        expression = self._expression()
        if self.accept("punct", "="):
            if not isinstance(expression, (ast.Identifier, ast.Index)):
                raise ParseError("invalid assignment target", line)
            value = self._expression()
            return ast.Assign(line, expression, value)
        return ast.ExprStatement(line, expression)

    # -- expressions -------------------------------------------------------------

    def _expression(self):
        return self._binary_level(0)

    _LEVELS = [
        ["||"],
        ["&&"],
        ["|"],
        ["^"],
        ["&"],
        ["==", "!="],
        ["<", "<=", ">", ">="],
        ["<<", ">>"],
        ["+", "-"],
        ["*", "/", "%"],
    ]

    def _binary_level(self, level):
        if level >= len(self._LEVELS):
            return self._unary()
        operators = self._LEVELS[level]
        node = self._binary_level(level + 1)
        while self.current.kind == "punct" and self.current.text in operators:
            op_token = self.advance()
            rhs = self._binary_level(level + 1)
            node = ast.Binary(op_token.line, op_token.text, node, rhs)
        return node

    def _unary(self):
        token = self.current
        if token.kind == "punct" and token.text in ("-", "!", "&"):
            self.advance()
            operand = self._unary()
            return ast.Unary(token.line, token.text, operand)
        # A cast looks like '(' type ')' — disambiguate from parenthesized expr.
        if (
            token.kind == "punct"
            and token.text == "("
            and self.peek().kind == "kw"
            and self.peek().text in ("int", "float")
            and self.peek(2).kind == "punct"
            and self.peek(2).text == ")"
        ):
            self.advance()
            target = self.advance().text
            self.expect("punct", ")")
            operand = self._unary()
            return ast.CastExpr(token.line, target, operand)
        return self._postfix()

    def _postfix(self):
        node = self._primary()
        while True:
            if self.accept("punct", "["):
                index = self._expression()
                self.expect("punct", "]")
                node = ast.Index(node.line, node, index)
            elif isinstance(node, ast.Identifier) and self.check("punct", "("):
                self.advance()
                args = []
                if not self.check("punct", ")"):
                    while True:
                        args.append(self._expression())
                        if not self.accept("punct", ","):
                            break
                self.expect("punct", ")")
                node = ast.Call(node.line, node.name, args)
            else:
                return node

    def _primary(self):
        token = self.current
        if token.kind == "int":
            self.advance()
            return ast.IntLiteral(token.line, token.value)
        if token.kind == "float":
            self.advance()
            return ast.FloatLiteral(token.line, token.value)
        if token.kind == "ident":
            self.advance()
            return ast.Identifier(token.line, token.text)
        if token.kind == "punct" and token.text == "(":
            self.advance()
            expression = self._expression()
            self.expect("punct", ")")
            return expression
        raise ParseError(
            f"unexpected token {token.text!r}", token.line, token.column
        )


def parse(source):
    """Parse MiniC source text into an :class:`~ast_nodes.Program`."""
    return Parser(source).parse_program()
