"""IR code generation for MiniC.

Emits clang-at-``-O0``-style IR: every variable is an ``alloca`` with
explicit load/store traffic, short-circuit operators lower to control flow
through a temporary slot, and ``for``/``while`` lower to the canonical
header/body/step/exit shape. The standard pass pipeline (mem2reg and
friends) then rebuilds SSA — exactly the division of labour the paper's
compile-time component assumes.
"""

from __future__ import annotations

from ..errors import SemanticError
from ..interp.intrinsics import declare_intrinsics
from ..ir.builder import IRBuilder
from ..ir.module import Module
from ..ir.types import F64, I1, I32, VOID
from ..ir.values import ConstantFloat, ConstantInt
from . import ast_nodes as ast
from .parser import parse
from .sema import analyze

_COMPARE_INT = {"==": "eq", "!=": "ne", "<": "slt", "<=": "sle", ">": "sgt", ">=": "sge"}
_COMPARE_FLOAT = {"==": "oeq", "!=": "one", "<": "olt", "<=": "ole", ">": "ogt", ">=": "oge"}
_ARITH_INT = {"+": "add", "-": "sub", "*": "mul", "/": "sdiv", "%": "srem",
              "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "ashr"}
_ARITH_FLOAT = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}


class _LoopTargets:
    __slots__ = ("break_block", "continue_block")

    def __init__(self, break_block, continue_block):
        self.break_block = break_block
        self.continue_block = continue_block


class CodeGenerator:
    """Generates one IR module from an analyzed MiniC program."""

    def __init__(self, sema_result, module_name="program"):
        self.sema = sema_result
        self.module = Module(module_name)
        self.builder = IRBuilder()
        self.function = None
        self.addresses = {}   # id(Symbol) -> address Value
        self.loop_stack = []
        self._block_counter = 0

    # -- driving --------------------------------------------------------------

    def run(self):
        declare_intrinsics(self.module)
        for declaration in self.sema.program.declarations:
            if isinstance(declaration, ast.GlobalDecl):
                symbol = self.sema.globals[declaration.name]
                self.module.add_global(
                    symbol.value_type, declaration.name, declaration.initializer
                )
        # Declare all user functions first (forward calls / recursion).
        for declaration in self.sema.program.declarations:
            if isinstance(declaration, ast.FunctionDecl):
                signature = self.sema.signatures[declaration.name]
                self.module.add_function(
                    declaration.name, signature.return_type, signature.param_types
                )
        for declaration in self.sema.program.declarations:
            if isinstance(declaration, ast.FunctionDecl):
                self._emit_function(declaration)
        return self.module

    def _new_block(self, hint):
        self._block_counter += 1
        return self.function.append_block(f"{hint}{self._block_counter}")

    # -- functions --------------------------------------------------------------

    def _emit_function(self, decl):
        self.function = self.module.get_function(decl.name)
        self.addresses = {}
        self._block_counter = 0
        entry = self.function.append_block("entry")
        self.builder.position_at_end(entry)
        # Spill parameters into stack slots (mem2reg re-promotes them).
        for param_ast, argument in zip(decl.params, self.function.arguments):
            argument.name = param_ast.name
            slot = self.builder.alloca(argument.type, param_ast.name)
            self.builder.store(argument, slot)
            self._bind(param_ast, slot)
        self._emit_block(decl.body)
        if self.builder.block.terminator is None:
            return_type = self.function.function_type.return_type
            if return_type is VOID:
                self.builder.ret()
            elif return_type is F64:
                self.builder.ret(ConstantFloat(0.0))
            else:
                self.builder.ret(ConstantInt(return_type, 0))
        self.function = None

    def _bind(self, decl_node, address):
        """Associate a declaration's sema Symbol with its storage address
        (keyed by symbol identity, so shadowed names resolve correctly)."""
        self.addresses[id(decl_node.symbol)] = address

    # -- statements --------------------------------------------------------------

    def _emit_block(self, block):
        for statement in block.statements:
            if self.builder.block.terminator is not None:
                # Dead code after return/break: emit into a detached block so
                # the structure stays legal; simplify-cfg deletes it.
                self.builder.position_at_end(self._new_block("dead"))
            self._emit_statement(statement)

    def _emit_statement(self, statement):
        if isinstance(statement, ast.Block):
            self._emit_block(statement)
        elif isinstance(statement, ast.VarDecl):
            self._emit_var_decl(statement)
        elif isinstance(statement, ast.Assign):
            value = self._emit_expr(statement.value)
            address = self._emit_lvalue(statement.target)
            self.builder.store(
                self._convert(value, address.type.pointee), address
            )
        elif isinstance(statement, ast.ExprStatement):
            self._emit_expr(statement.expression)
        elif isinstance(statement, ast.If):
            self._emit_if(statement)
        elif isinstance(statement, ast.While):
            self._emit_while(statement)
        elif isinstance(statement, ast.For):
            self._emit_for(statement)
        elif isinstance(statement, ast.Return):
            if statement.value is None:
                self.builder.ret()
            else:
                value = self._emit_expr(statement.value)
                self.builder.ret(
                    self._convert(value, self.function.function_type.return_type)
                )
        elif isinstance(statement, ast.Break):
            self.builder.br(self.loop_stack[-1].break_block)
        elif isinstance(statement, ast.Continue):
            self.builder.br(self.loop_stack[-1].continue_block)
        else:
            raise SemanticError(f"codegen: unknown statement {statement!r}")

    def _emit_var_decl(self, statement):
        base = I32 if statement.base_type == "int" else F64
        if statement.array_size is not None:
            from ..ir.types import ArrayType

            slot = self.builder.alloca(
                ArrayType(base, statement.array_size), statement.name
            )
        else:
            slot = self.builder.alloca(base, statement.name)
            if statement.initializer is not None:
                value = self._emit_expr(statement.initializer)
                self.builder.store(self._convert(value, base), slot)
        self._bind(statement, slot)

    def _emit_if(self, statement):
        then_block = self._new_block("if.then")
        end_block = self._new_block("if.end")
        else_block = (
            self._new_block("if.else") if statement.else_body is not None else end_block
        )
        condition = self._emit_bool(statement.condition)
        self.builder.condbr(condition, then_block, else_block)
        self.builder.position_at_end(then_block)
        self._emit_statement(statement.then_body)
        if self.builder.block.terminator is None:
            self.builder.br(end_block)
        if statement.else_body is not None:
            self.builder.position_at_end(else_block)
            self._emit_statement(statement.else_body)
            if self.builder.block.terminator is None:
                self.builder.br(end_block)
        self.builder.position_at_end(end_block)

    def _emit_while(self, statement):
        header = self._new_block("while.cond")
        body = self._new_block("while.body")
        end = self._new_block("while.end")
        self.builder.br(header)
        self.builder.position_at_end(header)
        condition = self._emit_bool(statement.condition)
        self.builder.condbr(condition, body, end)
        self.builder.position_at_end(body)
        self.loop_stack.append(_LoopTargets(end, header))
        self._emit_statement(statement.body)
        self.loop_stack.pop()
        if self.builder.block.terminator is None:
            self.builder.br(header)
        self.builder.position_at_end(end)

    def _emit_for(self, statement):
        if statement.init is not None:
            self._emit_statement(statement.init)
        header = self._new_block("for.cond")
        body = self._new_block("for.body")
        step = self._new_block("for.step")
        end = self._new_block("for.end")
        self.builder.br(header)
        self.builder.position_at_end(header)
        if statement.condition is not None:
            condition = self._emit_bool(statement.condition)
            self.builder.condbr(condition, body, end)
        else:
            self.builder.br(body)
        self.builder.position_at_end(body)
        self.loop_stack.append(_LoopTargets(end, step))
        self._emit_statement(statement.body)
        self.loop_stack.pop()
        if self.builder.block.terminator is None:
            self.builder.br(step)
        self.builder.position_at_end(step)
        if statement.step is not None:
            self._emit_statement(statement.step)
        self.builder.br(header)
        self.builder.position_at_end(end)

    # -- expressions ---------------------------------------------------------------

    def _emit_expr(self, node):
        """Emit ``node`` and return its IR value (per its annotated type)."""
        if isinstance(node, ast.IntLiteral):
            return ConstantInt(I32, node.value)
        if isinstance(node, ast.FloatLiteral):
            return ConstantFloat(node.value)
        if isinstance(node, ast.Identifier):
            address = self._address_of_symbol(node)
            if node.ty.is_array:
                return address  # arrays denote their address; decay at use
            return self.builder.load(address, node.name)
        if isinstance(node, ast.Index):
            address = self._emit_lvalue(node)
            if node.ty.is_array:
                return address
            return self.builder.load(address)
        if isinstance(node, ast.Call):
            return self._emit_call(node)
        if isinstance(node, ast.Unary):
            return self._emit_unary(node)
        if isinstance(node, ast.Binary):
            return self._emit_binary(node)
        if isinstance(node, ast.CastExpr):
            value = self._emit_expr(node.operand)
            target = I32 if node.target == "int" else F64
            return self._convert(value, target, explicit=True)
        raise SemanticError(f"codegen: unknown expression {node!r}")

    def _emit_call(self, node):
        callee = self.module.get_function(node.name)
        arguments = []
        for argument, expected in zip(node.args, callee.function_type.param_types):
            value = self._emit_expr(argument)
            if expected.is_pointer and value.type.is_pointer and value.type.pointee.is_array:
                value = self.builder.gep(value, [ConstantInt(I32, 0)])
            arguments.append(self._convert(value, expected))
        return self.builder.call(callee, arguments, node.name)

    def _emit_unary(self, node):
        if node.op == "&":
            return self._emit_lvalue(node.operand)
        if node.op == "-":
            value = self._emit_expr(node.operand)
            if value.type.is_float:
                return self.builder.fsub(ConstantFloat(0.0), value)
            return self.builder.sub(ConstantInt(value.type, 0), value)
        if node.op == "!":
            flag = self._emit_bool(node.operand)
            inverted = self.builder.xor(flag, ConstantInt(I1, 1))
            return self.builder.cast("zext", inverted, I32)
        raise SemanticError(f"codegen: unknown unary {node.op!r}")

    def _emit_binary(self, node):
        op = node.op
        if op in ("&&", "||"):
            flag = self._emit_bool(node)
            return self.builder.cast("zext", flag, I32)
        if op in _COMPARE_INT:
            flag = self._emit_comparison(node)
            return self.builder.cast("zext", flag, I32)
        lhs = self._emit_expr(node.lhs)
        rhs = self._emit_expr(node.rhs)
        if node.ty is F64:
            lhs = self._convert(lhs, F64)
            rhs = self._convert(rhs, F64)
            return self.builder.binop(_ARITH_FLOAT[op], lhs, rhs)
        return self.builder.binop(_ARITH_INT[op], lhs, rhs)

    def _emit_comparison(self, node):
        lhs = self._emit_expr(node.lhs)
        rhs = self._emit_expr(node.rhs)
        if lhs.type.is_float or rhs.type.is_float:
            lhs = self._convert(lhs, F64)
            rhs = self._convert(rhs, F64)
            return self.builder.fcmp(_COMPARE_FLOAT[node.op], lhs, rhs)
        return self.builder.icmp(_COMPARE_INT[node.op], lhs, rhs)

    def _emit_bool(self, node):
        """Emit ``node`` as an ``i1`` (conditions, logical operators)."""
        if isinstance(node, ast.Binary) and node.op in _COMPARE_INT:
            return self._emit_comparison(node)
        if isinstance(node, ast.Binary) and node.op in ("&&", "||"):
            # Short-circuit through a temporary slot; mem2reg turns it into
            # a phi.
            slot = self.builder.alloca(I1, "sc")
            rhs_block = self._new_block("sc.rhs")
            end_block = self._new_block("sc.end")
            lhs = self._emit_bool(node.lhs)
            if node.op == "&&":
                self.builder.store(ConstantInt(I1, 0), slot)
                self.builder.condbr(lhs, rhs_block, end_block)
            else:
                self.builder.store(ConstantInt(I1, 1), slot)
                self.builder.condbr(lhs, end_block, rhs_block)
            self.builder.position_at_end(rhs_block)
            rhs = self._emit_bool(node.rhs)
            self.builder.store(rhs, slot)
            self.builder.br(end_block)
            self.builder.position_at_end(end_block)
            return self.builder.load(slot)
        if isinstance(node, ast.Unary) and node.op == "!":
            flag = self._emit_bool(node.operand)
            return self.builder.xor(flag, ConstantInt(I1, 1))
        value = self._emit_expr(node)
        return self.builder.icmp("ne", value, ConstantInt(I32, 0))

    # -- lvalues & conversions ----------------------------------------------------

    def _address_of_symbol(self, node):
        symbol = node.symbol
        if symbol.kind == "global":
            return self.module.get_global(symbol.name)
        address = self.addresses.get(id(symbol))
        if address is None:
            raise SemanticError(
                f"codegen: no storage bound for {symbol.name!r}", node.line
            )
        return address

    def _emit_lvalue(self, node):
        if isinstance(node, ast.Identifier):
            return self._address_of_symbol(node)
        if isinstance(node, ast.Index):
            base_type = node.base.ty
            if base_type.is_pointer:
                pointer = self._emit_expr(node.base)  # loads the pointer value
            else:
                pointer = self._emit_lvalue(node.base)
            index = self._emit_expr(node.index)
            return self.builder.gep(pointer, [index])
        raise SemanticError(f"codegen: not an lvalue: {node!r}", node.line)

    def _convert(self, value, target, explicit=False):
        if value.type is target:
            return value
        if value.type is I1 and target is I32:
            return self.builder.cast("zext", value, I32)
        if value.type is I32 and target is F64:
            return self.builder.sitofp(value)
        if value.type is F64 and target is I32 and explicit:
            return self.builder.fptosi(value, I32)
        raise SemanticError(
            f"codegen: cannot convert {value.type!r} to {target!r}"
        )


def compile_source(source, module_name="program", optimize=True,
                   verify_each=False, inline=False, transform=None):
    """Compile MiniC source to an IR module.

    With ``optimize`` (the default) the standard pass pipeline runs, leaving
    the module in the canonical form the Loopapalooza compile-time component
    expects. ``inline`` additionally runs the (non-default) function inliner
    first — used by the inlining ablation, not by the study itself.
    ``transform`` opts the pipeline into the structural loop stage
    (fission/peel/fusion); ``None`` defers to ``REPRO_TRANSFORM``.
    """
    program = parse(source)
    sema_result = analyze(program)
    module = CodeGenerator(sema_result, module_name).run()
    from ..ir.verifier import verify_module

    verify_module(module)
    if inline:
        from ..passes.inline import run_inline_module

        run_inline_module(module)
        verify_module(module)
    if optimize:
        from ..passes.pass_manager import run_standard_pipeline

        run_standard_pipeline(module, verify_each=verify_each,
                              transform=transform)
    return module
