"""repro.frontend — the MiniC language.

A small C-like language (ints, doubles, fixed arrays, element pointers,
functions, structured control flow) with a lexer, recursive-descent parser,
semantic analyzer, and IR code generator. The synthetic SPEC/EEMBC
benchmark programs are written in MiniC.
"""

from .codegen import CodeGenerator, compile_source
from .lexer import Token, tokenize
from .parser import parse
from .sema import SemaResult, analyze

__all__ = [
    "CodeGenerator",
    "SemaResult",
    "Token",
    "analyze",
    "compile_source",
    "parse",
    "tokenize",
]
