"""2-delta stride predictor (Sazeides & Smith)."""

from __future__ import annotations

from .base import ValuePredictor


class TwoDeltaStridePredictor(ValuePredictor):
    """Stride prediction with hysteresis: the *predicting* stride only
    updates after the same new stride is observed twice in a row. This keeps
    one-off disturbances (a rare branch that bumps the value differently)
    from destroying an otherwise steady stride."""

    name = "2-delta-stride"

    def __init__(self):
        self._last = None
        self._stride = None       # stride used for prediction
        self._candidate = None    # most recently observed stride

    def predict(self):
        if self._last is None or self._stride is None:
            return None
        return self._last + self._stride

    def train(self, actual):
        if self._last is not None:
            try:
                observed = actual - self._last
            except TypeError:
                observed = None
            if observed is not None:
                if observed == self._candidate:
                    self._stride = observed
                elif self._stride is None:
                    self._stride = observed
                    self._candidate = observed
                else:
                    self._candidate = observed
        self._last = actual

    def reset(self):
        self._last = None
        self._stride = None
        self._candidate = None
