"""Hybrid predictor with the paper's perfect hybridization.

The study assumes: *"if any of our predictors correctly predicts an LCD
value, we assume we have a correct prediction"* (§III-C). This module also
provides a realistic confidence-counter hybrid as an extension, used by the
predictor-ablation benchmark.
"""

from __future__ import annotations

from .base import ValuePredictor, simulate
from .fcm import FCMPredictor
from .last_value import LastValuePredictor
from .stride import StridePredictor
from .two_delta import TwoDeltaStridePredictor


# Table bound of the default order-2 FCM (must match FCMPredictor's
# ``max_table`` default — the fused fast path below replicates it).
_FCM_MAX_TABLE = 65536


def default_predictors():
    """The paper's four predictors, freshly constructed."""
    return [
        LastValuePredictor(),
        StridePredictor(),
        TwoDeltaStridePredictor(),
        FCMPredictor(order=2, max_table=_FCM_MAX_TABLE),
    ]


def perfect_hybrid_flags(values, predictors=None):
    """Per-element correctness under perfect hybridization.

    Element ``i`` is ``True`` when *any* predictor, trained online on
    ``values[:i]``, produced exactly ``values[i]``.

    The default-predictor case runs a fused loop over all four predictors
    rather than four :func:`simulate` passes — the predictors are
    independent, so interleaving them (and short-circuiting the *predict*
    side once one hits; training still always happens) is exact. This path
    dominates evaluation warm-up, hence the hand-inlining.
    """
    if predictors is not None:
        if not values:
            return []
        per_predictor = [simulate(p, values) for p in predictors]
        return [any(flags) for flags in zip(*per_predictor)]
    if not values:
        return []
    flags = []
    append = flags.append
    # Last-value predictor state.
    lv_last = None
    lv_seen = False
    # Stride predictor state.
    st_last = None
    st_stride = None
    # 2-delta stride predictor state.
    td_last = None
    td_stride = None
    td_candidate = None
    # Order-2 FCM state (unbounded table, bounded by FCM_MAX_TABLE).
    fcm_h1 = None
    fcm_h2 = None
    fcm_count = 0
    fcm_table = {}
    fcm_max = _FCM_MAX_TABLE
    for value in values:
        # -- predict (pure; short-circuit once any component hits) --
        # A None prediction is "no prediction", never a hit (matches
        # ``simulate``'s ``prediction is not None`` guard).
        hit = lv_last is not None and lv_last == value
        if not hit and st_stride is not None and st_last is not None:
            hit = (st_last + st_stride) == value
        if not hit and td_stride is not None and td_last is not None:
            hit = (td_last + td_stride) == value
        if not hit and fcm_count == 2:
            predicted = fcm_table.get((fcm_h1, fcm_h2))
            hit = predicted is not None and predicted == value
        append(hit)
        # -- train (always, every component) --
        if lv_seen:
            # Stride: delta against the previous value.
            try:
                st_stride = value - st_last
            except TypeError:
                st_stride = None
            # 2-delta: the predicting stride only updates once the same new
            # stride repeats (or on first observation).
            if st_stride is not None:
                observed = st_stride
                if observed == td_candidate:
                    td_stride = observed
                elif td_stride is None:
                    td_stride = observed
                    td_candidate = observed
                else:
                    td_candidate = observed
        st_last = value
        td_last = value
        lv_last = value
        lv_seen = True
        if fcm_count == 2:
            context = (fcm_h1, fcm_h2)
            if len(fcm_table) < fcm_max or context in fcm_table:
                fcm_table[context] = value
            fcm_h1 = fcm_h2
            fcm_h2 = value
        elif fcm_count == 1:
            fcm_h2 = value
            fcm_count = 2
        else:
            fcm_h1 = value
            fcm_count = 1
    return flags


def perfect_hybrid_accuracy(values, predictors=None):
    flags = perfect_hybrid_flags(values, predictors)
    return (sum(flags) / len(flags)) if flags else 0.0


class ConfidenceHybridPredictor(ValuePredictor):
    """Realistic hybrid: saturating confidence counters pick one component.

    Each component predictor keeps a 0..``ceiling`` counter, incremented on a
    hit and decremented on a miss; the highest-confidence component whose
    counter clears ``threshold`` makes the prediction. Provided as the
    "more realistic hybridization scheme" the paper mentions leaving open.
    """

    name = "confidence-hybrid"

    def __init__(self, predictors=None, threshold=2, ceiling=7):
        self.components = predictors if predictors is not None else default_predictors()
        self.threshold = threshold
        self.ceiling = ceiling
        self.confidence = [0] * len(self.components)

    def predict(self):
        best_index = None
        best_confidence = self.threshold - 1
        for index, component in enumerate(self.components):
            if (
                self.confidence[index] > best_confidence
                and component.predict() is not None
            ):
                best_confidence = self.confidence[index]
                best_index = index
        if best_index is None:
            return None
        return self.components[best_index].predict()

    def train(self, actual):
        for index, component in enumerate(self.components):
            prediction = component.predict()
            if prediction is not None and prediction == actual:
                self.confidence[index] = min(self.ceiling, self.confidence[index] + 1)
            else:
                self.confidence[index] = max(0, self.confidence[index] - 1)
            component.train(actual)

    def reset(self):
        for component in self.components:
            component.reset()
        self.confidence = [0] * len(self.components)
