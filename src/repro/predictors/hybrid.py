"""Hybrid predictor with the paper's perfect hybridization.

The study assumes: *"if any of our predictors correctly predicts an LCD
value, we assume we have a correct prediction"* (§III-C). This module also
provides a realistic confidence-counter hybrid as an extension, used by the
predictor-ablation benchmark.
"""

from __future__ import annotations

from .base import ValuePredictor, simulate
from .fcm import FCMPredictor
from .last_value import LastValuePredictor
from .stride import StridePredictor
from .two_delta import TwoDeltaStridePredictor


def default_predictors():
    """The paper's four predictors, freshly constructed."""
    return [
        LastValuePredictor(),
        StridePredictor(),
        TwoDeltaStridePredictor(),
        FCMPredictor(order=2),
    ]


def perfect_hybrid_flags(values, predictors=None):
    """Per-element correctness under perfect hybridization.

    Element ``i`` is ``True`` when *any* predictor, trained online on
    ``values[:i]``, produced exactly ``values[i]``.
    """
    if predictors is None:
        predictors = default_predictors()
    if not values:
        return []
    per_predictor = [simulate(p, values) for p in predictors]
    return [any(flags) for flags in zip(*per_predictor)]


def perfect_hybrid_accuracy(values, predictors=None):
    flags = perfect_hybrid_flags(values, predictors)
    return (sum(flags) / len(flags)) if flags else 0.0


class ConfidenceHybridPredictor(ValuePredictor):
    """Realistic hybrid: saturating confidence counters pick one component.

    Each component predictor keeps a 0..``ceiling`` counter, incremented on a
    hit and decremented on a miss; the highest-confidence component whose
    counter clears ``threshold`` makes the prediction. Provided as the
    "more realistic hybridization scheme" the paper mentions leaving open.
    """

    name = "confidence-hybrid"

    def __init__(self, predictors=None, threshold=2, ceiling=7):
        self.components = predictors if predictors is not None else default_predictors()
        self.threshold = threshold
        self.ceiling = ceiling
        self.confidence = [0] * len(self.components)

    def predict(self):
        best_index = None
        best_confidence = self.threshold - 1
        for index, component in enumerate(self.components):
            if (
                self.confidence[index] > best_confidence
                and component.predict() is not None
            ):
                best_confidence = self.confidence[index]
                best_index = index
        if best_index is None:
            return None
        return self.components[best_index].predict()

    def train(self, actual):
        for index, component in enumerate(self.components):
            prediction = component.predict()
            if prediction is not None and prediction == actual:
                self.confidence[index] = min(self.ceiling, self.confidence[index] + 1)
            else:
                self.confidence[index] = max(0, self.confidence[index] - 1)
            component.train(actual)

    def reset(self):
        for component in self.components:
            component.reset()
        self.confidence = [0] * len(self.components)
