"""Last-value predictor: predicts the previous value repeats."""

from __future__ import annotations

from .base import ValuePredictor


class LastValuePredictor(ValuePredictor):
    """Predicts v(t+1) = v(t). Catches quasi-invariant LCDs — flags,
    slowly-changing state, values that only update on rare paths."""

    name = "last-value"

    def __init__(self):
        self._last = None
        self._seen = False

    def predict(self):
        return self._last if self._seen else None

    def train(self, actual):
        self._last = actual
        self._seen = True

    def reset(self):
        self._last = None
        self._seen = False
