"""repro.predictors — value prediction for non-computable register LCDs.

The paper's four schemes (last-value, stride, 2-delta stride, FCM) with
perfect hybridization, plus a realistic confidence-counter hybrid for the
predictor-ablation study.
"""

from .base import ValuePredictor, accuracy, simulate
from .fcm import FCMPredictor
from .hybrid import (
    ConfidenceHybridPredictor,
    default_predictors,
    perfect_hybrid_accuracy,
    perfect_hybrid_flags,
)
from .last_value import LastValuePredictor
from .stride import StridePredictor
from .two_delta import TwoDeltaStridePredictor

__all__ = [
    "ConfidenceHybridPredictor",
    "FCMPredictor",
    "LastValuePredictor",
    "StridePredictor",
    "TwoDeltaStridePredictor",
    "ValuePredictor",
    "accuracy",
    "default_predictors",
    "perfect_hybrid_accuracy",
    "perfect_hybrid_flags",
    "simulate",
]
