"""Finite Context Method predictor (Sazeides & Smith, MICRO-30).

A two-level scheme: the recent value history (the *context*, here the last
``order`` values) indexes a table whose entry remembers the value that
followed that context last time. Captures arbitrary repeating patterns —
periodic flags, values walked around a small cycle, alternating states —
that stride-family predictors miss.
"""

from __future__ import annotations

from collections import deque

from .base import ValuePredictor


class FCMPredictor(ValuePredictor):
    """Order-``order`` FCM with an unbounded (dict) second-level table.

    A real implementation hashes the context into a finite table; the
    unbounded dict is the idealization appropriate for a limit study (the
    paper assumes perfect hybridization anyway). ``max_table`` bounds memory
    against pathological value streams.
    """

    name = "fcm"

    def __init__(self, order=2, max_table=65536):
        self.order = order
        self.max_table = max_table
        self._history = deque(maxlen=order)
        self._table = {}

    def _context(self):
        return tuple(self._history)

    def predict(self):
        if len(self._history) < self.order:
            return None
        return self._table.get(self._context())

    def train(self, actual):
        if len(self._history) == self.order:
            if len(self._table) < self.max_table or self._context() in self._table:
                self._table[self._context()] = actual
        self._history.append(actual)

    def reset(self):
        self._history.clear()
        self._table.clear()
