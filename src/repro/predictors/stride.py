"""Stride predictor: predicts the last delta repeats."""

from __future__ import annotations

from .base import ValuePredictor


class StridePredictor(ValuePredictor):
    """Predicts v(t+1) = v(t) + (v(t) - v(t-1)).

    Catches arithmetic sequences the compiler could not prove (e.g. strides
    through pointers, float accumulators with a constant addend). Works for
    ints and floats alike; float strides must reproduce exactly.
    """

    name = "stride"

    def __init__(self):
        self._last = None
        self._stride = None

    def predict(self):
        if self._last is None or self._stride is None:
            return None
        return self._last + self._stride

    def train(self, actual):
        if self._last is not None:
            try:
                self._stride = actual - self._last
            except TypeError:
                self._stride = None
        self._last = actual

    def reset(self):
        self._last = None
        self._stride = None
