"""Value-predictor interface (paper §III-C).

Predictors consume the per-iteration latch values of a register LCD and are
queried *before* seeing each value, exactly as hardware would be: predict,
compare against the actual, then train.

Float values are compared exactly — a prediction either rematerializes the
bit pattern or it does not; near-misses still force synchronization.
"""

from __future__ import annotations


class ValuePredictor:
    """Base class: stateful, trained online."""

    name = "base"

    def predict(self):
        """Predicted next value, or None when not confident / warmed up."""
        raise NotImplementedError

    def train(self, actual):
        """Observe the actual value (called after every predict)."""
        raise NotImplementedError

    def reset(self):
        """Forget all state (new loop invocation)."""
        raise NotImplementedError


def simulate(predictor, values):
    """Run one predictor over a value sequence.

    Returns a list of booleans, one per element: ``True`` when the predictor
    had already produced exactly that value before observing it.
    """
    predictor.reset()
    correct = []
    for value in values:
        prediction = predictor.predict()
        correct.append(prediction is not None and prediction == value)
        predictor.train(value)
    return correct


def accuracy(predictor, values):
    """Fraction of values predicted correctly (0.0 for empty sequences)."""
    if not values:
        return 0.0
    flags = simulate(predictor, values)
    return sum(flags) / len(flags)
