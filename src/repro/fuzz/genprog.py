"""Seeded, grammar-driven MiniC program generator.

Every generated program is fully determined by a ``(seed, profile)``
pair: the same pair always renders byte-identical source, so any
quarantined case can be regenerated from its two integers alone. The
grammar is deliberately biased toward the constructs the static and
dynamic analyses care about rather than uniform over MiniC:

* affine subscripts (``A[i]``, ``A[2*i + 1]``) with statically-safe
  bounds, and non-affine ones (hash/masked/quadratic) kept in bounds by
  power-of-two masking;
* reductions (``acc = acc + A[i]``, ``imax``/``fmin`` folds);
* loop-carried memory dependences at known distances
  (``A[i] = A[i-d] + c``);
* predictable and unpredictable scalar LCDs;
* calls with memory effects (``memset_i32``/``memcpy_i32``), pure calls
  (``hash_i32``/``noise_f64``), and hidden-state calls (``rand``);
* nested loops (including flattened affine 2-D subscripts) and
  multi-latch ``while``/``continue`` loops;
* transform bait: fission candidates (parallel slice + serial
  recurrence in one body), fusion candidates (adjacent lockstep
  constant-trip loops), and peel candidates (``A[0]``/``A[N-1]``
  boundary reads).

Generated programs never trap: integer division and shifts only by safe
constants, every subscript provably or mask-forcibly in bounds, float
math kept finite, and total dynamic work bounded to a few hundred
thousand IR instructions.

The shrink lattice is built *at generation time*: every statement
carries precomputed simpler alternatives, so :mod:`repro.fuzz.shrink`
never needs the RNG again.
"""

from __future__ import annotations

import copy
import random
import zlib

#: Bumped whenever the grammar changes in a way that alters the
#: (seed, profile) -> source mapping; stored in quarantine entries so a
#: stale reproducer is recognisable.
GEN_VERSION = 1

_INT_SIZES = (64, 128, 256)
_FLOAT_SIZES = (64, 128)


# -- specs ---------------------------------------------------------------------


class Stmt:
    """One rendered body statement plus its precomputed shrink ladder.

    ``lines`` is the final MiniC text (one or more lines); ``alts`` are
    strictly-simpler replacement statements the shrinker may try.
    """

    __slots__ = ("kind", "lines", "alts")

    def __init__(self, kind, lines, alts=()):
        self.kind = kind
        self.lines = list(lines)
        self.alts = list(alts)

    def __repr__(self):
        return f"<Stmt {self.kind}: {self.lines[0][:40]!r}>"


class LoopSpec:
    """One loop: bounds, latch shape, body statements, optional inner loop."""

    __slots__ = ("var", "start", "bound", "step", "kind", "guard", "body",
                 "inner")

    def __init__(self, var, start, bound, step=1, kind="for", guard=None,
                 body=None, inner=None):
        self.var = var
        self.start = start
        self.bound = bound
        self.step = step
        #: ``"for"`` or ``"multilatch"`` (while + guarded continue).
        self.kind = kind
        #: Extra-latch guard expression text (multilatch only).
        self.guard = guard
        self.body = list(body or [])
        self.inner = inner

    @property
    def trip(self):
        if self.bound <= self.start:
            return 0
        return (self.bound - self.start + self.step - 1) // self.step

    def render(self, indent="  "):
        lines = []
        pad = indent
        v = self.var
        if self.kind == "multilatch":
            lines.append(f"{pad}{v} = {self.start};")
            lines.append(f"{pad}while ({v} < {self.bound}) {{")
            lines.append(f"{pad}  if ({self.guard}) {{ "
                         f"{v} = {v} + {self.step}; continue; }}")
        else:
            lines.append(f"{pad}for ({v} = {self.start}; {v} < {self.bound}; "
                         f"{v} = {v} + {self.step}) {{")
        for stmt in self.body:
            for line in stmt.lines:
                lines.append(f"{pad}  {line}")
        if self.inner is not None:
            lines.extend(self.inner.render(pad + "  "))
        if self.kind == "multilatch":
            lines.append(f"{pad}  {v} = {v} + {self.step};")
        lines.append(f"{pad}}}")
        return lines


class ProgramSpec:
    """The structured program the renderer and the shrinker share."""

    __slots__ = ("seed", "profile", "int_arrays", "float_arrays", "scalars",
                 "loop_vars", "blocks")

    def __init__(self, seed, profile):
        self.seed = seed
        self.profile = profile
        #: name -> size (power of two).
        self.int_arrays = {}
        self.float_arrays = {}
        #: name -> (ctype, initializer text).
        self.scalars = {}
        self.loop_vars = []
        #: Top-level items in main: LoopSpec or Stmt.
        self.blocks = []

    def clone(self):
        return copy.deepcopy(self)

    def render(self):
        return render(self)


class GeneratedProgram:
    """A rendered program with its provenance."""

    __slots__ = ("name", "seed", "profile", "source", "spec")

    def __init__(self, name, seed, profile, source, spec):
        self.name = name
        self.seed = seed
        self.profile = profile
        self.source = source
        self.spec = spec

    def __repr__(self):
        return f"<GeneratedProgram {self.name}>"


# -- profiles ------------------------------------------------------------------


class GenProfile:
    """Grammar weights for one generation profile."""

    __slots__ = ("name", "loops", "stmts", "weights", "nested", "multilatch",
                 "fusion_pair", "peel")

    def __init__(self, name, loops, stmts, weights, nested=0.0,
                 multilatch=0.0, fusion_pair=0.0, peel=0.0):
        self.name = name
        self.loops = loops          # (min, max) top-level loops
        self.stmts = stmts          # (min, max) statements per body
        self.weights = dict(weights)
        self.nested = nested
        self.multilatch = multilatch
        self.fusion_pair = fusion_pair
        self.peel = peel


_AFFINE_WEIGHTS = {
    "store_affine": 5, "store_masked": 2, "lcd_mem": 3, "reduction": 3,
    "scalar_lcd": 2, "guarded": 2, "store_2d": 2,
}
_CALL_WEIGHTS = dict(_AFFINE_WEIGHTS, **{
    "call_pure": 4, "call_mem": 3, "call_unsafe": 1,
})
_TRANSFORM_WEIGHTS = {
    "store_affine": 6, "lcd_mem": 4, "reduction": 3, "guarded": 1,
    "scalar_lcd": 1,
}
_MIXED_WEIGHTS = dict(_CALL_WEIGHTS)
_MIXED_WEIGHTS.update({"store_2d": 2})

PROFILES = {
    "affine": GenProfile(
        "affine", loops=(1, 3), stmts=(1, 3), weights=_AFFINE_WEIGHTS,
        nested=0.35, multilatch=0.15,
    ),
    "calls": GenProfile(
        "calls", loops=(1, 3), stmts=(1, 3), weights=_CALL_WEIGHTS,
        nested=0.2, multilatch=0.1,
    ),
    "transforms": GenProfile(
        "transforms", loops=(1, 3), stmts=(2, 4),
        weights=_TRANSFORM_WEIGHTS, nested=0.05, multilatch=0.0,
        fusion_pair=0.45, peel=0.35,
    ),
    "mixed": GenProfile(
        "mixed", loops=(1, 4), stmts=(1, 3), weights=_MIXED_WEIGHTS,
        nested=0.25, multilatch=0.12, fusion_pair=0.2, peel=0.15,
    ),
}


# -- generation context --------------------------------------------------------


class _Gen:
    """One generation run: the RNG plus the spec being grown."""

    def __init__(self, seed, profile):
        if profile not in PROFILES:
            raise ValueError(
                f"unknown fuzz profile {profile!r} "
                f"(have: {', '.join(sorted(PROFILES))})"
            )
        self.profile = PROFILES[profile]
        # Salt the seed with the profile name so "seed 3, affine" and
        # "seed 3, calls" are unrelated programs. crc32 (not hash()) so
        # the mapping survives PYTHONHASHSEED.
        salt = zlib.crc32(profile.encode("ascii"))
        self.rng = random.Random((seed * 2654435761 + salt) & 0xFFFFFFFF)
        self.spec = ProgramSpec(seed, profile)
        self._scalar_count = 0

    # -- small helpers ---------------------------------------------------------

    def pick_int_array(self, exclude=None):
        names = [n for n in self.spec.int_arrays if n != exclude]
        return self.rng.choice(names)

    def pick_float_array(self):
        names = sorted(self.spec.float_arrays)
        return self.rng.choice(names) if names else None

    def new_scalar(self, ctype="int"):
        name = f"t{self._scalar_count}"
        self._scalar_count += 1
        init = str(self.rng.randint(0, 9)) if ctype == "int" \
            else f"{self.rng.randint(0, 3)}.5"
        self.spec.scalars[name] = (ctype, init)
        return name

    def some_scalar(self, ctype="int"):
        names = [n for n, (t, _) in sorted(self.spec.scalars.items())
                 if t == ctype]
        if names and self.rng.random() < 0.7:
            return self.rng.choice(names)
        return self.new_scalar(ctype)

    def mask(self, array):
        return self.spec.int_arrays.get(array,
                                        self.spec.float_arrays.get(array)) - 1

    # -- index / value expressions --------------------------------------------

    def masked_index(self, array, var):
        """A non-affine (or wrapped-affine) subscript, in bounds by masking."""
        m = self.mask(array)
        pattern = self.rng.choice((
            f"{var} & {m}",
            f"({var} * {var}) & {m}",
            f"(hash_i32({var}) ^ {var}) & {m}",
            f"({var} * {self.rng.randint(3, 9)} + "
            f"{self.rng.randint(0, 7)}) & {m}",
            f"(({var} << 2) ^ {var}) & {m}",
        ))
        return pattern

    def affine_index(self, array, loop):
        """``a*i + b`` provably in bounds for the loop's range, or ``None``."""
        size = self.spec.int_arrays.get(
            array, self.spec.float_arrays.get(array))
        for scale in ([1, 2] if self.rng.random() < 0.5 else [2, 1]):
            offset = self.rng.randint(0, 3)
            top = scale * (loop.bound - 1) + offset
            if 0 <= scale * loop.start + offset and top < size:
                if scale == 1 and offset == 0:
                    return loop.var
                if scale == 1:
                    return f"{loop.var} + {offset}"
                if offset == 0:
                    return f"{scale}*{loop.var}"
                return f"{scale}*{loop.var} + {offset}"
        return None

    def int_value(self, var, depth=0):
        """A trap-free int expression over the loop var, arrays, scalars."""
        roll = self.rng.random()
        if depth >= 2 or roll < 0.25:
            return str(self.rng.randint(0, 99))
        if roll < 0.45:
            return var
        if roll < 0.65:
            array = self.pick_int_array()
            return f"{array}[{self.masked_index(array, var)}]"
        op = self.rng.choice(("+", "-", "*", "&", "|", "^"))
        return (f"({self.int_value(var, depth + 1)} {op} "
                f"{self.int_value(var, depth + 1)})")

    # Float array traffic is deliberately fed only by ``noise_f64`` and
    # bounded folds (see the reduction/call templates): unbounded float
    # expression trees could compound to inf across iterations, and
    # ``inf - inf`` would put a NaN in front of the checksum's cast.


# -- statement templates -------------------------------------------------------
#
# Each template takes (gen, loop) and returns a Stmt or None when the loop
# shape makes the construct inexpressible (the chooser then retries).


def _trivial_store(gen, loop):
    array = gen.pick_int_array()
    return Stmt("store_masked",
                [f"{array}[{loop.var} & {gen.mask(array)}] = 1;"])


def _stmt_store_affine(gen, loop):
    array = gen.pick_int_array()
    index = gen.affine_index(array, loop)
    if index is None:
        return None
    value = gen.int_value(loop.var)
    alts = [Stmt("store_affine", [f"{array}[{index}] = 1;"])]
    return Stmt("store_affine", [f"{array}[{index}] = {value};"], alts)


def _stmt_store_masked(gen, loop):
    array = gen.pick_int_array()
    index = gen.masked_index(array, loop.var)
    value = gen.int_value(loop.var)
    alts = [
        Stmt("store_masked",
             [f"{array}[{loop.var} & {gen.mask(array)}] = {loop.var};"]),
        _trivial_store(gen, loop),
    ]
    return Stmt("store_masked", [f"{array}[{index}] = {value};"], alts)


def _stmt_lcd_mem(gen, loop):
    if loop.step != 1 or loop.start < 1:
        return None
    array = gen.pick_int_array()
    size = gen.spec.int_arrays[array]
    if loop.bound > size:
        return None
    distance = gen.rng.randint(1, min(4, loop.start))
    op = gen.rng.choice(("+", "-", "^"))
    extra = gen.rng.choice((str(gen.rng.randint(1, 9)), loop.var))
    line = (f"{array}[{loop.var}] = "
            f"{array}[{loop.var} - {distance}] {op} {extra};")
    alts = [Stmt("lcd_mem",
                 [f"{array}[{loop.var}] = {array}[{loop.var} - 1] + 1;"])]
    return Stmt("lcd_mem", [line], alts)


def _stmt_reduction(gen, loop):
    if gen.spec.float_arrays and gen.rng.random() < 0.35:
        acc = gen.some_scalar("float")
        array = gen.pick_float_array()
        fold = gen.rng.choice((
            f"{acc} = {acc} + {array}[{gen.masked_index(array, loop.var)}];",
            f"{acc} = fmin({acc}, "
            f"{array}[{gen.masked_index(array, loop.var)}]);",
        ))
        alt = f"{acc} = {acc} + 1.5;"
    else:
        acc = gen.some_scalar("int")
        array = gen.pick_int_array()
        index = gen.affine_index(array, loop) \
            or gen.masked_index(array, loop.var)
        fold = gen.rng.choice((
            f"{acc} = {acc} + {array}[{index}];",
            f"{acc} = {acc} ^ {array}[{index}];",
            f"{acc} = imax({acc}, {array}[{index}]);",
        ))
        alt = f"{acc} = {acc} + 1;"
    return Stmt("reduction", [fold], [Stmt("reduction", [alt])])


def _stmt_scalar_lcd(gen, loop):
    scalar = gen.some_scalar("int")
    array = gen.pick_int_array()
    mask = gen.mask(array)
    if gen.rng.random() < 0.5:
        # Predictable (stride) scalar recurrence feeding a store.
        lines = [
            f"{scalar} = {scalar} + {gen.rng.randint(1, 5)};",
            f"{array}[{scalar} & {mask}] = {loop.var};",
        ]
    else:
        # Unpredictable pointer-chase-style recurrence.
        lines = [
            f"{scalar} = {scalar} + 1 + "
            f"(({array}[{scalar} & {mask}] >> 3) & 3);",
        ]
    return Stmt("scalar_lcd", lines,
                [Stmt("scalar_lcd", [f"{scalar} = {scalar} + 1;"])])


def _stmt_guarded(gen, loop):
    array = gen.pick_int_array()
    index = gen.affine_index(array, loop) or gen.masked_index(array, loop.var)
    if gen.rng.random() < 0.5:
        # Conditional max reduction.
        best = gen.some_scalar("int")
        line = (f"if ({array}[{index}] > {best}) "
                f"{{ {best} = {array}[{index}]; }}")
    else:
        target = gen.pick_int_array()
        line = (f"if (({array}[{index}] & 3) == 0) "
                f"{{ {target}[{loop.var} & {gen.mask(target)}] = "
                f"{loop.var}; }}")
    return Stmt("guarded", [line], [_trivial_store(gen, loop)])


def _stmt_store_2d(gen, loop):
    # Flattened affine 2-D subscript; only valid inside a nested loop where
    # the generator pre-checked outer_bound * width + inner_bound <= size.
    return None  # placed explicitly by _gen_nested, never chosen directly


def _stmt_call_pure(gen, loop):
    roll = gen.rng.random()
    if roll < 0.4 and gen.spec.float_arrays:
        array = gen.pick_float_array()
        line = (f"{array}[{gen.masked_index(array, loop.var)}] = "
                f"noise_f64({loop.var});")
    elif roll < 0.7:
        array = gen.pick_int_array()
        line = (f"{array}[{gen.masked_index(array, loop.var)}] = "
                f"hash_i32({loop.var} + {gen.rng.randint(0, 99)}) & 1023;")
    else:
        scalar = gen.some_scalar("int")
        array = gen.pick_int_array()
        line = (f"{scalar} = imin({scalar} + 1, "
                f"iabs({array}[{gen.masked_index(array, loop.var)}]));")
    return Stmt("call_pure", [line], [_trivial_store(gen, loop)])


def _stmt_call_mem(gen, loop):
    array = gen.pick_int_array()
    count = gen.rng.choice((4, 8))
    if gen.rng.random() < 0.5:
        line = f"memset_i32({array}, {gen.rng.randint(0, 9)}, {count});"
    else:
        other = gen.pick_int_array(exclude=array)
        line = f"memcpy_i32({array}, {other}, {count});"
    return Stmt("call_mem", [line], [_trivial_store(gen, loop)])


def _stmt_call_unsafe(gen, loop):
    scalar = gen.some_scalar("int")
    return Stmt("call_unsafe",
                [f"{scalar} = {scalar} + (rand() & 7);"],
                [Stmt("call_unsafe", [f"{scalar} = rand() & 1;"])])


_STMT_TEMPLATES = {
    "store_affine": _stmt_store_affine,
    "store_masked": _stmt_store_masked,
    "lcd_mem": _stmt_lcd_mem,
    "reduction": _stmt_reduction,
    "scalar_lcd": _stmt_scalar_lcd,
    "guarded": _stmt_guarded,
    "store_2d": _stmt_store_2d,
    "call_pure": _stmt_call_pure,
    "call_mem": _stmt_call_mem,
    "call_unsafe": _stmt_call_unsafe,
}


# -- loop generation -----------------------------------------------------------


def _weighted_kind(gen, exclude=()):
    kinds = [(k, w) for k, w in sorted(gen.profile.weights.items())
             if k not in exclude]
    total = sum(w for _, w in kinds)
    roll = gen.rng.random() * total
    for kind, weight in kinds:
        roll -= weight
        if roll <= 0:
            return kind
    return kinds[-1][0]


def _gen_body(gen, loop, count):
    body = []
    attempts = 0
    while len(body) < count and attempts < count * 6:
        attempts += 1
        kind = _weighted_kind(gen, exclude=("store_2d",))
        stmt = _STMT_TEMPLATES[kind](gen, loop)
        if stmt is not None:
            body.append(stmt)
    if not body:
        body.append(_trivial_store(gen, loop))
    return body


def _new_loop_var(gen, hint="i"):
    var = f"{hint}{len(gen.spec.loop_vars)}"
    gen.spec.loop_vars.append(var)
    return var


def _gen_loop(gen, depth=0):
    profile = gen.profile
    var = _new_loop_var(gen, "i" if depth == 0 else "j")
    start = gen.rng.choice((0, 0, 1, 2, 4))
    step = gen.rng.choice((1, 1, 1, 2, 3))
    trip = gen.rng.randint(8, 48 if depth else 160)
    bound = min(start + step * trip, 256)
    loop = LoopSpec(var, start, bound, step)
    if depth == 0 and gen.rng.random() < profile.multilatch:
        array = gen.pick_int_array()
        loop.kind = "multilatch"
        loop.guard = (f"({array}[{var} & {gen.mask(array)}] & "
                      f"{gen.rng.choice((3, 7))}) == 0")
    stmts = gen.rng.randint(*profile.stmts)
    loop.body = _gen_body(gen, loop, stmts)
    if depth == 0 and loop.kind == "for" \
            and gen.rng.random() < profile.nested:
        _gen_nested(gen, loop)
    return loop


def _gen_nested(gen, outer):
    """Attach an inner loop; sometimes with a flattened affine 2-D store."""
    var = _new_loop_var(gen, "j")
    width = gen.rng.choice((8, 16))
    inner = LoopSpec(var, 0, width, 1)
    inner.body = _gen_body(gen, inner, gen.rng.randint(1, 2))
    # A true affine 2-D subscript when an array is provably large enough.
    candidates = [
        (name, size) for name, size in sorted(gen.spec.int_arrays.items())
        if (outer.bound - 1) * width + (width - 1) < size
    ]
    if candidates and gen.rng.random() < 0.7:
        array = gen.rng.choice([name for name, _ in candidates])
        inner.body.append(Stmt(
            "store_2d",
            [f"{array}[{outer.var} * {width} + {var}] = "
             f"{gen.int_value(var)};"],
            [Stmt("store_2d",
                  [f"{array}[{outer.var} * {width} + {var}] = 1;"])],
        ))
    outer.inner = inner


def _gen_fusion_pair(gen):
    """Two adjacent lockstep constant-trip loops over distinct arrays."""
    bound = gen.rng.choice((32, 64))
    pair = []
    first = gen.pick_int_array()
    second = gen.pick_int_array(exclude=first)
    for array in (first, second):
        var = _new_loop_var(gen, "i")
        loop = LoopSpec(var, 0, bound, 1)
        value = gen.rng.choice((var, f"{var} + {var}",
                                f"{var} * {gen.rng.randint(2, 5)}"))
        loop.body = [Stmt("store_affine", [f"{array}[{var}] = {value};"],
                          [Stmt("store_affine", [f"{array}[{var}] = 1;"])])]
        pair.append(loop)
    return pair


def _gen_peel_loop(gen):
    """Blocks for a loop whose only conflict is a boundary read/write
    (front/back peel candidate): an optional seed store *before* the
    loop, then ``A[i] = A[edge] + c`` over the whole array."""
    array = gen.pick_int_array()
    size = gen.spec.int_arrays[array]
    var = _new_loop_var(gen, "i")
    loop = LoopSpec(var, 0, min(size, 64), 1)
    edge = gen.rng.choice((0, loop.bound - 1))
    loop.body = [Stmt(
        "store_affine",
        [f"{array}[{var}] = {array}[{edge}] + {gen.rng.randint(1, 5)};"],
        [Stmt("store_affine", [f"{array}[{var}] = 1;"])],
    )]
    blocks = []
    if gen.rng.random() < 0.5:
        blocks.append(Stmt("peel_seed",
                           [f"{array}[{edge}] = {gen.rng.randint(1, 9)};"]))
    blocks.append(loop)
    return blocks


# -- top level -----------------------------------------------------------------


def generate_spec(seed, profile="mixed"):
    """The structured :class:`ProgramSpec` for ``(seed, profile)``."""
    gen = _Gen(seed, profile)
    spec = gen.spec
    rng = gen.rng

    for index in range(rng.randint(2, 4)):
        spec.int_arrays[f"A{index}"] = rng.choice(_INT_SIZES)
    for index in range(rng.randint(0, 2)):
        spec.float_arrays[f"F{index}"] = rng.choice(_FLOAT_SIZES)

    num_loops = rng.randint(*gen.profile.loops)
    while len([b for b in spec.blocks if isinstance(b, LoopSpec)]) \
            < num_loops:
        roll = rng.random()
        if roll < gen.profile.fusion_pair:
            spec.blocks.extend(_gen_fusion_pair(gen))
        elif roll < gen.profile.fusion_pair + gen.profile.peel:
            spec.blocks.extend(_gen_peel_loop(gen))
        else:
            spec.blocks.append(_gen_loop(gen))
    return spec


def render(spec):
    """Render a spec to MiniC source (pure; byte-deterministic)."""
    lines = [f"// fuzz seed={spec.seed} profile={spec.profile} "
             f"gen=v{GEN_VERSION}"]
    for name, size in sorted(spec.int_arrays.items()):
        lines.append(f"int {name}[{size}];")
    for name, size in sorted(spec.float_arrays.items()):
        lines.append(f"float {name}[{size}];")
    lines.append("int main() {")
    for name, (ctype, init) in sorted(spec.scalars.items()):
        lines.append(f"  {ctype} {name} = {init};")
    for var in spec.loop_vars:
        lines.append(f"  int {var};")
    lines.append("  int chk = 0;")
    lines.append("  int cz;")
    for block in spec.blocks:
        if isinstance(block, LoopSpec):
            lines.extend(block.render())
        else:
            for line in block.lines:
                lines.append(f"  {line}")
    # Checksum epilogue: fold every array and scalar into one printed
    # value so a single wrong store anywhere changes the observable
    # result. Floats are clamped before the cast so the fold stays
    # finite and wrap-defined.
    lines.append("  for (cz = 0; cz < 64; cz = cz + 1) {")
    term = ["chk"]
    for name, size in sorted(spec.int_arrays.items()):
        term.append(f"{name}[cz & {size - 1}]")
    lines.append(f"    chk = {' + '.join(term)};")
    for name, size in sorted(spec.float_arrays.items()):
        lines.append(f"    chk = chk ^ (int)(fmin(fabs("
                     f"{name}[cz & {size - 1}]), 65536.0) * 8.0);")
    lines.append("  }")
    for name, (ctype, _) in sorted(spec.scalars.items()):
        if ctype == "int":
            lines.append(f"  chk = chk + {name};")
        else:
            lines.append(f"  chk = chk ^ (int)(fmin(fabs({name}), "
                         f"65536.0));")
    lines.append("  print_int(chk & 65535);")
    lines.append("  return chk & 65535;")
    lines.append("}")
    return "\n".join(lines) + "\n"


def generate_program(seed, profile="mixed"):
    """The :class:`GeneratedProgram` for ``(seed, profile)``.

    Calling this twice with the same pair returns byte-identical source.
    """
    spec = generate_spec(seed, profile)
    return GeneratedProgram(
        name=f"fuzz/{profile}-s{seed}",
        seed=seed,
        profile=profile,
        source=render(spec),
        spec=spec,
    )
