"""The quarantine corpus: minimized reproducers for oracle disagreements.

Layout: one JSON file per case under the corpus root (default
``fuzz_corpus/`` in the working directory, override with
``REPRO_FUZZ_CORPUS`` or an explicit ``--corpus-dir``):

``fuzz_corpus/<profile>-s<seed>-<oracle>.json``
    ``schema``            corpus layout version
    ``case_id``           the file stem; stable triage handle
    ``seed`` / ``profile``  the generator pair that produced the program
    ``gen_version``       generator grammar version (a stale reproducer
                          is recognizable when the grammar has moved on)
    ``oracle`` / ``detail`` the primary disagreement
    ``failures``          every oracle failure of the original program
    ``source``            the *minimized* reproducer (what replay runs)
    ``original_source``   the unshrunk generated program
    ``fingerprint``       pipeline fingerprint(s) of the code that
                          disagreed (see ``passes.pass_manager``)
    ``created``           unix timestamp (informational only)

The corpus is a regression suite: ``tests/test_fuzz_corpus.py`` replays
every entry and asserts the oracles now *pass* — a freshly quarantined,
still-broken case therefore fails CI until the underlying bug is fixed,
and after the fix the entry keeps guarding against regression.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from .harness import run_oracles

CORPUS_SCHEMA = 1


def corpus_root(override=None):
    """The quarantine directory: explicit override, ``REPRO_FUZZ_CORPUS``,
    or ``./fuzz_corpus``."""
    if override is not None:
        return pathlib.Path(override)
    env = os.environ.get("REPRO_FUZZ_CORPUS")
    if env:
        return pathlib.Path(env)
    return pathlib.Path("fuzz_corpus")


class QuarantineCase:
    """One minimized reproducer with its provenance."""

    __slots__ = ("seed", "profile", "oracle", "detail", "source",
                 "original_source", "failures", "fingerprint",
                 "gen_version", "created")

    def __init__(self, seed, profile, oracle, detail, source,
                 original_source=None, failures=None, fingerprint=None,
                 gen_version=None, created=None):
        from ..passes.pass_manager import pipeline_fingerprint
        from .genprog import GEN_VERSION

        self.seed = seed
        self.profile = profile
        self.oracle = oracle
        self.detail = detail
        self.source = source
        self.original_source = original_source or source
        self.failures = list(failures or [])
        self.fingerprint = fingerprint if fingerprint is not None else (
            f"{pipeline_fingerprint(False)}|{pipeline_fingerprint(True)}"
        )
        self.gen_version = gen_version if gen_version is not None \
            else GEN_VERSION
        self.created = created if created is not None else time.time()

    @property
    def case_id(self):
        return f"{self.profile}-s{self.seed}-{self.oracle}"

    def to_dict(self):
        return {
            "schema": CORPUS_SCHEMA,
            "case_id": self.case_id,
            "seed": self.seed,
            "profile": self.profile,
            "gen_version": self.gen_version,
            "oracle": self.oracle,
            "detail": self.detail,
            "failures": self.failures,
            "source": self.source,
            "original_source": self.original_source,
            "fingerprint": self.fingerprint,
            "created": self.created,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            seed=data["seed"],
            profile=data["profile"],
            oracle=data["oracle"],
            detail=data.get("detail", ""),
            source=data["source"],
            original_source=data.get("original_source"),
            failures=data.get("failures"),
            fingerprint=data.get("fingerprint"),
            gen_version=data.get("gen_version"),
            created=data.get("created"),
        )

    def __repr__(self):
        return f"<QuarantineCase {self.case_id}>"


def store_case(case, root=None):
    """Write one case to the corpus; returns the path written."""
    directory = corpus_root(root)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{case.case_id}.json"
    path.write_text(json.dumps(case.to_dict(), indent=1, sort_keys=True)
                    + "\n")
    return path


def load_cases(root=None):
    """Every readable case in the corpus, sorted by case id."""
    directory = corpus_root(root)
    cases = []
    try:
        paths = sorted(directory.glob("*.json"))
    except OSError:
        return []
    for path in paths:
        case = _load_path(path)
        if case is not None:
            cases.append(case)
    return cases


def load_case(name, root=None):
    """One case by id, filename, or path; ``None`` when absent."""
    candidate = pathlib.Path(name)
    if candidate.is_file():
        return _load_path(candidate)
    directory = corpus_root(root)
    stem = name[:-5] if name.endswith(".json") else name
    return _load_path(directory / f"{stem}.json")


def _load_path(path):
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or "source" not in data:
        return None
    return QuarantineCase.from_dict(data)


def replay_case(case, fuel=None):
    """Re-run the four-way oracle on a case's minimized reproducer.

    Returns the fresh :class:`~repro.fuzz.harness.OracleReport`; the case
    is *fixed* when the report is ok, and still *reproduces* otherwise.
    """
    from .harness import DEFAULT_FUEL

    return run_oracles(case.source, name=case.case_id,
                       fuel=fuel if fuel is not None else DEFAULT_FUEL)
