"""The four-way differential oracle and the fuzzing campaign driver.

For each program the harness compiles once per pipeline mode and checks
four agreements:

``verifier``
    The IR is verifier-clean after *every* pass stage
    (``compile_source(verify_each=True)``), with the structural-transform
    stage both off and on. A frontend rejection of generated source also
    lands here — that is a generator bug, and just as quarantinable.
``backends``
    The closure interpreter, the block-template JIT, the vector tier, and
    the parallel tier (serial ``workers=1`` mode: typed shared-memory
    lanes plus TLS sections, no pool) produce byte-identical serialized
    profiles (and identical program result/output), per pipeline mode.
``transforms``
    Observable behaviour (result + output) is identical with the
    structural-transform stage on vs. off.
``crosscheck``
    No statically-proved DOALL loop shows a dynamic conflict
    (``unsound-static-doall == 0``), per pipeline mode — the soundness
    invariant from PR 4, now a continuously tested property.

An execution fault (trap, fuel exhaustion) is reported under the
``execution`` pseudo-oracle: generated programs are trap-free by
construction, so a trap is a generator or interpreter bug either way.

:func:`fuzz_campaign` drives generate -> oracle -> shrink -> quarantine
over a seed range, with per-case events recorded in the PR 2 telemetry
ledger format (see :meth:`repro.runtime.telemetry.RunTelemetry.fuzz_case`).
"""

from __future__ import annotations

import json
import time

from ..core.framework import Loopapalooza
from ..errors import ReproError, VerificationError
from ..analysis.depend import VERDICT_DOALL
from ..frontend.codegen import compile_source
from ..reporting.crosscheck import crosscheck_program
from ..runtime.serialize import profile_to_dict
from .genprog import generate_program, render

#: The execution tiers the differential oracle compares. ``par`` runs
#: in its serial one-worker mode (generated programs are far below any
#: sensible pool dispatch threshold), which still differentially tests
#: typed slot memory, local chunk kernels, and TLS commit paths.
BACKENDS = ("closure", "jit", "vec", "par")

#: Oracle names in checking order. ``execution`` is the pseudo-oracle for
#: runtime faults in generated programs; ``nest`` validates outer-loop
#: STATIC_DOALL claims (loops with subloops) against the conflict log.
ORACLES = ("verifier", "backends", "transforms", "crosscheck", "nest",
           "execution")

#: Default fuel for oracle runs — generated programs stay well under 10^5
#: dynamic instructions, so hitting this means a runaway loop.
DEFAULT_FUEL = 20_000_000


class OracleFailure:
    """One disagreement: which oracle fired and a human-readable detail."""

    __slots__ = ("oracle", "detail")

    def __init__(self, oracle, detail):
        self.oracle = oracle
        self.detail = detail

    def to_dict(self):
        return {"oracle": self.oracle, "detail": self.detail}

    def __repr__(self):
        return f"<OracleFailure {self.oracle}: {self.detail[:60]}>"


class OracleReport:
    """All oracle outcomes for one program."""

    def __init__(self, name, failures, checks, wall_s=0.0):
        self.name = name
        self.failures = list(failures)
        #: oracle -> "ok" | "fail" | "skipped"
        self.checks = dict(checks)
        self.wall_s = wall_s

    @property
    def ok(self):
        return not self.failures

    @property
    def failed_oracles(self):
        return sorted({f.oracle for f in self.failures})

    def describe(self):
        if self.ok:
            return f"{self.name}: all oracles agree"
        parts = "; ".join(
            f"{f.oracle}: {f.detail}" for f in self.failures)
        return f"{self.name}: DISAGREEMENT — {parts}"


def _mode(transform):
    return "on" if transform else "off"


def _profile_key(lp):
    """(serialized-profile, result, output) — the byte-equality triple."""
    profile = lp.profile()
    text = json.dumps(profile_to_dict(profile), sort_keys=True)
    return text, profile.result, tuple(lp.output)


def run_oracles(source, name="fuzz", fuel=DEFAULT_FUEL, backends=BACKENDS):
    """Run the four-way oracle on one MiniC source; an :class:`OracleReport`.

    Compiles and profiles the program ``2 x len(backends)`` times (every
    backend, transforms off and on); all comparisons come from those runs.
    """
    started = time.perf_counter()
    failures = []
    checks = {oracle: "ok" for oracle in ORACLES}

    # Oracle 1: verifier-clean IR after every pass stage, both modes.
    for transform in (False, True):
        try:
            compile_source(source, module_name=name, verify_each=True,
                           transform=transform)
        except VerificationError as error:
            checks["verifier"] = "fail"
            failures.append(OracleFailure(
                "verifier",
                f"transform={_mode(transform)}: {error.problems[0]}"
                + (f" (+{len(error.problems) - 1} more)"
                   if len(error.problems) > 1 else ""),
            ))
        except ReproError as error:
            checks["verifier"] = "fail"
            failures.append(OracleFailure(
                "verifier",
                f"frontend rejected generated source "
                f"(transform={_mode(transform)}): {error}",
            ))
    if failures:
        for oracle in ("backends", "transforms", "crosscheck", "nest",
                       "execution"):
            checks[oracle] = "skipped"
        return OracleReport(name, failures, checks,
                            time.perf_counter() - started)

    # Oracles 2-4 share one profile run per (backend, transform mode).
    keys = {}
    closure_lps = {}
    for transform in (False, True):
        for backend in backends:
            lp = Loopapalooza(source, name=name, fuel=fuel, backend=backend,
                              transform=transform)
            try:
                keys[(transform, backend)] = _profile_key(lp)
            except ReproError as error:
                checks["execution"] = "fail"
                failures.append(OracleFailure(
                    "execution",
                    f"{backend}/transform={_mode(transform)}: "
                    f"{type(error).__name__}: {error}",
                ))
                for oracle in ("backends", "transforms", "crosscheck",
                               "nest"):
                    checks[oracle] = "skipped"
                return OracleReport(name, failures, checks,
                                    time.perf_counter() - started)
            if backend == "closure":
                closure_lps[transform] = lp

    # Oracle 2: all backends byte-identical, per mode.
    reference_backend = backends[0]
    for transform in (False, True):
        reference = keys[(transform, reference_backend)]
        for backend in backends[1:]:
            if keys[(transform, backend)] != reference:
                checks["backends"] = "fail"
                failures.append(OracleFailure(
                    "backends",
                    f"{backend} diverges from {reference_backend} "
                    f"(transform={_mode(transform)})",
                ))

    # Oracle 3: transforms are observationally safe (result + output).
    off = keys[(False, reference_backend)]
    on = keys[(True, reference_backend)]
    if off[1:] != on[1:]:
        checks["transforms"] = "fail"
        failures.append(OracleFailure(
            "transforms",
            f"observable behaviour changed: result/output "
            f"{off[1]!r} vs {on[1]!r} with transforms on",
        ))

    # Oracle 4: no unsound STATIC_DOALL, per mode.
    for transform in (False, True):
        lp = closure_lps.get(transform)
        if lp is None:  # backends subset without "closure"
            lp = Loopapalooza(source, name=name, fuel=fuel,
                              backend=backends[0], transform=transform)
        rows = crosscheck_program(lp, name)
        unsound = [row for row in rows
                   if row.category == "unsound-static-doall"]
        for row in unsound:
            checks["crosscheck"] = "fail"
            failures.append(OracleFailure(
                "crosscheck",
                f"{row.loop_id} (transform={_mode(transform)}): "
                f"{row.verdict} but {row.conflicts} dynamic conflict(s)",
            ))

        # Oracle 5 (nest): outer-loop STATIC_DOALL claims specifically.
        # The nest engine proves an outer loop DOALL only when every
        # dependence is `=` at its level; a dynamic conflict on such a
        # loop means a direction-vector test accepted a cross-iteration
        # pair it should not have.
        outer = set()
        for loop_info in lp.static_info.loop_infos.values():
            for loop in loop_info.all_loops():
                if loop.subloops:
                    outer.add(loop.loop_id)
        dependence = lp.static_info.dependence()
        conflicts = {}
        for invocation in lp.profile().all_invocations():
            conflicts[invocation.loop_id] = \
                conflicts.get(invocation.loop_id, 0) \
                + invocation.conflict_count
        for loop_id in sorted(outer):
            verdict = dependence.get(loop_id)
            if verdict is None or verdict.verdict != VERDICT_DOALL:
                continue
            observed = conflicts.get(loop_id, 0)
            if observed:
                checks["nest"] = "fail"
                failures.append(OracleFailure(
                    "nest",
                    f"outer loop {loop_id} "
                    f"(transform={_mode(transform)}): STATIC_DOALL but "
                    f"{observed} dynamic conflict(s) across its nest",
                ))

    return OracleReport(name, failures, checks,
                        time.perf_counter() - started)


def oracle_predicate(oracles, fuel=DEFAULT_FUEL, backends=BACKENDS):
    """A spec -> bool callback for the shrinker: does any of the given
    oracle kinds still fire on the rendered spec?"""
    wanted = set(oracles)

    def still_fails(spec):
        report = run_oracles(render(spec), name="shrink", fuel=fuel,
                             backends=backends)
        return bool(wanted.intersection(report.failed_oracles))

    return still_fails


# -- campaign driver -----------------------------------------------------------


class FuzzSummary:
    """Outcome of one :func:`fuzz_campaign`."""

    def __init__(self, profile, first_seed):
        self.profile = profile
        self.first_seed = first_seed
        self.cases = 0
        self.quarantined = []   # QuarantineCase objects
        self.wall_s = 0.0
        self.budget_exhausted = False
        self.last_seed = None

    @property
    def ok(self):
        return not self.quarantined

    def describe(self):
        lines = [
            f"fuzz campaign: profile={self.profile} "
            f"seeds {self.first_seed}..{self.last_seed} "
            f"({self.cases} case(s), {self.wall_s:.1f}s)"
        ]
        if self.budget_exhausted:
            lines.append("  time budget exhausted before the full seed "
                         "range was covered")
        if self.quarantined:
            lines.append(f"  {len(self.quarantined)} DISAGREEMENT(S) "
                         f"quarantined:")
            for case in self.quarantined:
                lines.append(f"    {case.case_id}: [{case.oracle}] "
                             f"{case.detail}")
        else:
            lines.append("  all oracles agreed on every generated program")
        return "\n".join(lines)


def fuzz_campaign(seed=0, count=100, profile="mixed", time_budget=None,
                  corpus_dir=None, telemetry=None, fuel=DEFAULT_FUEL,
                  shrink=True, log=None):
    """Generate -> oracle -> shrink -> quarantine over ``count`` seeds.

    Any disagreeing program is delta-minimized against the same oracle
    kinds and stored in the quarantine corpus; the campaign then moves on
    to the next seed. Returns a :class:`FuzzSummary`.
    """
    summary = FuzzSummary(profile, seed)
    started = time.perf_counter()
    for current in range(seed, seed + count):
        if time_budget is not None \
                and time.perf_counter() - started >= time_budget:
            summary.budget_exhausted = True
            break
        program = generate_program(current, profile)
        report = run_oracles(program.source, program.name, fuel=fuel)
        summary.cases += 1
        summary.last_seed = current
        case = None
        if not report.ok:
            case = _quarantine(program, report, fuel=fuel, shrink=shrink,
                               corpus_dir=corpus_dir, log=log)
            summary.quarantined.append(case)
        if telemetry is not None:
            telemetry.fuzz_case(
                case_id=case.case_id if case else None,
                seed=current,
                profile=profile,
                verdict="quarantined" if case else "ok",
                oracles=report.failed_oracles,
                wall_s=report.wall_s,
            )
        if log is not None and not report.ok:
            log(report.describe())
    summary.wall_s = time.perf_counter() - started
    return summary


def _quarantine(program, report, fuel, shrink, corpus_dir, log=None):
    """Minimize a disagreeing program and store it in the corpus."""
    from .corpus import QuarantineCase, store_case
    from .shrink import shrink_spec

    spec = program.spec
    if shrink:
        predicate = oracle_predicate(report.failed_oracles, fuel=fuel)
        spec = shrink_spec(spec, predicate)
    primary = report.failures[0]
    case = QuarantineCase(
        seed=program.seed,
        profile=program.profile,
        oracle=primary.oracle,
        detail=primary.detail,
        source=render(spec),
        original_source=program.source,
        failures=[f.to_dict() for f in report.failures],
    )
    path = store_case(case, corpus_dir)
    if log is not None:
        log(f"quarantined {case.case_id} -> {path}")
    return case
