"""Differential fuzzing subsystem: generator, oracle harness, shrinker,
quarantine corpus.

The limit study's trustworthiness rests on every execution tier and every
pipeline stage agreeing about every program. The hand-written bench suites
exercise 225 loops; this package manufactures an unbounded supply of new
ones and checks the pipeline's core invariants on each:

* :mod:`.genprog` — a seeded, grammar-driven MiniC program generator.
  Every program is fully determined by a ``(seed, profile)`` pair and is
  biased toward the constructs the analyses care about (affine and
  non-affine subscripts, reductions, loop-carried dependences at known
  distances, calls with memory effects, nested and multi-latch loops).
* :mod:`.harness` — the differential oracle: closure/jit/vec/par
  profiles byte-identical, observable behaviour identical with
  transforms on vs. off, every STATIC_DOALL verdict dynamically conflict-free, and
  verifier-clean IR after every pass stage.
* :mod:`.shrink` — delta-minimizes a disagreeing program (drop
  statements and loops, simplify subscripts, halve trip counts) while
  re-checking the same oracle.
* :mod:`.corpus` — the quarantine corpus under ``fuzz_corpus/``: each
  minimized reproducer with its seed, oracle verdict, and pipeline
  fingerprint, replayed as regression tests by
  ``tests/test_fuzz_corpus.py``.

Entry point: ``repro fuzz`` (see :mod:`repro.cli`) or
:func:`repro.fuzz.harness.fuzz_campaign`.
"""

from .genprog import (  # noqa: F401
    GEN_VERSION,
    PROFILES,
    GeneratedProgram,
    generate_program,
    generate_spec,
)
from .harness import (  # noqa: F401
    ORACLES,
    OracleFailure,
    OracleReport,
    fuzz_campaign,
    run_oracles,
)
from .corpus import (  # noqa: F401
    QuarantineCase,
    corpus_root,
    load_case,
    load_cases,
    replay_case,
    store_case,
)
from .shrink import shrink_spec  # noqa: F401
