"""Delta-minimizer for disagreeing generated programs.

Works on the structured :class:`~repro.fuzz.genprog.ProgramSpec`, not on
source text, so every candidate it proposes is well-formed by
construction. The reduction moves, tried greedily to a fixpoint:

1. drop a whole top-level block (loop or seed statement);
2. drop an inner (nested) loop;
3. drop a single body statement;
4. replace a statement with one of its precomputed simpler alternatives
   (the generator builds the shrink ladder at generation time — e.g. a
   hashed subscript simplifies to a plain masked one, a complex stored
   value to a constant);
5. halve a loop's trip count.

After every accepted move the *same* oracle must still fire (the
``still_fails`` predicate, usually
:func:`repro.fuzz.harness.oracle_predicate`), so the minimized program
reproduces the original disagreement, not some new one.
"""

from __future__ import annotations

from .genprog import LoopSpec

#: Fixpoint bound — each round re-tries every move class once.
MAX_ROUNDS = 6


def _loops(spec):
    """(container, loop) pairs for every loop, outer before inner."""
    out = []
    for block in spec.blocks:
        if isinstance(block, LoopSpec):
            out.append(block)
            if block.inner is not None:
                out.append(block.inner)
    return out


def _try(spec, mutate, still_fails):
    """Apply ``mutate`` to a clone; keep it when the oracle still fires."""
    candidate = spec.clone()
    if not mutate(candidate):
        return spec, False
    if still_fails(candidate):
        return candidate, True
    return spec, False


def shrink_spec(spec, still_fails, max_rounds=MAX_ROUNDS):
    """Greedy fixpoint minimization of ``spec`` under ``still_fails``.

    Returns the (possibly unchanged) minimized spec. ``still_fails`` is
    only ever called on rendered candidates, never on the original — the
    caller already knows the original fails.
    """
    rounds = 0
    changed = True
    while changed and rounds < max_rounds:
        changed = False
        rounds += 1

        # 1. Drop top-level blocks, last first (later blocks usually
        #    depend on earlier seeds, not vice versa).
        index = len(spec.blocks) - 1
        while index >= 0:
            def drop_block(candidate, index=index):
                if len(candidate.blocks) <= index:
                    return False
                del candidate.blocks[index]
                return True

            spec, accepted = _try(spec, drop_block, still_fails)
            changed = changed or accepted
            index -= 1

        # 2. Drop inner loops.
        for position, block in enumerate(spec.blocks):
            if isinstance(block, LoopSpec) and block.inner is not None:
                def drop_inner(candidate, position=position):
                    loop = candidate.blocks[position]
                    if not isinstance(loop, LoopSpec) or loop.inner is None:
                        return False
                    loop.inner = None
                    return True

                spec, accepted = _try(spec, drop_inner, still_fails)
                changed = changed or accepted

        # 3. Drop individual body statements (keep at least one so the
        #    loop stays meaningful; move 1 removes empty-able loops whole).
        for position, block in enumerate(spec.blocks):
            if not isinstance(block, LoopSpec):
                continue
            for owner_path in ((position,), (position, "inner")):
                loop = _resolve(spec, owner_path)
                if loop is None:
                    continue
                stmt_index = len(loop.body) - 1
                while stmt_index >= 0:
                    def drop_stmt(candidate, owner_path=owner_path,
                                  stmt_index=stmt_index):
                        loop = _resolve(candidate, owner_path)
                        if loop is None or len(loop.body) <= 1 \
                                or stmt_index >= len(loop.body):
                            return False
                        del loop.body[stmt_index]
                        return True

                    spec, accepted = _try(spec, drop_stmt, still_fails)
                    changed = changed or accepted
                    stmt_index -= 1

        # 4. Simplify statements via their precomputed alternatives.
        for position, block in enumerate(spec.blocks):
            if not isinstance(block, LoopSpec):
                continue
            for owner_path in ((position,), (position, "inner")):
                loop = _resolve(spec, owner_path)
                if loop is None:
                    continue
                for stmt_index in range(len(loop.body)):
                    for alt_index in range(
                            len(loop.body[stmt_index].alts)):
                        def simplify(candidate, owner_path=owner_path,
                                     stmt_index=stmt_index,
                                     alt_index=alt_index):
                            loop = _resolve(candidate, owner_path)
                            if loop is None \
                                    or stmt_index >= len(loop.body):
                                return False
                            stmt = loop.body[stmt_index]
                            if alt_index >= len(stmt.alts):
                                return False
                            loop.body[stmt_index] = stmt.alts[alt_index]
                            return True

                        spec, accepted = _try(spec, simplify, still_fails)
                        changed = changed or accepted
                        if accepted:
                            break

        # 5. Halve trip counts (min trip 2 keeps a loop a loop).
        for position, block in enumerate(spec.blocks):
            if not isinstance(block, LoopSpec):
                continue
            for owner_path in ((position,), (position, "inner")):
                loop = _resolve(spec, owner_path)
                if loop is None or loop.trip <= 2:
                    continue

                def halve(candidate, owner_path=owner_path):
                    loop = _resolve(candidate, owner_path)
                    if loop is None or loop.trip <= 2:
                        return False
                    loop.bound = loop.start \
                        + loop.step * max(2, loop.trip // 2)
                    return True

                spec, accepted = _try(spec, halve, still_fails)
                changed = changed or accepted
    return spec


def _resolve(spec, path):
    """Follow a (block-index[, "inner"]) path to a LoopSpec, or ``None``."""
    if path[0] >= len(spec.blocks):
        return None
    node = spec.blocks[path[0]]
    if not isinstance(node, LoopSpec):
        return None
    if len(path) == 2:
        node = node.inner
    return node
