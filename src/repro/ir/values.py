"""Value hierarchy for the repro IR.

Mirrors LLVM's design: everything an instruction can consume is a
:class:`Value` with a type; instructions are themselves values (their result).
Every value keeps a *use list* so transformation passes (mem2reg, DCE,
constant folding) can rewrite users in O(uses) via
:meth:`Value.replace_all_uses_with`.
"""

from __future__ import annotations

from .types import F64, I1, PointerType, Type


class Value:
    """Anything that can appear as an instruction operand.

    Attributes:
        type: the :class:`~repro.ir.types.Type` of the value.
        name: optional printable name (SSA names are assigned by the printer
            when absent).
        uses: list of ``(user_instruction, operand_index)`` pairs, maintained
            by :class:`~repro.ir.instructions.Instruction` operand plumbing.
    """

    __slots__ = ("type", "name", "uses")

    def __init__(self, type_, name=""):
        if not isinstance(type_, Type):
            raise TypeError(f"expected a Type, got {type_!r}")
        self.type = type_
        self.name = name
        self.uses = []

    # -- use-list plumbing -------------------------------------------------

    def add_use(self, user, index):
        self.uses.append((user, index))

    def remove_use(self, user, index):
        try:
            self.uses.remove((user, index))
        except ValueError:
            pass  # already detached; tolerated so passes can be idempotent

    @property
    def num_uses(self):
        return len(self.uses)

    def users(self):
        """Iterate over the distinct instructions using this value."""
        seen = set()
        for user, _ in self.uses:
            if id(user) not in seen:
                seen.add(id(user))
                yield user

    def replace_all_uses_with(self, replacement):
        """Rewrite every user to consume ``replacement`` instead of ``self``."""
        if replacement is self:
            return
        for user, index in list(self.uses):
            user.set_operand(index, replacement)

    # -- printing helpers --------------------------------------------------

    def short_name(self):
        return f"%{self.name}" if self.name else "%<anon>"

    def __repr__(self):
        return f"<{type(self).__name__} {self.short_name()}: {self.type!r}>"


class Constant(Value):
    """Base class for immediate values."""

    __slots__ = ()


class ConstantInt(Constant):
    """An integer immediate, stored wrapped to its type's range."""

    __slots__ = ("value",)

    def __init__(self, type_, value):
        super().__init__(type_)
        self.value = type_.wrap(int(value))

    def short_name(self):
        return str(self.value)

    def __repr__(self):
        return f"<ConstantInt {self.value}: {self.type!r}>"


class ConstantFloat(Constant):
    """A floating-point immediate."""

    __slots__ = ("value",)

    def __init__(self, value):
        super().__init__(F64)
        self.value = float(value)

    def short_name(self):
        return repr(self.value)

    def __repr__(self):
        return f"<ConstantFloat {self.value}>"


TRUE = ConstantInt(I1, 1)
FALSE = ConstantInt(I1, 0)


def const_bool(flag):
    return TRUE if flag else FALSE


class Argument(Value):
    """A formal parameter of a function."""

    __slots__ = ("function", "index")

    def __init__(self, type_, name, function, index):
        super().__init__(type_, name)
        self.function = function
        self.index = index


class GlobalVariable(Value):
    """A module-level variable.

    The value's *type* is a pointer to ``allocated_type`` (like LLVM: globals
    are addresses). ``initializer`` is a Python scalar, a flat list of scalars
    for arrays, or ``None`` for zero-initialization.
    """

    __slots__ = ("allocated_type", "initializer", "module")

    def __init__(self, allocated_type, name, initializer=None, module=None):
        super().__init__(PointerType(allocated_type), name)
        self.allocated_type = allocated_type
        self.initializer = initializer
        self.module = module

    def short_name(self):
        return f"@{self.name}"

    def flat_initializer(self):
        """Return the initializer as a flat list of ``size_in_slots`` scalars."""
        size = self.allocated_type.size_in_slots()
        zero = 0.0 if _element_is_float(self.allocated_type) else 0
        if self.initializer is None:
            return [zero] * size
        if isinstance(self.initializer, (int, float)):
            values = [self.initializer]
        else:
            values = list(self.initializer)
        if len(values) > size:
            raise ValueError(
                f"initializer for @{self.name} has {len(values)} elements, "
                f"but the type holds {size}"
            )
        return values + [zero] * (size - len(values))


def _element_is_float(type_):
    while type_.is_array:
        type_ = type_.element
    return type_.is_float
