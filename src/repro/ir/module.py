"""Modules: the top-level IR container (globals + functions)."""

from __future__ import annotations

from ..errors import IRError
from .function import Function
from .types import FunctionType
from .values import GlobalVariable


class Module:
    """A compilation unit: named globals and functions.

    Names are unique within their namespace; redefinition raises
    :class:`~repro.errors.IRError`.
    """

    def __init__(self, name="module"):
        self.name = name
        self.globals = {}
        self.functions = {}
        # Loop provenance (loop_id -> LoopOrigin) and a human-readable log of
        # structural loop transformations, populated by the transform passes.
        # Loops never transformed have no entry and default to a MAIN origin.
        self.loop_origins = {}
        self.transform_log = []
        # Stamped by run_standard_pipeline; folded into code-cache keys so
        # entries produced under different pipeline configurations never
        # collide even when the final IR prints identically.
        self.pipeline_fingerprint = None

    # -- globals ---------------------------------------------------------------

    def add_global(self, allocated_type, name, initializer=None):
        if name in self.globals:
            raise IRError(f"duplicate global @{name}")
        variable = GlobalVariable(allocated_type, name, initializer, module=self)
        self.globals[name] = variable
        return variable

    def get_global(self, name):
        try:
            return self.globals[name]
        except KeyError:
            raise IRError(f"unknown global @{name}") from None

    # -- functions ---------------------------------------------------------------

    def add_function(self, name, return_type, param_types, intrinsic=None):
        if name in self.functions:
            raise IRError(f"duplicate function @{name}")
        function_type = FunctionType(return_type, param_types)
        function = Function(function_type, name, module=self, intrinsic=intrinsic)
        self.functions[name] = function
        return function

    def get_function(self, name):
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"unknown function @{name}") from None

    def defined_functions(self):
        """Functions with bodies, in insertion order."""
        return [f for f in self.functions.values() if f.blocks]

    def __repr__(self):
        return (
            f"<Module {self.name}: {len(self.globals)} globals, "
            f"{len(self.functions)} functions>"
        )
