"""IRBuilder: convenience layer for emitting instructions.

Keeps an insertion point (a basic block) and provides one method per
instruction kind, mirroring ``llvm::IRBuilder``. The MiniC code generator and
most unit tests construct IR exclusively through this class.
"""

from __future__ import annotations

from ..errors import IRError
from . import instructions as insts
from .types import F64, I1, I32
from .values import ConstantFloat, ConstantInt


class IRBuilder:
    """Appends instructions to the end of a chosen basic block."""

    def __init__(self, block=None):
        self.block = block

    def position_at_end(self, block):
        self.block = block
        return self

    def _insert(self, instruction):
        if self.block is None:
            raise IRError("builder has no insertion block")
        return self.block.append(instruction)

    # -- constants --------------------------------------------------------------

    @staticmethod
    def const_int(value, type_=I32):
        return ConstantInt(type_, value)

    @staticmethod
    def const_float(value):
        return ConstantFloat(value)

    @staticmethod
    def const_bool(value):
        return ConstantInt(I1, 1 if value else 0)

    # -- arithmetic ----------------------------------------------------------------

    def binop(self, opcode, lhs, rhs, name=""):
        return self._insert(insts.BinaryOp(opcode, lhs, rhs, name))

    def add(self, lhs, rhs, name=""):
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs, rhs, name=""):
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs, rhs, name=""):
        return self.binop("mul", lhs, rhs, name)

    def sdiv(self, lhs, rhs, name=""):
        return self.binop("sdiv", lhs, rhs, name)

    def srem(self, lhs, rhs, name=""):
        return self.binop("srem", lhs, rhs, name)

    def and_(self, lhs, rhs, name=""):
        return self.binop("and", lhs, rhs, name)

    def or_(self, lhs, rhs, name=""):
        return self.binop("or", lhs, rhs, name)

    def xor(self, lhs, rhs, name=""):
        return self.binop("xor", lhs, rhs, name)

    def shl(self, lhs, rhs, name=""):
        return self.binop("shl", lhs, rhs, name)

    def ashr(self, lhs, rhs, name=""):
        return self.binop("ashr", lhs, rhs, name)

    def lshr(self, lhs, rhs, name=""):
        return self.binop("lshr", lhs, rhs, name)

    def udiv(self, lhs, rhs, name=""):
        return self.binop("udiv", lhs, rhs, name)

    def urem(self, lhs, rhs, name=""):
        return self.binop("urem", lhs, rhs, name)

    def fadd(self, lhs, rhs, name=""):
        return self.binop("fadd", lhs, rhs, name)

    def fsub(self, lhs, rhs, name=""):
        return self.binop("fsub", lhs, rhs, name)

    def fmul(self, lhs, rhs, name=""):
        return self.binop("fmul", lhs, rhs, name)

    def fdiv(self, lhs, rhs, name=""):
        return self.binop("fdiv", lhs, rhs, name)

    # -- comparisons ----------------------------------------------------------------

    def icmp(self, predicate, lhs, rhs, name=""):
        return self._insert(insts.ICmp(predicate, lhs, rhs, name))

    def fcmp(self, predicate, lhs, rhs, name=""):
        return self._insert(insts.FCmp(predicate, lhs, rhs, name))

    # -- memory ----------------------------------------------------------------

    def alloca(self, allocated_type, name=""):
        return self._insert(insts.Alloca(allocated_type, name))

    def load(self, pointer, name=""):
        return self._insert(insts.Load(pointer, name))

    def store(self, value, pointer):
        return self._insert(insts.Store(value, pointer))

    def gep(self, pointer, indices, name=""):
        return self._insert(insts.GEP(pointer, indices, name))

    # -- control flow ----------------------------------------------------------------

    def br(self, target):
        return self._insert(insts.Br(target))

    def condbr(self, condition, then_block, else_block):
        return self._insert(insts.CondBr(condition, then_block, else_block))

    def ret(self, value=None):
        return self._insert(insts.Ret(value))

    # -- other ----------------------------------------------------------------

    def phi(self, type_, name=""):
        """Create a phi at the top of the current block."""
        node = insts.Phi(type_, name)
        if self.block is None:
            raise IRError("builder has no insertion block")
        return self.block.insert_phi(node)

    def call(self, callee, args, name=""):
        return self._insert(insts.Call(callee, list(args), name))

    def select(self, condition, true_value, false_value, name=""):
        return self._insert(insts.Select(condition, true_value, false_value, name))

    def cast(self, opcode, value, target_type, name=""):
        return self._insert(insts.Cast(opcode, value, target_type, name))

    def sitofp(self, value, name=""):
        return self.cast("sitofp", value, F64, name)

    def fptosi(self, value, target_type=I32, name=""):
        return self.cast("fptosi", value, target_type, name)
