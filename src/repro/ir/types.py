"""Type system for the repro IR.

A deliberately small subset of LLVM's type system — just enough to express the
programs the Loopapalooza study instruments:

* ``IntType(width)`` — two's-complement integers (``i1``, ``i8``, ``i32``,
  ``i64`` are the widths the frontend emits).
* ``FloatType()`` — a single ``double`` floating-point type (spelled ``f64``).
* ``PointerType(pointee)`` — typed pointers, used for arrays, by-reference
  parameters, and stack slots.
* ``ArrayType(element, count)`` — fixed-length aggregates, used for global and
  stack arrays.
* ``VoidType()`` — function return type only.
* ``FunctionType(return_type, param_types)`` — signatures.

Types are interned value objects: constructing ``IntType(32)`` twice yields
the same instance, so identity comparison (``is``) and equality agree, and
types can be used freely as dict keys.
"""

from __future__ import annotations


class Type:
    """Base class for all IR types. Instances are immutable and interned."""

    __slots__ = ()

    def __eq__(self, other):
        return self is other

    def __hash__(self):
        return id(self)

    @property
    def is_integer(self):
        return isinstance(self, IntType)

    @property
    def is_float(self):
        return isinstance(self, FloatType)

    @property
    def is_pointer(self):
        return isinstance(self, PointerType)

    @property
    def is_array(self):
        return isinstance(self, ArrayType)

    @property
    def is_void(self):
        return isinstance(self, VoidType)

    @property
    def is_scalar(self):
        """True for values that fit in one abstract machine register."""
        return self.is_integer or self.is_float or self.is_pointer

    def size_in_slots(self):
        """Abstract size: the number of scalar memory slots a value occupies.

        The interpreter's memory model is slot-addressed (one address per
        scalar), so every scalar type occupies exactly one slot and arrays
        occupy ``count * element_slots``.
        """
        raise NotImplementedError


class IntType(Type):
    """An integer type of a fixed bit width."""

    __slots__ = ("width",)
    _cache: dict = {}

    def __new__(cls, width):
        cached = cls._cache.get(width)
        if cached is not None:
            return cached
        if width <= 0:
            raise ValueError(f"integer width must be positive, got {width}")
        instance = super().__new__(cls)
        instance.width = width
        cls._cache[width] = instance
        return instance

    def size_in_slots(self):
        return 1

    def min_value(self):
        return -(1 << (self.width - 1)) if self.width > 1 else 0

    def max_value(self):
        return (1 << (self.width - 1)) - 1 if self.width > 1 else 1

    def wrap(self, value):
        """Reduce a Python int into this type's two's-complement range."""
        mask = (1 << self.width) - 1
        value &= mask
        if self.width > 1 and value >= (1 << (self.width - 1)):
            value -= 1 << self.width
        return value

    def __repr__(self):
        return f"i{self.width}"


class FloatType(Type):
    """The IR's single floating-point type (IEEE double)."""

    __slots__ = ()
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def size_in_slots(self):
        return 1

    def __repr__(self):
        return "f64"


class VoidType(Type):
    """Return type of functions producing no value."""

    __slots__ = ()
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def size_in_slots(self):
        raise TypeError("void has no size")

    def __repr__(self):
        return "void"


class PointerType(Type):
    """A pointer to a value of type ``pointee``."""

    __slots__ = ("pointee",)
    _cache: dict = {}

    def __new__(cls, pointee):
        cached = cls._cache.get(pointee)
        if cached is not None:
            return cached
        if not isinstance(pointee, Type) or pointee.is_void:
            raise ValueError(f"invalid pointee type: {pointee!r}")
        instance = super().__new__(cls)
        instance.pointee = pointee
        cls._cache[pointee] = instance
        return instance

    def size_in_slots(self):
        return 1

    def __repr__(self):
        return f"{self.pointee!r}*"


class ArrayType(Type):
    """A fixed-length array of ``count`` elements of type ``element``."""

    __slots__ = ("element", "count")
    _cache: dict = {}

    def __new__(cls, element, count):
        key = (element, count)
        cached = cls._cache.get(key)
        if cached is not None:
            return cached
        if not isinstance(element, Type) or not (element.is_scalar or element.is_array):
            raise ValueError(f"invalid array element type: {element!r}")
        if count <= 0:
            raise ValueError(f"array count must be positive, got {count}")
        instance = super().__new__(cls)
        instance.element = element
        instance.count = count
        cls._cache[key] = instance
        return instance

    def size_in_slots(self):
        return self.count * self.element.size_in_slots()

    def __repr__(self):
        return f"[{self.count} x {self.element!r}]"


class FunctionType(Type):
    """A function signature: return type plus an ordered parameter list."""

    __slots__ = ("return_type", "param_types")
    _cache: dict = {}

    def __new__(cls, return_type, param_types):
        param_types = tuple(param_types)
        key = (return_type, param_types)
        cached = cls._cache.get(key)
        if cached is not None:
            return cached
        if not (return_type.is_scalar or return_type.is_void):
            raise ValueError(f"invalid return type: {return_type!r}")
        for param in param_types:
            if not param.is_scalar:
                raise ValueError(f"invalid parameter type: {param!r}")
        instance = super().__new__(cls)
        instance.return_type = return_type
        instance.param_types = param_types
        cls._cache[key] = instance
        return instance

    def size_in_slots(self):
        raise TypeError("function types have no size")

    def __repr__(self):
        params = ", ".join(repr(p) for p in self.param_types)
        return f"{self.return_type!r} ({params})"


# Interned singletons used throughout the compiler.
I1 = IntType(1)
I8 = IntType(8)
I32 = IntType(32)
I64 = IntType(64)
F64 = FloatType()
VOID = VoidType()


def parse_type(text):
    """Parse a type written in the textual IR syntax (``i32``, ``f64*``,
    ``[8 x i32]``...). Raises ``ValueError`` on malformed input."""
    text = text.strip()
    if text.endswith("*"):
        return PointerType(parse_type(text[:-1]))
    if text == "f64":
        return F64
    if text == "void":
        return VOID
    if text.startswith("i"):
        try:
            return IntType(int(text[1:]))
        except ValueError:
            pass
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1]
        count_text, sep, element_text = inner.partition(" x ")
        if sep:
            return ArrayType(parse_type(element_text), int(count_text))
    raise ValueError(f"unparsable type: {text!r}")
