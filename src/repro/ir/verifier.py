"""Structural and type verifier for the repro IR.

Checks the invariants the analyses and the interpreter rely on:

* every block ends in exactly one terminator, and only in last position;
* phi nodes appear only at block tops and their incoming lists match the
  CFG predecessors *exactly* — as a multiset, so a conditional branch with
  both targets on the same block needs two incoming entries, duplicate
  incomings for a single edge are rejected, and incoming blocks from other
  functions are caught;
* branch targets belong to the same function;
* every SSA use is dominated by its definition;
* def-use chains are consistent (each operand lists the user).

``verify_module`` raises :class:`~repro.errors.VerificationError` listing all
problems found.
"""

from __future__ import annotations

from collections import Counter

from ..analysis.cfg import CFG
from ..analysis.dominators import DominatorTree
from ..errors import VerificationError
from .instructions import Instruction, Phi
from .values import Argument, Constant, GlobalVariable


def verify_function(function, problems):
    if function.is_declaration or function.is_intrinsic:
        return
    blocks = set(function.blocks)

    for block in function.blocks:
        if block.parent is not function:
            problems.append(f"@{function.name}/{block.name}: wrong parent")
        if block.terminator is None:
            problems.append(f"@{function.name}/{block.name}: missing terminator")
            continue
        seen_non_phi = False
        for position, instruction in enumerate(block.instructions):
            if instruction.parent is not block:
                problems.append(
                    f"@{function.name}/{block.name}: instruction with wrong parent"
                )
            if instruction.is_terminator and position != len(block.instructions) - 1:
                problems.append(
                    f"@{function.name}/{block.name}: terminator not last"
                )
            if isinstance(instruction, Phi):
                if seen_non_phi:
                    problems.append(
                        f"@{function.name}/{block.name}: phi after non-phi"
                    )
            else:
                seen_non_phi = True
            for index, operand in enumerate(instruction.operands):
                if (instruction, index) not in operand.uses:
                    problems.append(
                        f"@{function.name}/{block.name}: broken def-use link "
                        f"for operand {index} of a {instruction.opcode}"
                    )
        for successor in block.successors():
            if successor not in blocks:
                problems.append(
                    f"@{function.name}/{block.name}: branch to foreign block "
                    f"{successor.name}"
                )

    if any(f"@{function.name}" in p for p in problems):
        # Structural damage (missing terminators, foreign targets) makes the
        # CFG-based checks below meaningless or crash-prone; report early.
        return

    cfg = CFG(function)
    for block in function.blocks:
        predecessors = cfg.predecessors(block)
        # Multiset comparison by block identity: duplicate CFG edges (a
        # condbr with both targets here) need matching duplicate incoming
        # entries, and a duplicated incoming on a single edge is an error
        # the old set-based check missed.
        pred_counts = Counter(id(pred) for pred in predecessors)
        for phi in block.phis():
            for incoming_block in phi.incoming_blocks:
                if incoming_block not in blocks:
                    problems.append(
                        f"@{function.name}/{block.name}: phi incoming block "
                        f"{incoming_block.name} is not in this function"
                    )
            incoming_counts = Counter(id(b) for b in phi.incoming_blocks)
            if incoming_counts != pred_counts:
                incoming_names = sorted(
                    b.name for b in phi.incoming_blocks)
                pred_names = sorted(p.name for p in predecessors)
                problems.append(
                    f"@{function.name}/{block.name}: phi incoming blocks "
                    f"{incoming_names} do not match predecessor edges "
                    f"{pred_names}"
                )
            if not predecessors:
                problems.append(
                    f"@{function.name}/{block.name}: phi in a block with "
                    f"no predecessors"
                )

    _verify_dominance(function, cfg, problems)


def _verify_dominance(function, cfg, problems):
    domtree = DominatorTree(function, cfg)
    positions = {}
    for block in function.blocks:
        for index, instruction in enumerate(block.instructions):
            positions[id(instruction)] = (block, index)

    def dominates_use(definition, user, operand_index):
        def_block, def_index = positions[id(definition)]
        if isinstance(user, Phi):
            # A phi use must be dominated at the end of the incoming block.
            incoming = user.incoming_blocks[operand_index]
            return domtree.dominates(def_block, incoming)
        use_block, use_index = positions[id(user)]
        if def_block is use_block:
            return def_index < use_index
        return domtree.dominates(def_block, use_block)

    for block in function.blocks:
        if not cfg.is_reachable(block):
            continue  # unreachable code is exempt, like LLVM
        for instruction in block.instructions:
            for index, operand in enumerate(instruction.operands):
                if isinstance(operand, (Constant, Argument, GlobalVariable)):
                    continue
                from .function import Function

                if isinstance(operand, Function):
                    continue
                if not isinstance(operand, Instruction):
                    problems.append(
                        f"@{function.name}: operand of unexpected kind {operand!r}"
                    )
                    continue
                if id(operand) not in positions:
                    problems.append(
                        f"@{function.name}/{block.name}: use of an instruction "
                        f"not in this function"
                    )
                    continue
                if not isinstance(instruction, Phi) and not cfg.is_reachable(
                    positions[id(operand)][0]
                ):
                    continue
                if not dominates_use(operand, instruction, index):
                    problems.append(
                        f"@{function.name}/{block.name}: use of "
                        f"{operand.short_name()} not dominated by its definition"
                    )


def verify_module(module):
    """Raise :class:`VerificationError` if any function is malformed."""
    problems = []
    for function in module.functions.values():
        verify_function(function, problems)
    if problems:
        raise VerificationError(problems)
    return True
