"""Parser for the textual IR syntax produced by :mod:`repro.ir.printer`.

Supports round-tripping modules: globals, function declarations, intrinsic
declarations (bound back to the registry), and function bodies with every
instruction kind. Forward references to blocks and values are resolved with
a two-pass scheme per function.
"""

from __future__ import annotations

import re

from ..errors import ParseError
from .instructions import (
    CAST_OPS,
    FCMP_PREDICATES,
    FLOAT_BINOPS,
    GEP,
    ICMP_PREDICATES,
    INT_BINOPS,
    Alloca,
    BinaryOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    ICmp,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from .module import Module
from .types import parse_type
from .values import ConstantFloat, ConstantInt

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>;[^\n]*)
  | (?P<arrow>->)
  | (?P<punct>[()\[\]{},=:*])
  | (?P<float>-?\d+\.\d*(?:e[+-]?\d+)?|-?\d+e[+-]?\d+|-?inf|nan)
  | (?P<int>-?\d+)
  | (?P<global>@[A-Za-z_][\w.]*)
  | (?P<local>%[A-Za-z_][\w.]*)
  | (?P<word>[A-Za-z_][\w.]*)
    """,
    re.VERBOSE,
)


def _tokenize(text):
    tokens = []
    position = 0
    line = 1
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"bad character {text[position]!r} in IR", line)
        line += text[position:match.end()].count("\n")
        position = match.end()
        kind = match.lastgroup
        if kind in ("ws", "comment"):
            continue
        tokens.append((kind, match.group(), line))
    tokens.append(("eof", "", line))
    return tokens


class _Stream:
    def __init__(self, tokens):
        self.tokens = tokens
        self.position = 0

    @property
    def current(self):
        return self.tokens[self.position]

    def advance(self):
        token = self.current
        if token[0] != "eof":
            self.position += 1
        return token

    def accept(self, kind, text=None):
        token = self.current
        if token[0] == kind and (text is None or token[1] == text):
            return self.advance()
        return None

    def expect(self, kind, text=None):
        token = self.accept(kind, text)
        if token is None:
            want = text or kind
            raise ParseError(
                f"expected {want!r}, found {self.current[1]!r}", self.current[2]
            )
        return token

    def peek_is(self, kind, text=None):
        token = self.current
        return token[0] == kind and (text is None or token[1] == text)


def _parse_type_tokens(stream):
    """Parse a type, which may span several tokens (arrays, pointers)."""
    if stream.accept("punct", "["):
        count = int(stream.expect("int")[1])
        stream.expect("word", "x")
        element = _parse_type_tokens(stream)
        stream.expect("punct", "]")
        type_text = f"[{count} x {element!r}]"
        result = parse_type(type_text)
    else:
        word = stream.expect("word")[1]
        result = parse_type(word)
    while stream.accept("punct", "*"):
        from .types import PointerType

        result = PointerType(result)
    return result


class _FunctionBodyParser:
    """Two-pass body parser: collect block labels, then build instructions."""

    def __init__(self, function, module, stream):
        self.function = function
        self.module = module
        self.stream = stream
        self.blocks = {}
        self.values = {}
        self.pending = []  # (phi, [(value_name_or_const, block_name)])

    def run(self):
        for argument in self.function.arguments:
            self.values[argument.name] = argument
        # Pre-scan for labels so forward branches resolve.
        start = self.stream.position
        depth = 1
        while depth > 0:
            kind, text, _ = self.stream.advance()
            if kind == "punct" and text == "{":
                depth += 1
            elif kind == "punct" and text == "}":
                depth -= 1
            elif kind == "word" and self.stream.peek_is("punct", ":"):
                self.blocks[text] = self.function.append_block(text)
        self.stream.position = start

        current = None
        while True:
            if self.stream.accept("punct", "}"):
                break
            if self.stream.peek_is("word") and self.stream.tokens[
                self.stream.position + 1
            ][:2] == ("punct", ":"):
                label = self.stream.advance()[1]
                self.stream.advance()  # ':'
                current = self.blocks[label]
                continue
            if current is None:
                raise ParseError("instruction before first label", self.stream.current[2])
            self._parse_instruction(current)

        for phi, incomings in self.pending:
            for value_token, block_name in incomings:
                phi.add_incoming(self._resolve(value_token, phi.type), self.blocks[block_name])
        return self.function

    # -- helpers -------------------------------------------------------------

    def _resolve(self, token, type_):
        kind, text = token
        if kind == "int":
            if type_.is_float:
                return ConstantFloat(float(text))
            return ConstantInt(type_, int(text))
        if kind == "float":
            return ConstantFloat(float(text))
        if kind == "global":
            name = text[1:]
            if name in self.module.functions:
                return self.module.functions[name]
            return self.module.get_global(name)
        if kind == "local":
            name = text[1:]
            if name not in self.values:
                raise ParseError(f"use of undefined value %{name}")
            return self.values[name]
        raise ParseError(f"cannot resolve operand {text!r}")

    def _operand_token(self):
        token = self.stream.advance()
        if token[0] not in ("int", "float", "global", "local"):
            raise ParseError(f"expected an operand, found {token[1]!r}", token[2])
        return (token[0], token[1])

    def _typed_operand(self):
        type_ = _parse_type_tokens(self.stream)
        return self._resolve(self._operand_token(), type_), type_

    def _define(self, name, value):
        value.name = name
        self.values[name] = value

    def _block_ref(self):
        self.stream.expect("word", "label")
        token = self.stream.expect("local")
        return self.blocks[token[1][1:]]

    # -- instructions ------------------------------------------------------------

    def _parse_instruction(self, block):
        stream = self.stream
        if stream.peek_is("local"):
            result_name = stream.advance()[1][1:]
            stream.expect("punct", "=")
            opcode = stream.expect("word")[1]
            instruction = self._parse_valued(opcode, block)
            self._define(result_name, instruction)
            return
        opcode = stream.expect("word")[1]
        if opcode == "store":
            value, _ = self._typed_operand()
            stream.expect("punct", ",")
            pointer, _ = self._typed_operand()
            block.append(Store(value, pointer))
            return
        if opcode == "br":
            block.append(Br(self._block_ref()))
            return
        if opcode == "condbr":
            condition, _ = self._typed_operand()
            stream.expect("punct", ",")
            then_block = self._block_ref()
            stream.expect("punct", ",")
            else_block = self._block_ref()
            block.append(CondBr(condition, then_block, else_block))
            return
        if opcode == "ret":
            if stream.accept("word", "void"):
                block.append(Ret())
            else:
                value, _ = self._typed_operand()
                block.append(Ret(value))
            return
        if opcode == "call":
            self._parse_call(block, void=True)
            return
        raise ParseError(f"unknown instruction {opcode!r}")

    def _parse_call(self, block, void):
        stream = self.stream
        _parse_type_tokens(stream)  # return type (informational)
        callee_token = stream.expect("global")
        callee = self.module.get_function(callee_token[1][1:])
        stream.expect("punct", "(")
        args = []
        if not stream.peek_is("punct", ")"):
            while True:
                value, _ = self._typed_operand()
                args.append(value)
                if not stream.accept("punct", ","):
                    break
        stream.expect("punct", ")")
        instruction = Call(callee, args)
        block.append(instruction)
        return instruction

    def _parse_valued(self, opcode, block):
        stream = self.stream
        if opcode in INT_BINOPS or opcode in FLOAT_BINOPS:
            type_ = _parse_type_tokens(stream)
            lhs = self._resolve(self._operand_token(), type_)
            stream.expect("punct", ",")
            rhs = self._resolve(self._operand_token(), type_)
            return block.append(BinaryOp(opcode, lhs, rhs))
        if opcode == "icmp":
            predicate = stream.expect("word")[1]
            if predicate not in ICMP_PREDICATES:
                raise ParseError(f"bad icmp predicate {predicate!r}")
            type_ = _parse_type_tokens(stream)
            lhs = self._resolve(self._operand_token(), type_)
            stream.expect("punct", ",")
            rhs = self._resolve(self._operand_token(), type_)
            return block.append(ICmp(predicate, lhs, rhs))
        if opcode == "fcmp":
            predicate = stream.expect("word")[1]
            if predicate not in FCMP_PREDICATES:
                raise ParseError(f"bad fcmp predicate {predicate!r}")
            type_ = _parse_type_tokens(stream)
            lhs = self._resolve(self._operand_token(), type_)
            stream.expect("punct", ",")
            rhs = self._resolve(self._operand_token(), type_)
            return block.append(FCmp(predicate, lhs, rhs))
        if opcode == "alloca":
            allocated = _parse_type_tokens(stream)
            return block.append(Alloca(allocated))
        if opcode == "load":
            _parse_type_tokens(stream)  # result type
            stream.expect("punct", ",")
            pointer, _ = self._typed_operand()
            return block.append(Load(pointer))
        if opcode == "gep":
            pointer, _ = self._typed_operand()
            indices = []
            while stream.accept("punct", ","):
                index, _ = self._typed_operand()
                indices.append(index)
            return block.append(GEP(pointer, indices))
        if opcode == "phi":
            type_ = _parse_type_tokens(stream)
            phi = Phi(type_)
            block.insert_phi(phi)
            incomings = []
            while True:
                stream.expect("punct", "[")
                value_token = self._operand_token()
                stream.expect("punct", ",")
                pred = stream.expect("local")[1][1:]
                stream.expect("punct", "]")
                incomings.append((value_token, pred))
                if not stream.accept("punct", ","):
                    break
            self.pending.append((phi, incomings))
            return phi
        if opcode == "call":
            return self._parse_call(block, void=False)
        if opcode == "select":
            _parse_type_tokens(stream)  # i1
            condition = self._resolve(self._operand_token(), parse_type("i1"))
            stream.expect("punct", ",")
            true_value, _ = self._typed_operand()
            stream.expect("punct", ",")
            false_value, _ = self._typed_operand()
            return block.append(Select(condition, true_value, false_value))
        if opcode in CAST_OPS:
            value, _ = self._typed_operand()
            stream.expect("word", "to")
            target = _parse_type_tokens(stream)
            return block.append(Cast(opcode, value, target))
        raise ParseError(f"unknown instruction {opcode!r}")


def parse_module(text, name="parsed"):
    """Parse printed IR text back into a :class:`Module`."""
    from ..interp.intrinsics import INTRINSICS

    stream = _Stream(_tokenize(text))
    module = Module(name)
    pending_bodies = []
    while not stream.peek_is("eof"):
        if stream.accept("word", "global"):
            global_name = stream.expect("global")[1][1:]
            stream.expect("punct", ":")
            allocated = _parse_type_tokens(stream)
            initializer = None
            if stream.accept("punct", "="):
                if stream.accept("punct", "["):
                    initializer = []
                    while not stream.peek_is("punct", "]"):
                        token = stream.advance()
                        initializer.append(
                            float(token[1]) if token[0] == "float" else int(token[1])
                        )
                        stream.accept("punct", ",")
                    stream.expect("punct", "]")
                else:
                    token = stream.advance()
                    initializer = (
                        float(token[1]) if token[0] == "float" else int(token[1])
                    )
            module.add_global(allocated, global_name, initializer)
            continue
        if stream.accept("word", "declare"):
            stream.accept("word", "intrinsic")
            name_token, param_types, return_type, param_names = _parse_signature(stream)
            info = INTRINSICS.get(name_token)
            module.add_function(name_token, return_type, param_types, intrinsic=info)
            continue
        if stream.accept("word", "func"):
            name_token, param_types, return_type, param_names = _parse_signature(stream)
            function = module.add_function(name_token, return_type, param_types)
            for argument, arg_name in zip(function.arguments, param_names):
                argument.name = arg_name
            stream.expect("punct", "{")
            _FunctionBodyParser(function, module, stream).run()
            continue
        raise ParseError(
            f"unexpected top-level token {stream.current[1]!r}", stream.current[2]
        )
    return module


def _parse_signature(stream):
    name = stream.expect("global")[1][1:]
    stream.expect("punct", "(")
    param_types = []
    param_names = []
    if not stream.peek_is("punct", ")"):
        while True:
            param_types.append(_parse_type_tokens(stream))
            param_names.append(stream.expect("local")[1][1:])
            if not stream.accept("punct", ","):
                break
    stream.expect("punct", ")")
    stream.expect("arrow")
    return_type = _parse_type_tokens(stream)
    return name, param_types, return_type, param_names
