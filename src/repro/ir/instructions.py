"""Instruction set of the repro IR.

The subset of LLVM that the Loopapalooza study needs:

* integer/float binary arithmetic (``add`` ... ``fdiv``),
* comparisons (``icmp``/``fcmp``),
* memory (``alloca``, ``load``, ``store``, ``gep``),
* control flow (``br``, ``condbr``, ``ret``),
* ``phi``, ``call``, ``select``, and the scalar casts the MiniC frontend
  emits (``sitofp``, ``fptosi``, ``zext``, ``trunc``).

Every instruction is a :class:`~repro.ir.values.Value` (its own result).
Operands are managed through :meth:`Instruction.set_operand` so the def-use
chains stay consistent under rewriting.
"""

from __future__ import annotations

from ..errors import IRError
from .types import I1, I64, PointerType
from .values import Value

INT_BINOPS = ("add", "sub", "mul", "sdiv", "srem", "udiv", "urem",
              "and", "or", "xor", "shl", "ashr", "lshr")
FLOAT_BINOPS = ("fadd", "fsub", "fmul", "fdiv")
ICMP_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge")
FCMP_PREDICATES = ("oeq", "one", "olt", "ole", "ogt", "oge")
CAST_OPS = ("sitofp", "fptosi", "zext", "trunc")

COMMUTATIVE_BINOPS = frozenset({"add", "mul", "and", "or", "xor", "fadd", "fmul"})
ASSOCIATIVE_BINOPS = frozenset({"add", "mul", "and", "or", "xor", "fadd", "fmul"})


class Instruction(Value):
    """Base class: a typed value with operands, living inside a basic block."""

    __slots__ = ("operands", "parent")

    opcode = "<abstract>"

    def __init__(self, type_, operands, name=""):
        super().__init__(type_, name)
        self.parent = None
        self.operands = []
        for operand in operands:
            self._append_operand(operand)

    # -- operand plumbing ---------------------------------------------------

    def _append_operand(self, value):
        if not isinstance(value, Value):
            raise IRError(f"operand of {self.opcode} must be a Value, got {value!r}")
        index = len(self.operands)
        self.operands.append(value)
        value.add_use(self, index)

    def set_operand(self, index, value):
        """Replace operand ``index`` keeping use lists consistent."""
        old = self.operands[index]
        old.remove_use(self, index)
        self.operands[index] = value
        value.add_use(self, index)

    def drop_all_references(self):
        """Detach this instruction from every operand's use list."""
        for index, operand in enumerate(self.operands):
            operand.remove_use(self, index)
        self.operands = []

    # -- queries -------------------------------------------------------------

    @property
    def is_terminator(self):
        return isinstance(self, (Br, CondBr, Ret))

    @property
    def function(self):
        return self.parent.parent if self.parent is not None else None

    def may_read_memory(self):
        return isinstance(self, (Load, Call))

    def may_write_memory(self):
        return isinstance(self, (Store, Call))

    def has_side_effects(self):
        """Conservative: may this instruction's removal change behaviour?"""
        return self.may_write_memory() or self.is_terminator or isinstance(self, Call)

    def erase_from_parent(self):
        """Remove from the containing block and drop operand references."""
        if self.parent is not None:
            self.parent.remove_instruction(self)
        self.drop_all_references()

    def __repr__(self):
        return f"<{type(self).__name__} {self.short_name()}>"


class BinaryOp(Instruction):
    """Two-operand arithmetic/bitwise operation. ``opcode`` selects the op."""

    __slots__ = ("_opcode",)

    def __init__(self, opcode, lhs, rhs, name=""):
        if opcode in INT_BINOPS:
            if not lhs.type.is_integer or lhs.type is not rhs.type:
                raise IRError(f"{opcode} requires matching integer operands")
        elif opcode in FLOAT_BINOPS:
            if not lhs.type.is_float or not rhs.type.is_float:
                raise IRError(f"{opcode} requires float operands")
        else:
            raise IRError(f"unknown binary opcode {opcode!r}")
        super().__init__(lhs.type, [lhs, rhs], name)
        self._opcode = opcode

    @property
    def opcode(self):
        return self._opcode

    @property
    def lhs(self):
        return self.operands[0]

    @property
    def rhs(self):
        return self.operands[1]

    @property
    def is_commutative(self):
        return self._opcode in COMMUTATIVE_BINOPS


class ICmp(Instruction):
    """Signed integer / pointer comparison producing ``i1``."""

    __slots__ = ("predicate",)
    opcode = "icmp"

    def __init__(self, predicate, lhs, rhs, name=""):
        if predicate not in ICMP_PREDICATES:
            raise IRError(f"unknown icmp predicate {predicate!r}")
        if lhs.type is not rhs.type or not (lhs.type.is_integer or lhs.type.is_pointer):
            raise IRError("icmp requires matching integer or pointer operands")
        super().__init__(I1, [lhs, rhs], name)
        self.predicate = predicate

    @property
    def lhs(self):
        return self.operands[0]

    @property
    def rhs(self):
        return self.operands[1]


class FCmp(Instruction):
    """Ordered floating-point comparison producing ``i1``."""

    __slots__ = ("predicate",)
    opcode = "fcmp"

    def __init__(self, predicate, lhs, rhs, name=""):
        if predicate not in FCMP_PREDICATES:
            raise IRError(f"unknown fcmp predicate {predicate!r}")
        if not lhs.type.is_float or not rhs.type.is_float:
            raise IRError("fcmp requires float operands")
        super().__init__(I1, [lhs, rhs], name)
        self.predicate = predicate

    @property
    def lhs(self):
        return self.operands[0]

    @property
    def rhs(self):
        return self.operands[1]


class Alloca(Instruction):
    """Reserve a stack slot (or array of slots) in the current frame.

    Produces a pointer to ``allocated_type``. Allocas executed inside a loop
    body allocate a *fresh* slot each execution, which is exactly what the
    runtime's cactus-stack privatization relies on.
    """

    __slots__ = ("allocated_type",)
    opcode = "alloca"

    def __init__(self, allocated_type, name=""):
        if not (allocated_type.is_scalar or allocated_type.is_array):
            raise IRError(f"cannot alloca type {allocated_type!r}")
        super().__init__(PointerType(allocated_type), [], name)
        self.allocated_type = allocated_type


class Load(Instruction):
    """Read the scalar a pointer refers to."""

    __slots__ = ()
    opcode = "load"

    def __init__(self, pointer, name=""):
        if not pointer.type.is_pointer or not pointer.type.pointee.is_scalar:
            raise IRError(f"load requires a pointer to a scalar, got {pointer.type!r}")
        super().__init__(pointer.type.pointee, [pointer], name)

    @property
    def pointer(self):
        return self.operands[0]


class Store(Instruction):
    """Write a scalar through a pointer. Produces no value."""

    __slots__ = ()
    opcode = "store"

    def __init__(self, value, pointer):
        if not pointer.type.is_pointer:
            raise IRError(f"store requires a pointer, got {pointer.type!r}")
        if pointer.type.pointee is not value.type:
            raise IRError(
                f"store type mismatch: {value.type!r} into {pointer.type!r}"
            )
        from .types import VOID

        super().__init__(VOID, [value, pointer])

    @property
    def value(self):
        return self.operands[0]

    @property
    def pointer(self):
        return self.operands[1]


class GEP(Instruction):
    """Pointer arithmetic: index into an array (``getelementptr``).

    ``pointer`` must point at an array or scalar; each index peels one array
    dimension. The result points at the element type reached after applying
    all indices. Unlike LLVM there is no leading "dereference" index — a GEP
    on ``[N x T]*`` with one index yields ``T*`` directly, which matches how
    the MiniC frontend uses it.
    """

    __slots__ = ()
    opcode = "gep"

    def __init__(self, pointer, indices, name=""):
        if not pointer.type.is_pointer:
            raise IRError(f"gep requires a pointer, got {pointer.type!r}")
        element = pointer.type.pointee
        for index in indices:
            if not index.type.is_integer:
                raise IRError("gep indices must be integers")
            if element.is_array:
                element = element.element
            elif element.is_scalar:
                # Scalar pointer + offset: pointer stays at the same type
                # (C-style p[i] on a T* parameter).
                pass
            else:
                raise IRError(f"cannot index into {element!r}")
        super().__init__(PointerType(element), [pointer] + list(indices), name)

    @property
    def pointer(self):
        return self.operands[0]

    @property
    def indices(self):
        return self.operands[1:]


class Phi(Instruction):
    """SSA phi node. Incoming pairs are kept as parallel lists.

    Operands hold the incoming *values*; ``incoming_blocks`` holds the
    matching predecessor blocks (blocks are not values in this IR).
    """

    __slots__ = ("incoming_blocks",)
    opcode = "phi"

    def __init__(self, type_, name=""):
        super().__init__(type_, [], name)
        self.incoming_blocks = []

    def add_incoming(self, value, block):
        if value.type is not self.type:
            raise IRError(
                f"phi incoming type {value.type!r} does not match {self.type!r}"
            )
        self._append_operand(value)
        self.incoming_blocks.append(block)

    def incoming(self):
        """Iterate ``(value, block)`` pairs."""
        return zip(self.operands, self.incoming_blocks)

    def incoming_for_block(self, block):
        for value, pred in self.incoming():
            if pred is block:
                return value
        raise IRError(f"phi {self.short_name()} has no incoming for {block}")

    def remove_incoming_for_block(self, block):
        for position, pred in enumerate(self.incoming_blocks):
            if pred is block:
                # Detach the operand and compact both lists; remaining
                # operands must have their use indices rebuilt.
                for index, operand in enumerate(self.operands):
                    operand.remove_use(self, index)
                del self.operands[position]
                del self.incoming_blocks[position]
                for index, operand in enumerate(self.operands):
                    operand.add_use(self, index)
                return
        raise IRError(f"phi {self.short_name()} has no incoming for {block}")


class Br(Instruction):
    """Unconditional branch."""

    __slots__ = ("target",)
    opcode = "br"

    def __init__(self, target):
        from .types import VOID

        super().__init__(VOID, [])
        self.target = target

    def successors(self):
        return [self.target]

    def replace_successor(self, old, new):
        if self.target is old:
            self.target = new


class CondBr(Instruction):
    """Two-way conditional branch on an ``i1`` condition."""

    __slots__ = ("then_block", "else_block")
    opcode = "condbr"

    def __init__(self, condition, then_block, else_block):
        if condition.type is not I1:
            raise IRError("condbr condition must be i1")
        from .types import VOID

        super().__init__(VOID, [condition])
        self.then_block = then_block
        self.else_block = else_block

    @property
    def condition(self):
        return self.operands[0]

    def successors(self):
        return [self.then_block, self.else_block]

    def replace_successor(self, old, new):
        if self.then_block is old:
            self.then_block = new
        if self.else_block is old:
            self.else_block = new


class Ret(Instruction):
    """Return from the current function, optionally with a value."""

    __slots__ = ()
    opcode = "ret"

    def __init__(self, value=None):
        from .types import VOID

        super().__init__(VOID, [] if value is None else [value])

    @property
    def value(self):
        return self.operands[0] if self.operands else None

    def successors(self):
        return []


class Call(Instruction):
    """Direct call to a function or intrinsic declared in the module."""

    __slots__ = ("callee",)
    opcode = "call"

    def __init__(self, callee, args, name=""):
        signature = callee.function_type
        if len(args) != len(signature.param_types):
            raise IRError(
                f"call to @{callee.name}: expected "
                f"{len(signature.param_types)} args, got {len(args)}"
            )
        for arg, expected in zip(args, signature.param_types):
            if arg.type is not expected:
                raise IRError(
                    f"call to @{callee.name}: argument type {arg.type!r} "
                    f"does not match {expected!r}"
                )
        super().__init__(signature.return_type, list(args), name)
        self.callee = callee

    @property
    def args(self):
        return self.operands


class Select(Instruction):
    """Ternary select: ``cond ? a : b`` without control flow."""

    __slots__ = ()
    opcode = "select"

    def __init__(self, condition, true_value, false_value, name=""):
        if condition.type is not I1:
            raise IRError("select condition must be i1")
        if true_value.type is not false_value.type:
            raise IRError("select arm types must match")
        super().__init__(true_value.type, [condition, true_value, false_value], name)

    @property
    def condition(self):
        return self.operands[0]

    @property
    def true_value(self):
        return self.operands[1]

    @property
    def false_value(self):
        return self.operands[2]


class Cast(Instruction):
    """Scalar conversion: ``sitofp``, ``fptosi``, ``zext``, ``trunc``."""

    __slots__ = ("_opcode",)

    def __init__(self, opcode, value, target_type, name=""):
        if opcode not in CAST_OPS:
            raise IRError(f"unknown cast opcode {opcode!r}")
        if opcode == "sitofp" and not (value.type.is_integer and target_type.is_float):
            raise IRError("sitofp converts int -> float")
        if opcode == "fptosi" and not (value.type.is_float and target_type.is_integer):
            raise IRError("fptosi converts float -> int")
        if opcode in ("zext", "trunc"):
            if not (value.type.is_integer and target_type.is_integer):
                raise IRError(f"{opcode} converts int -> int")
            widening = target_type.width > value.type.width
            if opcode == "zext" and not widening:
                raise IRError("zext must widen")
            if opcode == "trunc" and widening:
                raise IRError("trunc must narrow")
        super().__init__(target_type, [value], name)
        self._opcode = opcode

    @property
    def opcode(self):
        return self._opcode

    @property
    def value(self):
        return self.operands[0]


_I64 = I64  # re-export convenience for the builder
