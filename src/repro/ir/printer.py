"""Textual printer for the repro IR.

The syntax is a compact LLVM dialect, e.g.::

    func @saxpy(f64 %arg0) -> void {
    entry:
      %i0 = alloca i32
      store i32 0, i32* %i0
      br label %loop
    loop:
      %i = phi i32 [0, %entry], [%inext, %loop]
      ...
    }

Names: every unnamed value receives ``%tN`` and every unnamed block ``bbN``
during printing (the objects themselves are not renamed). The printed form
round-trips through :mod:`repro.ir.parser`.
"""

from __future__ import annotations

from .instructions import (
    GEP,
    Alloca,
    BinaryOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    ICmp,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from .values import ConstantFloat, ConstantInt, GlobalVariable


class _NameScope:
    """Assigns stable printable names to values and blocks of one function."""

    def __init__(self, function):
        self.value_names = {}
        self.block_names = {}
        used_values = set()
        used_blocks = set()
        counter = 0
        for argument in function.arguments:
            name = argument.name or f"t{counter}"
            counter += 1
            self.value_names[id(argument)] = name
            used_values.add(name)
        for index, block in enumerate(function.blocks):
            base = block.name or f"bb{index}"
            name = base
            suffix = 1
            while name in used_blocks:
                name = f"{base}.{suffix}"
                suffix += 1
            used_blocks.add(name)
            self.block_names[id(block)] = name
        for block in function.blocks:
            for instruction in block.instructions:
                if instruction.type.is_void:
                    continue
                base = instruction.name or f"t{counter}"
                counter += 1
                name = base
                suffix = 1
                while name in used_values:
                    name = f"{base}.{suffix}"
                    suffix += 1
                used_values.add(name)
                self.value_names[id(instruction)] = name

    def value(self, value):
        if isinstance(value, ConstantInt):
            return str(value.value)
        if isinstance(value, ConstantFloat):
            return _format_float(value.value)
        if isinstance(value, GlobalVariable):
            return f"@{value.name}"
        from .function import Function

        if isinstance(value, Function):
            return f"@{value.name}"
        return f"%{self.value_names[id(value)]}"

    def typed(self, value):
        return f"{value.type!r} {self.value(value)}"

    def block(self, block):
        return f"%{self.block_names[id(block)]}"


def _format_float(value):
    text = repr(float(value))
    return text if ("." in text or "e" in text or "inf" in text or "nan" in text) else text + ".0"


def print_instruction(instruction, scope):
    """Render one instruction in the textual syntax."""
    def result_prefix():
        return f"%{scope.value_names[id(instruction)]} = "

    if isinstance(instruction, BinaryOp):
        return (
            f"{result_prefix()}{instruction.opcode} {instruction.type!r} "
            f"{scope.value(instruction.lhs)}, {scope.value(instruction.rhs)}"
        )
    if isinstance(instruction, ICmp):
        return (
            f"{result_prefix()}icmp {instruction.predicate} "
            f"{instruction.lhs.type!r} {scope.value(instruction.lhs)}, "
            f"{scope.value(instruction.rhs)}"
        )
    if isinstance(instruction, FCmp):
        return (
            f"{result_prefix()}fcmp {instruction.predicate} "
            f"{instruction.lhs.type!r} {scope.value(instruction.lhs)}, "
            f"{scope.value(instruction.rhs)}"
        )
    if isinstance(instruction, Alloca):
        return f"{result_prefix()}alloca {instruction.allocated_type!r}"
    if isinstance(instruction, Load):
        return (
            f"{result_prefix()}load {instruction.type!r}, "
            f"{scope.typed(instruction.pointer)}"
        )
    if isinstance(instruction, Store):
        return f"store {scope.typed(instruction.value)}, {scope.typed(instruction.pointer)}"
    if isinstance(instruction, GEP):
        indices = ", ".join(scope.typed(index) for index in instruction.indices)
        return f"{result_prefix()}gep {scope.typed(instruction.pointer)}, {indices}"
    if isinstance(instruction, Phi):
        pairs = ", ".join(
            f"[{scope.value(value)}, {scope.block(block)}]"
            for value, block in instruction.incoming()
        )
        return f"{result_prefix()}phi {instruction.type!r} {pairs}"
    if isinstance(instruction, Br):
        return f"br label {scope.block(instruction.target)}"
    if isinstance(instruction, CondBr):
        return (
            f"condbr i1 {scope.value(instruction.condition)}, "
            f"label {scope.block(instruction.then_block)}, "
            f"label {scope.block(instruction.else_block)}"
        )
    if isinstance(instruction, Ret):
        if instruction.value is None:
            return "ret void"
        return f"ret {scope.typed(instruction.value)}"
    if isinstance(instruction, Call):
        args = ", ".join(scope.typed(arg) for arg in instruction.args)
        callee = f"@{instruction.callee.name}"
        if instruction.type.is_void:
            return f"call void {callee}({args})"
        return f"{result_prefix()}call {instruction.type!r} {callee}({args})"
    if isinstance(instruction, Select):
        return (
            f"{result_prefix()}select i1 {scope.value(instruction.condition)}, "
            f"{scope.typed(instruction.true_value)}, "
            f"{scope.typed(instruction.false_value)}"
        )
    if isinstance(instruction, Cast):
        return (
            f"{result_prefix()}{instruction.opcode} "
            f"{scope.typed(instruction.value)} to {instruction.type!r}"
        )
    raise TypeError(f"cannot print {instruction!r}")


def print_function(function):
    """Render a function definition or declaration."""
    params = ", ".join(
        f"{arg.type!r} %{arg.name}" for arg in function.arguments
    )
    header = f"func @{function.name}({params}) -> {function.function_type.return_type!r}"
    if function.is_intrinsic:
        return f"declare intrinsic {header[5:]}"
    if function.is_declaration:
        return f"declare {header[5:]}"
    scope = _NameScope(function)
    lines = [header + " {"]
    for block in function.blocks:
        lines.append(f"{scope.block_names[id(block)]}:")
        for instruction in block.instructions:
            lines.append("  " + print_instruction(instruction, scope))
    lines.append("}")
    return "\n".join(lines)


def print_global(variable):
    init = variable.initializer
    if init is None:
        return f"global @{variable.name} : {variable.allocated_type!r}"
    if isinstance(init, (int, float)):
        return f"global @{variable.name} : {variable.allocated_type!r} = {init}"
    rendered = ", ".join(str(v) for v in init)
    return f"global @{variable.name} : {variable.allocated_type!r} = [{rendered}]"


def print_module(module):
    """Render a whole module (globals first, then functions)."""
    chunks = [f"; module {module.name}"]
    for variable in module.globals.values():
        chunks.append(print_global(variable))
    for function in module.functions.values():
        chunks.append(print_function(function))
    return "\n\n".join(chunks) + "\n"
