"""Basic blocks: straight-line instruction sequences ending in a terminator."""

from __future__ import annotations

from ..errors import IRError
from .instructions import Instruction, Phi


class BasicBlock:
    """An ordered list of instructions with a single terminator.

    Blocks are not :class:`~repro.ir.values.Value` objects in this IR (branch
    targets reference blocks directly), which keeps the def-use machinery
    simple while still supporting every pass Loopapalooza needs.
    """

    __slots__ = ("name", "parent", "instructions")

    def __init__(self, name="", parent=None):
        self.name = name
        self.parent = parent
        self.instructions = []

    # -- structural edits ----------------------------------------------------

    def append(self, instruction):
        if not isinstance(instruction, Instruction):
            raise IRError(f"cannot append {instruction!r} to a block")
        if instruction.parent is not None:
            raise IRError(f"{instruction!r} already belongs to a block")
        if self.terminator is not None:
            raise IRError(f"block {self.name} already has a terminator")
        instruction.parent = self
        self.instructions.append(instruction)
        return instruction

    def insert_before(self, position_instr, new_instr):
        """Insert ``new_instr`` immediately before ``position_instr``."""
        if new_instr.parent is not None:
            raise IRError(f"{new_instr!r} already belongs to a block")
        index = self.instructions.index(position_instr)
        new_instr.parent = self
        self.instructions.insert(index, new_instr)
        return new_instr

    def insert_phi(self, phi):
        """Insert a phi node at the top of the block (after existing phis)."""
        if phi.parent is not None:
            raise IRError(f"{phi!r} already belongs to a block")
        index = 0
        while index < len(self.instructions) and isinstance(
            self.instructions[index], Phi
        ):
            index += 1
        phi.parent = self
        self.instructions.insert(index, phi)
        return phi

    def remove_instruction(self, instruction):
        self.instructions.remove(instruction)
        instruction.parent = None

    def erase_from_parent(self):
        """Remove this block from its function and drop all its instructions'
        operand references (so values defined elsewhere lose the uses)."""
        for instruction in list(self.instructions):
            instruction.parent = None
            instruction.drop_all_references()
        self.instructions = []
        if self.parent is not None:
            self.parent.remove_block(self)

    # -- queries -------------------------------------------------------------

    @property
    def terminator(self):
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def successors(self):
        terminator = self.terminator
        return terminator.successors() if terminator is not None else []

    def predecessors(self):
        """Blocks in the same function that branch to this one.

        O(blocks) per call; passes that need repeated queries should build a
        :class:`~repro.analysis.cfg.CFG` once instead.
        """
        if self.parent is None:
            return []
        return [
            block
            for block in self.parent.blocks
            if self in block.successors()
        ]

    def phis(self):
        for instruction in self.instructions:
            if isinstance(instruction, Phi):
                yield instruction
            else:
                break

    def non_phi_instructions(self):
        for instruction in self.instructions:
            if not isinstance(instruction, Phi):
                yield instruction

    def first_non_phi(self):
        for instruction in self.instructions:
            if not isinstance(instruction, Phi):
                return instruction
        return None

    def __iter__(self):
        return iter(self.instructions)

    def __len__(self):
        return len(self.instructions)

    def __repr__(self):
        return f"<BasicBlock {self.name} ({len(self.instructions)} instrs)>"
