"""repro.ir — the SSA intermediate representation.

A compact LLVM-like IR: typed values, instructions with def-use chains,
basic blocks, functions, modules, an IRBuilder, a textual printer/parser,
and a verifier. See DESIGN.md for how this substitutes for LLVM IR in the
Loopapalooza reproduction.
"""

from .basic_block import BasicBlock
from .builder import IRBuilder
from .function import Function
from .instructions import (
    GEP,
    Alloca,
    BinaryOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from .module import Module
from .parser import parse_module
from .printer import print_function, print_instruction, print_module
from .types import (
    F64,
    I1,
    I8,
    I32,
    I64,
    VOID,
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    Type,
    VoidType,
    parse_type,
)
from .values import (
    Argument,
    Constant,
    ConstantFloat,
    ConstantInt,
    GlobalVariable,
    Value,
)
from .verifier import verify_module

__all__ = [
    "Alloca", "Argument", "ArrayType", "BasicBlock", "BinaryOp", "Br",
    "Call", "Cast", "CondBr", "Constant", "ConstantFloat", "ConstantInt",
    "F64", "FCmp", "FloatType", "Function", "FunctionType", "GEP",
    "GlobalVariable", "I1", "I32", "I64", "I8", "ICmp", "IRBuilder",
    "Instruction", "IntType", "Load", "Module", "Phi", "PointerType",
    "Ret", "Select", "Store", "Type", "VOID", "Value", "VoidType",
    "parse_module", "parse_type", "print_function", "print_instruction",
    "print_module", "verify_module",
]
