"""Functions: a named list of basic blocks plus a signature.

A function may be a *definition* (has blocks), a *declaration* of another
user function, or an *intrinsic* — a library routine the interpreter models
natively. Intrinsics carry the attribute set (pure / thread-safe / unsafe)
that drives the paper's ``fn1``/``fn2``/``fn3`` classification.
"""

from __future__ import annotations

from ..errors import IRError
from .basic_block import BasicBlock
from .values import Argument, Value


class Function(Value):
    """A function definition or declaration.

    Like LLVM, the function value itself has the *function type*; calls
    reference it directly via :class:`~repro.ir.instructions.Call`.
    """

    __slots__ = ("function_type", "arguments", "blocks", "module", "intrinsic")

    def __init__(self, function_type, name, module=None, intrinsic=None):
        super().__init__(function_type, name)
        self.function_type = function_type
        self.module = module
        self.intrinsic = intrinsic
        self.blocks = []
        self.arguments = [
            Argument(param_type, f"arg{index}", self, index)
            for index, param_type in enumerate(function_type.param_types)
        ]

    # -- structure -----------------------------------------------------------

    @property
    def is_declaration(self):
        return not self.blocks and self.intrinsic is None

    @property
    def is_intrinsic(self):
        return self.intrinsic is not None

    @property
    def entry_block(self):
        if not self.blocks:
            raise IRError(f"function @{self.name} has no blocks")
        return self.blocks[0]

    def append_block(self, name=""):
        block = BasicBlock(name or f"bb{len(self.blocks)}", parent=self)
        self.blocks.append(block)
        return block

    def insert_block_after(self, existing, name=""):
        block = BasicBlock(name, parent=self)
        index = self.blocks.index(existing)
        self.blocks.insert(index + 1, block)
        return block

    def remove_block(self, block):
        self.blocks.remove(block)
        block.parent = None

    def short_name(self):
        return f"@{self.name}"

    # -- iteration helpers ----------------------------------------------------

    def instructions(self):
        for block in self.blocks:
            yield from block.instructions

    def __iter__(self):
        return iter(self.blocks)

    def __repr__(self):
        kind = "intrinsic" if self.is_intrinsic else (
            "declaration" if self.is_declaration else "definition"
        )
        return f"<Function @{self.name} ({kind}, {len(self.blocks)} blocks)>"
