"""Function-call/continuation TLS estimator (the paper's §I extension).

The paper focuses its experiments on loop-level TLS but notes that the
inter-thread dependency categorization "applies also to broader techniques
such as function-call/continuation level TLS" (Marcuello & González's CQIR
spawning; Warg & Stenström's module-level parallelism limits). This module
turns the call records collected by the profiling runtime into that limit
estimate:

* the continuation of a call is spawned speculatively when the call starts;
* it can overlap the callee until its first true dependence — a use of the
  return value or a read of a location the callee wrote;
* the per-call saving is the independent continuation span capped by the
  callee's duration; program-level savings sum naively (a first-order upper
  bound, like the rest of the study — no spawn/commit costs, unbounded
  contexts).
"""

from __future__ import annotations


class CallTLSReport:
    """Whole-program call/continuation TLS estimate."""

    def __init__(self, total_cost, sites):
        self.total_cost = total_cost
        self.sites = sites  # site_id -> CallSiteSummary
        self.total_saving = sum(s.total_saving for s in sites.values())

    @property
    def speedup(self):
        """Estimated limit speedup from call-continuation TLS alone."""
        if self.total_cost <= 0:
            return 1.0
        remaining = max(self.total_cost * 0.01, self.total_cost - self.total_saving)
        return self.total_cost / remaining

    @property
    def call_coverage(self):
        """Fraction of dynamic instructions spent inside tracked calls."""
        if self.total_cost <= 0:
            return 0.0
        spent = sum(s.total_duration for s in self.sites.values())
        return min(1.0, spent / self.total_cost)

    def ranked_sites(self):
        """Call sites by total saving, biggest opportunity first."""
        return sorted(
            self.sites.values(),
            key=lambda summary: summary.total_saving,
            reverse=True,
        )

    def __repr__(self):
        return (
            f"<CallTLSReport speedup={self.speedup:.2f} "
            f"sites={len(self.sites)}>"
        )


def estimate_call_tls(profile):
    """Build a :class:`CallTLSReport` from a profiled run."""
    return CallTLSReport(profile.total_cost, dict(profile.call_sites))


def format_call_tls(report, limit=12):
    """Human-readable view of the top call sites."""
    lines = [
        "Function-call/continuation TLS estimate",
        f"  estimated limit speedup : {report.speedup:.2f}x",
        f"  time inside tracked calls: {report.call_coverage * 100:.1f}%",
        f"{'call site':40s}{'calls':>8s}{'mean dur':>10s}"
        f"{'hidden':>9s}{'dep calls':>11s}",
    ]
    for summary in report.ranked_sites()[:limit]:
        lines.append(
            f"{summary.site_id:40s}{summary.calls:>8d}"
            f"{summary.mean_duration:>10.1f}"
            f"{summary.hidden_fraction * 100:>8.1f}%"
            f"{summary.dependent_calls:>11d}"
        )
    return "\n".join(lines)
