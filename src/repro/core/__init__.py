"""repro.core — the Loopapalooza framework itself.

Configuration flags (Table II), the compile-time classification and
instrumentation planner, the per-configuration evaluator, and the
:class:`Loopapalooza` driver tying it all together.
"""

from .config import (
    BEST_HELIX,
    BEST_PDOALL,
    LPConfig,
    MODELS,
    paper_configurations,
)
from .call_tls import CallTLSReport, estimate_call_tls, format_call_tls
from .evaluator import (
    EvaluationResult,
    LoopSummary,
    ProfileCache,
    evaluate_all,
    evaluate_config,
)
from .framework import Loopapalooza
from .instrument import build_instrumentation
from .static_info import (
    CALL_INSTRUMENTED,
    CALL_PURE,
    CALL_THREAD_SAFE,
    CALL_UNSAFE,
    PHI_COMPUTABLE,
    PHI_NONCOMPUTABLE,
    PHI_REDUCTION,
    LoopStatic,
    ModuleStaticInfo,
    phi_key_for,
)

__all__ = [
    "BEST_HELIX",
    "BEST_PDOALL",
    "CALL_INSTRUMENTED",
    "CALL_PURE",
    "CALL_THREAD_SAFE",
    "CALL_UNSAFE",
    "CallTLSReport",
    "EvaluationResult",
    "LPConfig",
    "LoopStatic",
    "LoopSummary",
    "Loopapalooza",
    "MODELS",
    "ModuleStaticInfo",
    "PHI_COMPUTABLE",
    "PHI_NONCOMPUTABLE",
    "PHI_REDUCTION",
    "ProfileCache",
    "build_instrumentation",
    "evaluate_all",
    "estimate_call_tls",
    "evaluate_config",
    "format_call_tls",
    "paper_configurations",
    "phi_key_for",
]
