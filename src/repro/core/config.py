"""Loopapalooza configuration flags (paper Table II) and execution models.

A configuration is ``(model, reduc, dep, fn)``:

* ``model`` — ``doall`` | ``pdoall`` | ``helix`` (Fig. 1 execution models).
* ``reduc0`` — reductions are treated as non-computable LCDs;
  ``reduc1`` — reductions are considered parallel with no overheads.
* ``dep0`` — non-computable register LCDs are not parallelizable;
  ``dep1`` — lowered to memory (frequent memory LCDs, synchronized);
  ``dep2`` — accelerated with realistic value prediction;
  ``dep3`` — accelerated with perfect value prediction.
* ``fn0`` — loops with any call are sequential;
  ``fn1`` — only compiler-proven pure calls are parallel;
  ``fn2`` — pure + thread-safe library + instrumented user functions;
  ``fn3`` — all calls parallelizable.

DOALL supports no non-computable register LCDs, so only ``dep0`` combines
with it (the paper: "further relaxations of register LCDs (dep1–dep3) are
incompatible with DOALL").
"""

from __future__ import annotations

from ..errors import ConfigError

MODELS = ("doall", "pdoall", "helix")


class LPConfig:
    """One point in the configuration space, e.g.
    ``LPConfig('helix', reduc=1, dep=1, fn=2)``."""

    __slots__ = ("model", "reduc", "dep", "fn")

    def __init__(self, model, reduc=0, dep=0, fn=0):
        if model not in MODELS:
            raise ConfigError(f"unknown model {model!r} (pick from {MODELS})")
        if reduc not in (0, 1):
            raise ConfigError(f"reduc must be 0 or 1, got {reduc}")
        if dep not in (0, 1, 2, 3):
            raise ConfigError(f"dep must be 0..3, got {dep}")
        if fn not in (0, 1, 2, 3):
            raise ConfigError(f"fn must be 0..3, got {fn}")
        if model == "doall" and dep != 0:
            raise ConfigError(
                "DOALL does not support non-computable register LCDs: "
                "only dep0 combines with it"
            )
        self.model = model
        self.reduc = reduc
        self.dep = dep
        self.fn = fn

    # -- identity ------------------------------------------------------------

    @property
    def flags(self):
        return f"reduc{self.reduc}-dep{self.dep}-fn{self.fn}"

    @property
    def name(self):
        return f"{self.model}:{self.flags}"

    @classmethod
    def parse(cls, text):
        """Parse ``"helix:reduc1-dep1-fn2"`` (model prefix optional ->
        pdoall)."""
        model, sep, flag_text = text.partition(":")
        if not sep:
            model, flag_text = "pdoall", text
        values = {}
        for chunk in flag_text.split("-"):
            for prefix in ("reduc", "dep", "fn"):
                if chunk.startswith(prefix):
                    try:
                        values[prefix] = int(chunk[len(prefix):])
                    except ValueError:
                        raise ConfigError(f"bad flag chunk {chunk!r}") from None
                    break
            else:
                raise ConfigError(f"bad flag chunk {chunk!r}")
        return cls(
            model.strip().lower(),
            reduc=values.get("reduc", 0),
            dep=values.get("dep", 0),
            fn=values.get("fn", 0),
        )

    def __eq__(self, other):
        return (
            isinstance(other, LPConfig)
            and (self.model, self.reduc, self.dep, self.fn)
            == (other.model, other.reduc, other.dep, other.fn)
        )

    def __hash__(self):
        return hash((self.model, self.reduc, self.dep, self.fn))

    def __repr__(self):
        return f"<LPConfig {self.name}>"


def paper_configurations():
    """The 14 configurations of Figures 2 & 3, in presentation order
    (DOALL at the bottom of the chart, HELIX at the top)."""
    return [
        LPConfig("doall", 0, 0, 0),
        LPConfig("doall", 1, 0, 0),
        LPConfig("pdoall", 0, 0, 0),
        LPConfig("pdoall", 0, 2, 0),
        LPConfig("pdoall", 1, 2, 0),
        LPConfig("pdoall", 0, 0, 2),
        LPConfig("pdoall", 0, 2, 2),
        LPConfig("pdoall", 1, 2, 2),
        LPConfig("pdoall", 0, 3, 2),
        LPConfig("pdoall", 0, 3, 3),
        LPConfig("helix", 0, 0, 2),
        LPConfig("helix", 1, 0, 2),
        LPConfig("helix", 0, 1, 2),
        LPConfig("helix", 1, 1, 2),
    ]


BEST_PDOALL = LPConfig("pdoall", 1, 2, 2)
BEST_HELIX = LPConfig("helix", 1, 1, 2)
