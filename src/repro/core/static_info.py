"""Compile-time classification — the static half of Loopapalooza (§III-A).

For every canonicalized loop in a module, classify:

* each header phi as **computable** (SCEV add-rec — IVs and MIVs),
  **reduction** (recurrence descriptor), or **non-computable** (everything
  else: the register LCDs that constrain parallelization);
* the loop's **call classes** — which kinds of callees appear in the loop
  body (transitively through user functions for the *unsafe* taint), driving
  the ``fnX`` legality decision.

Loops that are not in simplified form (no preheader or multiple latches)
cannot be uniquely instrumented and are marked untrackable, exactly the
situation the paper's loopsimplify requirement avoids.
"""

from __future__ import annotations

from ..analysis.depend import analyze_module, classify_header_phis
from ..analysis.loop_info import LoopInfo
from ..analysis.purity import FunctionClass, PurityAnalysis
from ..analysis.scev import ScalarEvolution
from ..ir.instructions import Call

PHI_COMPUTABLE = "computable"
PHI_REDUCTION = "reduction"
PHI_NONCOMPUTABLE = "noncomputable"

CALL_PURE = "pure"
CALL_THREAD_SAFE = "thread_safe"
CALL_INSTRUMENTED = "instrumented"
CALL_UNSAFE = "unsafe"


def phi_key_for(loop_id, position, phi):
    """Stable identifier for a tracked phi: loop id + header position."""
    suffix = phi.name or "phi"
    return f"{loop_id}#{position}:{suffix}"


class LoopStatic:
    """Everything the evaluator needs to know about one static loop."""

    __slots__ = (
        "loop_id", "function_name", "depth", "phi_classes",
        "reduction_kinds", "call_classes", "trackable", "trip_count_hint",
        "untrackable_reason",
    )

    def __init__(self, loop_id, function_name, depth):
        self.loop_id = loop_id
        self.function_name = function_name
        self.depth = depth
        self.phi_classes = {}      # phi_key -> PHI_*
        self.reduction_kinds = {}  # phi_key -> reduction kind string
        self.call_classes = set()  # CALL_* present in the loop body
        self.trackable = True
        self.trip_count_hint = None
        self.untrackable_reason = None  # "multi-latch" | "no-preheader"

    def phis_of_class(self, wanted):
        return [key for key, cls in self.phi_classes.items() if cls == wanted]

    @property
    def noncomputable_phis(self):
        return self.phis_of_class(PHI_NONCOMPUTABLE)

    @property
    def reduction_phis(self):
        return self.phis_of_class(PHI_REDUCTION)

    @property
    def has_any_call(self):
        return bool(self.call_classes)

    def serial_under_fn(self, fn_level):
        """Does the fn flag force this loop serial? (paper Table II)"""
        if fn_level >= 3:
            return False
        if fn_level == 0:
            return self.has_any_call
        if fn_level == 1:
            return any(cls != CALL_PURE for cls in self.call_classes)
        # fn2: unsafe library state is the only blocker.
        return CALL_UNSAFE in self.call_classes

    def __repr__(self):
        return f"<LoopStatic {self.loop_id} phis={len(self.phi_classes)}>"


def loop_static_to_dict(static):
    """JSON-safe form of one :class:`LoopStatic` (profile-cache payload)."""
    return {
        "loop_id": static.loop_id,
        "function_name": static.function_name,
        "depth": static.depth,
        "phi_classes": dict(static.phi_classes),
        "reduction_kinds": dict(static.reduction_kinds),
        "call_classes": sorted(static.call_classes),
        "trackable": static.trackable,
        "trip_count_hint": static.trip_count_hint,
        "untrackable_reason": static.untrackable_reason,
    }


def loop_static_from_dict(data):
    """Rebuild a :class:`LoopStatic` from :func:`loop_static_to_dict`."""
    static = LoopStatic(data["loop_id"], data["function_name"], data["depth"])
    static.phi_classes = dict(data["phi_classes"])
    static.reduction_kinds = dict(data["reduction_kinds"])
    static.call_classes = set(data["call_classes"])
    static.trackable = data["trackable"]
    static.trip_count_hint = data["trip_count_hint"]
    # Absent in entries written before the field existed; those entries
    # miss on the schema version anyway, but stay lenient.
    static.untrackable_reason = data.get("untrackable_reason")
    return static


def census_of(loops):
    """Counts per classification — the data behind the Table-I view."""
    counts = {
        "loops": 0,
        "untrackable": 0,
        "computable_phis": 0,
        "reduction_phis": 0,
        "noncomputable_phis": 0,
        "loops_with_calls": 0,
        "loops_with_unsafe_calls": 0,
    }
    for static in loops.values():
        counts["loops"] += 1
        if not static.trackable:
            counts["untrackable"] += 1
            continue
        counts["computable_phis"] += len(static.phis_of_class(PHI_COMPUTABLE))
        counts["reduction_phis"] += len(static.reduction_phis)
        counts["noncomputable_phis"] += len(static.noncomputable_phis)
        if static.has_any_call:
            counts["loops_with_calls"] += 1
        if CALL_UNSAFE in static.call_classes:
            counts["loops_with_unsafe_calls"] += 1
    return counts


class StaticInfoView:
    """A deserialized static classification: the subset of
    :class:`ModuleStaticInfo` that evaluation and the census need, without
    a compiled module behind it (profile-cache warm starts)."""

    def __init__(self, loops):
        self.loops = loops

    def census(self):
        return census_of(self.loops)

    def __repr__(self):
        return f"<StaticInfoView {len(self.loops)} loops>"


class ModuleStaticInfo:
    """Classification of every loop in a module, plus function purity."""

    def __init__(self, module):
        self.module = module
        self.loops = {}
        self.purity = PurityAnalysis(module)
        self.callgraph = self.purity.callgraph
        self._unsafe_taint = self._compute_unsafe_taint()
        self.loop_infos = {}
        self._dependence = None
        for function in module.defined_functions():
            self._classify_function(function)

    def dependence(self):
        """Static memory-dependence verdicts (``{loop_id: LoopDependence}``),
        computed lazily on first use. Kept out of the serialized
        classification so profile-cache payloads are unaffected."""
        if self._dependence is None:
            self._dependence = analyze_module(self.module, self.loop_infos)
        return self._dependence

    # -- construction -------------------------------------------------------------

    def _compute_unsafe_taint(self):
        """Functions that may (transitively) touch unsafe library state."""
        tainted = set()
        for function in self.module.functions.values():
            if self.purity.classes.get(function) is FunctionClass.UNSAFE:
                tainted.add(function)
        changed = True
        while changed:
            changed = False
            for function in self.module.functions.values():
                if function in tainted:
                    continue
                if any(
                    callee in tainted
                    for callee in self.callgraph.callees_of(function)
                ):
                    tainted.add(function)
                    changed = True
        return tainted

    def _callee_class(self, callee):
        function_class = self.purity.classes.get(callee)
        if function_class is FunctionClass.PURE:
            return CALL_PURE
        if function_class is FunctionClass.THREAD_SAFE:
            return CALL_THREAD_SAFE
        if function_class is FunctionClass.UNSAFE:
            return CALL_UNSAFE
        if callee in self._unsafe_taint:
            return CALL_UNSAFE
        return CALL_INSTRUMENTED

    def _classify_function(self, function):
        loop_info = LoopInfo(function)
        self.loop_infos[function.name] = loop_info
        scev = ScalarEvolution(function, loop_info)
        for loop in loop_info.all_loops():
            static = LoopStatic(loop.loop_id, function.name, loop.depth)
            self.loops[loop.loop_id] = static
            if loop.single_latch() is None:
                # loop-simplify never merges backedges, so this shape is
                # terminal — report it distinctly (LP205) rather than as
                # a generic unsimplified loop.
                static.trackable = False
                static.untrackable_reason = "multi-latch"
                continue
            if loop.preheader(loop_info.cfg) is None:
                static.trackable = False
                static.untrackable_reason = "no-preheader"
                continue
            static.trip_count_hint = scev.trip_count(loop)
            for position, phi, reg_class, kind in classify_header_phis(
                    loop, scev):
                key = phi_key_for(loop.loop_id, position, phi)
                static.phi_classes[key] = reg_class
                if kind is not None:
                    static.reduction_kinds[key] = kind
            for block in loop.blocks:
                for instruction in block.instructions:
                    if isinstance(instruction, Call):
                        static.call_classes.add(
                            self._callee_class(instruction.callee)
                        )

    # -- census (Table I) ------------------------------------------------------------

    def census(self):
        """Counts per classification — the data behind the Table-I view."""
        return census_of(self.loops)
