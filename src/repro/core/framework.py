"""The Loopapalooza driver: compile -> classify -> instrument -> profile ->
evaluate.

This is the library's main entry point::

    from repro.core import Loopapalooza, LPConfig

    lp = Loopapalooza(minic_source, name="kernel")
    result = lp.evaluate(LPConfig("helix", reduc=1, dep=1, fn=2))
    print(result.speedup, result.coverage)

One profiling run per program; every configuration is evaluated analytically
from the recorded profile (see DESIGN.md).
"""

from __future__ import annotations

from ..errors import FrameworkError
from ..frontend.codegen import compile_source
from ..interp.interpreter import Interpreter
from ..runtime.recorder import ProfilingRuntime
from .config import LPConfig
from .evaluator import ProfileCache, evaluate_config
from .instrument import build_instrumentation
from .static_info import ModuleStaticInfo


class Loopapalooza:
    """Owns one program's compilation artifacts and execution profile.

    ``store`` (a :class:`~repro.runtime.profile_store.ProfileStore`) makes
    :meth:`profile` consult the persistent profile cache first: on a warm
    start the instrumented interpreter run is skipped entirely and the
    recorded profile + program output are restored from disk. The cached
    static classification is cross-checked against the freshly computed one;
    a mismatch (stale analysis code without a version bump) falls back to
    re-profiling.
    """

    def __init__(self, source, name="program", fuel=200_000_000,
                 verify_each=False, inline=False, store=None, backend=None,
                 transform=None):
        self.name = name
        self.fuel = fuel
        self.source = source
        self.inline = inline
        self.store = store
        #: Interpreter backend ("vec" / "jit" / "closure"); ``None`` follows the
        #: ``REPRO_NO_JIT`` environment contract.
        self.backend = backend
        if transform is None:
            from ..passes.pass_manager import transform_enabled

            transform = transform_enabled()
        #: Structural-transform pipeline flag (fission/peel/fusion); part of
        #: the profile-store key because it changes the loop population.
        self.transform = bool(transform)
        self.module = compile_source(
            source, module_name=name, verify_each=verify_each, inline=inline,
            transform=self.transform,
        )
        self.static_info = ModuleStaticInfo(self.module)
        self.instrumentation = build_instrumentation(self.static_info)
        self._profile = None
        self._cache = None
        self._output = None
        self.profiled_from_cache = False

    # -- profiling ------------------------------------------------------------

    def profile(self):
        """The ProgramProfile: loaded from the profile store on a warm
        start, otherwise measured by one instrumented interpreter run."""
        if self._profile is None:
            if self.store is not None:
                self._load_cached_profile()
        if self._profile is None:
            runtime = ProfilingRuntime(self.name)
            machine = Interpreter(
                self.module, runtime, self.instrumentation, fuel=self.fuel,
                backend=self.backend,
            )
            runtime.attach(machine)
            result = machine.run("main")
            self._profile = runtime.finish(machine.cost, result)
            self._cache = ProfileCache(self._profile)
            self._output = machine.output
            if self.store is not None:
                self.store.store(
                    self.source, self.fuel, self._profile, self.static_info,
                    self._output, inline=self.inline,
                    transform=self.transform,
                )
        return self._profile

    def _load_cached_profile(self):
        from ..core.static_info import loop_static_to_dict

        cached = self.store.load(self.source, self.fuel, inline=self.inline,
                                 transform=self.transform)
        if cached is None:
            return
        mine = {
            loop_id: loop_static_to_dict(s)
            for loop_id, s in self.static_info.loops.items()
        }
        theirs = {
            loop_id: loop_static_to_dict(s)
            for loop_id, s in cached.static_loops.items()
        }
        if mine != theirs:
            # The classifier disagrees with what was profiled: the cached
            # instrumentation plan is stale, so the profile is unusable.
            self.store.stats.hits -= 1
            self.store.stats.misses += 1
            return
        cached.profile.name = self.name
        self._profile = cached.profile
        self._cache = ProfileCache(self._profile)
        self._output = cached.output
        self.profiled_from_cache = True

    def run_uninstrumented(self):
        """Plain execution (no callbacks); returns ``(result, cost, output)``.

        Used by tests to confirm instrumentation does not perturb either the
        program's observable behaviour or its dynamic IR instruction count.
        """
        machine = Interpreter(self.module, None, None, fuel=self.fuel,
                              backend=self.backend)
        result = machine.run("main")
        return result, machine.cost, machine.output

    @property
    def total_cost(self):
        return self.profile().total_cost

    @property
    def output(self):
        self.profile()
        return self._output

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, config, innermost_only=False):
        """Evaluate one configuration (string or LPConfig).

        ``innermost_only`` reproduces the related-work baseline (paper §V,
        Kejariwal et al.): no outer-loop or nested parallelization.
        """
        if isinstance(config, str):
            config = LPConfig.parse(config)
        profile = self.profile()
        return evaluate_config(
            profile, self.static_info, config, self._cache,
            innermost_only=innermost_only,
        )

    def evaluate_many(self, configs):
        """Evaluate several configurations sharing all caches."""
        return {
            (c.name if isinstance(c, LPConfig) else c): self.evaluate(c)
            for c in configs
        }

    # -- introspection --------------------------------------------------------

    def loop_ids(self):
        return sorted(self.static_info.loops)

    def call_tls_report(self):
        """Function-call/continuation TLS estimate (paper §I extension)."""
        from .call_tls import estimate_call_tls

        return estimate_call_tls(self.profile())

    def census(self):
        """Static dependence census (the Table-I view for this program)."""
        return self.static_info.census()

    def describe_loop(self, loop_id):
        """Static classification record for one loop."""
        static = self.static_info.loops.get(loop_id)
        if static is None:
            raise FrameworkError(f"unknown loop {loop_id!r}")
        return static

    def __repr__(self):
        return f"<Loopapalooza {self.name}: {len(self.static_info.loops)} loops>"
