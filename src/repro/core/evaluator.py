"""Configuration evaluator — turns one execution profile into the paper's
numbers for any Table-II configuration.

The evaluation walks the loop-invocation tree bottom-up:

1. each invocation's *effective* iteration costs are its raw spans minus the
   parallel savings of the child invocations nested in each iteration
   (multi-level nested parallelism, as LP inherits from SWARM/T4);
2. the configuration decides which register LCDs constrain the loop
   (``reduc``/``dep`` flags), which call sites do (``fn`` flags), and the
   execution model turns the surviving constraints into a parallel cost
   (:mod:`repro.runtime.cost_models`);
3. loops are *statically marked* serial the way the paper describes —
   DOALL: any conflict ever; PDOALL: aggregate conflicting-iteration rate
   above 80 %; HELIX: no aggregate gain — and the evaluation re-runs until
   the marking set is stable (marking only grows, so this terminates).

Producer/consumer skews were recorded against serial timestamps; when inner
parallelism shrinks an invocation they are scaled by the invocation's
overall shrink factor (documented approximation; see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from ..predictors.hybrid import perfect_hybrid_flags
from .config import LPConfig
from ..runtime.cost_models import (
    PDOALL_SERIAL_THRESHOLD,
    ModelOutcome,
    doall_cost,
    helix_cost,
    pdoall_cost,
    pdoall_phase_breaks,
)
from .static_info import PHI_NONCOMPUTABLE, PHI_REDUCTION


class ProfileCache:
    """Config-independent derived data, shared across configurations.

    Everything here is a pure memo over the (immutable, post-``finish``)
    profile: value-predictor outcomes per (invocation, phi), raw
    iteration-cost arrays, the flattened invocation list, and the
    register-LCD key set per (loop, ``reduc`` flag). Caching never changes
    a result — only how often it is recomputed — so serial, warm-start,
    and process-pool evaluations stay bit-identical.
    """

    def __init__(self, profile):
        self.profile = profile
        self._flags = {}
        self._mispredicted = {}
        self._iter_costs = {}
        self._raw_serial = {}
        self._invocations = None
        self._lcd_keys = {}
        self._records = None
        self._records_static = None
        self._top = None

    def predictor_flags(self, invocation, phi_key):
        """Perfect-hybrid correctness flags for the phi's latch values."""
        key = (id(invocation), phi_key)
        flags = self._flags.get(key)
        if flags is None:
            values = invocation.lcd_values.get(phi_key, [])
            flags = perfect_hybrid_flags(values)
            self._flags[key] = flags
        return flags

    def mispredicted_iterations(self, invocation, phi_key):
        """Iteration indices whose incoming LCD value was mispredicted.

        ``values[i]`` is consumed by iteration ``i+1``; a miss on element
        ``i`` therefore delays iteration ``i+1``.
        """
        key = (id(invocation), phi_key)
        missed = self._mispredicted.get(key)
        if missed is None:
            flags = self.predictor_flags(invocation, phi_key)
            missed = {index + 1 for index, ok in enumerate(flags) if not ok}
            self._mispredicted[key] = missed
        return missed

    def iteration_costs(self, invocation):
        """The invocation's raw iteration spans as a float array.

        The returned array is shared — callers that mutate must copy.
        """
        key = id(invocation)
        costs = self._iter_costs.get(key)
        if costs is None:
            costs = np.asarray(invocation.iteration_costs(), dtype=float)
            self._iter_costs[key] = costs
        return costs

    def invocations(self):
        """The profile's flattened invocation list (parents first)."""
        if self._invocations is None:
            self._invocations = self.profile.all_invocations()
        return self._invocations

    def raw_serial(self, invocation):
        """``float(np.sum(iteration_costs))`` of the unadjusted array."""
        key = id(invocation)
        serial = self._raw_serial.get(key)
        if serial is None:
            costs = self.iteration_costs(invocation)
            serial = float(np.sum(costs)) if len(costs) else 0.0
            self._raw_serial[key] = serial
        return serial

    def register_lcd_keys(self, static, config):
        """The register LCDs constraining ``static`` under ``config.reduc``."""
        key = (id(static), config.reduc)
        keys = self._lcd_keys.get(key)
        if keys is None:
            keys = list(static.phis_of_class(PHI_NONCOMPUTABLE))
            if config.reduc == 0:
                keys.extend(static.phis_of_class(PHI_REDUCTION))
            self._lcd_keys[key] = keys
        return keys

    def records(self, static_info):
        """Config-independent per-invocation records, children-first.

        One record per invocation, in the bottom-up order
        ``_evaluate_once`` walks, with everything that does not depend on
        the configuration precomputed: the static-loop lookup, child
        record indices (so outcome arrays can be plain lists instead of
        ``id()``-keyed dicts), the shared leaf cost arrays with their sum
        and max, and the fn-flag serialization table. Rebuilding only
        happens if a different ``static_info`` is passed (never in
        practice: the cache and the static info belong to one instance).
        """
        if self._records is not None and self._records_static is static_info:
            return self._records
        reversed_invs = list(reversed(self.invocations()))
        position = {id(inv): i for i, inv in enumerate(reversed_invs)}
        loops = static_info.loops
        records = []
        for inv in reversed_invs:
            rec = _InvRecord()
            rec.inv = inv
            rec.loop_id = inv.loop_id
            rec.serial_cost_f = float(inv.serial_cost)
            rec.num_iterations = inv.num_iterations
            rec.conflict_pairs = inv.conflict_pairs
            rec.children = [
                (position[id(child)], float(child.serial_cost), child.parent_iter)
                for child in inv.children
            ]
            if rec.children:
                rec.eff_costs = None
                rec.raw_serial = None
                rec.raw_max = None
            else:
                costs = self.iteration_costs(inv)
                rec.eff_costs = costs
                rec.raw_serial = self.raw_serial(inv)
                rec.raw_max = float(np.max(costs)) if len(costs) else 0.0
            static = loops.get(inv.loop_id)
            rec.static = static
            rec.untracked = static is None or not static.trackable
            if rec.untracked:
                rec.fn_serial = (False, False, False, False)
                rec.reg_keys_r0 = rec.reg_keys_base = ()
            else:
                rec.fn_serial = (
                    static.serial_under_fn(0),
                    static.serial_under_fn(1),
                    static.serial_under_fn(2),
                    False,
                )
                base = list(static.phis_of_class(PHI_NONCOMPUTABLE))
                rec.reg_keys_base = base
                rec.reg_keys_r0 = base + list(static.phis_of_class(PHI_REDUCTION))
            records.append(rec)
        self._top = [
            (position[id(inv)], float(inv.serial_cost))
            for inv in self.profile.top_level
        ]
        self._records = records
        self._records_static = static_info
        return records

    @property
    def top_records(self):
        """``(record_index, serial_cost)`` per top-level invocation (in
        ``profile.top_level`` order); valid after :meth:`records`."""
        return self._top


class _InvRecord:
    """Config-independent evaluation state of one invocation (see
    :meth:`ProfileCache.records`)."""

    __slots__ = (
        "inv", "loop_id", "static", "untracked", "children",
        "eff_costs", "raw_serial", "raw_max", "serial_cost_f",
        "num_iterations", "conflict_pairs", "fn_serial",
        "reg_keys_r0", "reg_keys_base",
    )


class LoopSummary:
    """Aggregate outcome for one static loop under one configuration."""

    __slots__ = (
        "loop_id", "invocations", "parallel_invocations", "serial_cost",
        "parallel_cost", "iterations", "conflicting_iterations", "reasons",
    )

    def __init__(self, loop_id):
        self.loop_id = loop_id
        self.invocations = 0
        self.parallel_invocations = 0
        self.serial_cost = 0.0
        self.parallel_cost = 0.0
        self.iterations = 0
        self.conflicting_iterations = 0
        self.reasons = {}

    @property
    def speedup(self):
        if self.parallel_cost <= 0:
            return 1.0
        return self.serial_cost / self.parallel_cost

    @property
    def is_parallel(self):
        return self.parallel_invocations > 0

    def note_reason(self, reason):
        if reason:
            self.reasons[reason] = self.reasons.get(reason, 0) + 1

    def to_dict(self):
        """JSON-safe form for the run ledger; floats round-trip exactly."""
        return {
            "loop_id": self.loop_id,
            "invocations": self.invocations,
            "parallel_invocations": self.parallel_invocations,
            "serial_cost": self.serial_cost,
            "parallel_cost": self.parallel_cost,
            "iterations": self.iterations,
            "conflicting_iterations": self.conflicting_iterations,
            "reasons": dict(self.reasons),
        }

    @classmethod
    def from_dict(cls, data):
        summary = cls(data["loop_id"])
        summary.invocations = int(data["invocations"])
        summary.parallel_invocations = int(data["parallel_invocations"])
        summary.serial_cost = float(data["serial_cost"])
        summary.parallel_cost = float(data["parallel_cost"])
        summary.iterations = int(data["iterations"])
        summary.conflicting_iterations = int(data["conflicting_iterations"])
        summary.reasons = {
            reason: int(count)
            for reason, count in (data.get("reasons") or {}).items()
        }
        return summary

    def __repr__(self):
        return (
            f"<LoopSummary {self.loop_id} x{self.invocations} "
            f"speedup={self.speedup:.2f}>"
        )


class EvaluationResult:
    """Whole-program outcome for one configuration."""

    def __init__(self, config, total_serial, total_parallel, coverage, loops):
        self.config = config
        self.total_serial = total_serial
        self.total_parallel = total_parallel
        self.coverage = coverage
        self.loops = loops  # {loop_id: LoopSummary}

    @property
    def speedup(self):
        if self.total_parallel <= 0:
            return 1.0
        return self.total_serial / self.total_parallel

    def to_dict(self):
        """Ledger checkpoint form. JSON floats round-trip via ``repr``, so
        a deserialized result renders byte-identical figure text."""
        return {
            "config": self.config.name,
            "total_serial": self.total_serial,
            "total_parallel": self.total_parallel,
            "coverage": self.coverage,
            "loops": {
                loop_id: summary.to_dict()
                for loop_id, summary in self.loops.items()
            },
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            LPConfig.parse(data["config"]),
            float(data["total_serial"]),
            float(data["total_parallel"]),
            float(data["coverage"]),
            {
                loop_id: LoopSummary.from_dict(entry)
                for loop_id, entry in (data.get("loops") or {}).items()
            },
        )

    def __repr__(self):
        return (
            f"<EvaluationResult {self.config.name}: speedup={self.speedup:.2f} "
            f"coverage={self.coverage * 100:.1f}%>"
        )


def _reg_skew(invocation, phi_key, restrict_to=None):
    """Largest producer->consumer skew of a register LCD lowered to memory.

    Producer: the definition of the latch value in iteration ``i``
    (``lcd_def_offsets``); consumer: the first use of the phi in iteration
    ``i+1`` (``lcd_use_offsets``). Iterations without an observed use impose
    no wait. ``restrict_to`` optionally limits to given consumer iterations
    (the mispredicted set under ``dep2``).
    """
    defs = invocation.lcd_def_offsets.get(phi_key, [])
    uses = invocation.lcd_use_offsets.get(phi_key, [])
    best = 0.0
    for producer_iter, def_off in enumerate(defs):
        consumer_iter = producer_iter + 1
        if restrict_to is not None and consumer_iter not in restrict_to:
            continue
        use_off = uses[consumer_iter] if consumer_iter < len(uses) else None
        if use_off is None:
            continue
        skew = def_off - use_off
        if skew > best:
            best = float(skew)
    return best


def _apply_model(rec, config, cache, forced_serial, eff_costs,
                 serial, eff_max, innermost_only=False):
    """Decide this invocation's outcome; returns (ModelOutcome, n_conflict_iters).

    ``serial`` is the caller's precomputed ``float(np.sum(eff_costs))`` —
    the summary needs it too, so the array is summed exactly once.
    ``eff_max`` is the precomputed max of ``eff_costs`` for untouched leaf
    arrays (None when the array was adjusted for child savings).
    """
    invocation = rec.inv
    n = len(eff_costs)

    def serial_with(reason):
        return ModelOutcome(serial, False, reason), 0

    if rec.untracked:
        return serial_with("untracked")
    if innermost_only and rec.children:
        # Related-work mode (Kejariwal et al., §V): only innermost loops are
        # candidates; outer-loop and nested parallelization are disabled.
        return serial_with("outer-loop")
    if forced_serial and rec.loop_id in forced_serial:
        return serial_with("marked")
    fn = config.fn
    if rec.fn_serial[fn if fn < 3 else 3]:
        return serial_with("fn")

    reg_keys = rec.reg_keys_r0 if config.reduc == 0 else rec.reg_keys_base
    if config.dep == 0 and reg_keys:
        return serial_with("register-lcd")

    # Conflict pairs: consumer iteration -> latest producer iteration.
    # Copied only on the paths that inject extra (lowered/mispredicted
    # register-LCD) pairs; every other path reads it as-is.
    pairs = invocation.conflict_pairs
    pairs_copied = False

    def add_adjacent(consumer):
        nonlocal pairs, pairs_copied
        if not pairs_copied:
            pairs = dict(pairs)
            pairs_copied = True
        producer = consumer - 1
        if pairs.get(consumer, -1) < producer:
            pairs[consumer] = producer

    reg_delta = 0.0
    if reg_keys and config.dep == 1:
        if config.model == "helix":
            for key in reg_keys:
                reg_delta = max(reg_delta, _reg_skew(invocation, key))
        else:
            # Lowered LCDs manifest as frequent memory conflicts.
            for consumer in range(1, n):
                add_adjacent(consumer)
    elif reg_keys and config.dep == 2:
        for key in reg_keys:
            mispredicted = cache.mispredicted_iterations(invocation, key)
            if config.model == "helix":
                reg_delta = max(
                    reg_delta, _reg_skew(invocation, key, restrict_to=mispredicted)
                )
            else:
                for consumer in mispredicted:
                    if consumer < n:
                        add_adjacent(consumer)
    # dep3: perfect prediction removes every register LCD.

    if config.model == "doall":
        outcome = doall_cost(
            eff_costs, invocation.conflict_count > 0, serial, iter_max=eff_max
        )
        return outcome, len(pairs)
    if config.model == "pdoall":
        breaks = pdoall_phase_breaks(pairs, n)
        # The 80 % cutoff is on conflicting *iterations*, not phase breaks:
        # conflicts absorbed by an earlier phase break still count.
        conflicts = sum(1 for consumer in pairs if 0 < consumer < n)
        outcome = pdoall_cost(
            eff_costs, breaks, serial, conflicts=conflicts, iter_max=eff_max
        )
        return outcome, conflicts
    # HELIX: scale serial-time skews by the invocation's shrink factor.
    raw_total = invocation.serial_cost
    scale = (serial / raw_total) if raw_total > 0 else 1.0
    delta = max(invocation.max_mem_skew, reg_delta) * scale
    outcome = helix_cost(eff_costs, delta, serial, iter_max=eff_max)
    return outcome, len(pairs)


def _evaluate_once(profile, static_info, config, cache, forced_serial,
                   innermost_only=False):
    records = cache.records(static_info)
    effective = [0.0] * len(records)
    covered = [0.0] * len(records)
    summaries = {}

    for index, rec in enumerate(records):
        child_covered = 0.0
        children = rec.children
        if children:
            eff_costs = cache.iteration_costs(rec.inv).copy()
            n_costs = len(eff_costs)
            for child_index, child_serial, parent_iter in children:
                saving = child_serial - effective[child_index]
                if 0 <= parent_iter < n_costs:
                    eff_costs[parent_iter] = max(
                        0.0, eff_costs[parent_iter] - saving
                    )
                child_covered += covered[child_index]
            serial = float(np.sum(eff_costs)) if n_costs else 0.0
            eff_max = None
        else:
            # Leaf invocations (the vast majority) share the cached array
            # and its config-independent sum/max; no model mutates its input.
            eff_costs = rec.eff_costs
            serial = rec.raw_serial
            eff_max = rec.raw_max
        outcome, n_conflicts = _apply_model(
            rec, config, cache, forced_serial, eff_costs,
            serial, eff_max, innermost_only=innermost_only,
        )

        loop_id = rec.loop_id
        summary = summaries.get(loop_id)
        if summary is None:
            summary = summaries[loop_id] = LoopSummary(loop_id)
        summary.invocations += 1
        summary.serial_cost += serial
        summary.parallel_cost += outcome.cost
        summary.iterations += rec.num_iterations
        summary.conflicting_iterations += n_conflicts
        if outcome.parallel:
            summary.parallel_invocations += 1
            effective[index] = outcome.cost
            covered[index] = rec.serial_cost_f
        else:
            summary.note_reason(outcome.reason)
            effective[index] = serial
            covered[index] = child_covered

    saved = sum(
        serial_cost - effective[index]
        for index, serial_cost in cache.top_records
    )
    total_parallel = max(1.0, profile.total_cost - saved)
    total_covered = sum(covered[index] for index, _ in cache.top_records)
    coverage = (total_covered / profile.total_cost) if profile.total_cost else 0.0
    return EvaluationResult(
        config, float(profile.total_cost), total_parallel, coverage, summaries
    )


def _violations(result, config, forced_serial):
    """Static serial-marking rules applied to the aggregate (paper §III-B)."""
    newly = set()
    for loop_id, summary in result.loops.items():
        if loop_id in forced_serial or not summary.is_parallel:
            continue
        if config.model == "doall":
            # "Mark the loop as suitable for serial execution only" on the
            # first conflict: one conflicting invocation serializes them all.
            if summary.conflicting_iterations > 0:
                newly.add(loop_id)
            continue
        if config.model == "pdoall" and summary.iterations > 0:
            rate = summary.conflicting_iterations / summary.iterations
            if rate > PDOALL_SERIAL_THRESHOLD:
                newly.add(loop_id)
                continue
        if summary.parallel_cost >= summary.serial_cost - 1e-9:
            newly.add(loop_id)  # no aggregate gain: mark serial
    return newly


def evaluate_config(profile, static_info, config, cache=None,
                    innermost_only=False):
    """Evaluate one configuration against a profile (fixpoint over static
    serial marking). ``cache`` may be shared across configurations.

    ``innermost_only`` reproduces the related-work baseline (Kejariwal et
    al., paper §V): only innermost loop invocations may parallelize — no
    outer loops, no nested parallelism.
    """
    if cache is None:
        cache = ProfileCache(profile)
    forced_serial = set()
    for _ in range(1 + len(static_info.loops)):
        result = _evaluate_once(
            profile, static_info, config, cache, forced_serial,
            innermost_only=innermost_only,
        )
        newly = _violations(result, config, forced_serial)
        if not newly:
            return result
        forced_serial |= newly
    return result


def evaluate_all(profile, static_info, configs):
    """Evaluate many configurations, sharing the predictor cache."""
    cache = ProfileCache(profile)
    return {
        config.name: evaluate_config(profile, static_info, config, cache)
        for config in configs
    }
