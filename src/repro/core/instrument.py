"""The instrumentation planner — Loopapalooza's compile-time component.

Builds one :class:`~repro.interp.interpreter.FunctionInstrumentation` per
defined function, from the static classification:

* **loop edges** — entry (preheader->header), iteration (latch->header), and
  every exit edge, fired in exits-innermost-first order when one CFG edge
  leaves several loops at once;
* **register-LCD tracking** for every non-computable header phi (reductions
  included — they are non-computable LCDs under ``reduc0`` and their value
  streams feed the ``dep2`` predictors): the latch-incoming value is shipped
  with each iteration event, its producing definition is def-hooked, and
  every user of the phi is use-hooked.

Computable phis are filtered out here — the paper's point that compile-time
analysis minimizes run-time tracking overhead.
"""

from __future__ import annotations

from ..interp.interpreter import FunctionInstrumentation
from ..ir.instructions import Instruction
from .static_info import PHI_COMPUTABLE, phi_key_for

#: Bump whenever the instrumentation plan (what gets hooked, event
#: ordering, timestamp conventions) changes: recorded profiles depend on
#: it, so the persistent profile cache keys on this number.
INSTRUMENTATION_VERSION = 1


def jit_variant_for(plan, runtime):
    """Which codegen variant a run needs: ``True`` (instrumented) whenever
    a runtime is attached — even with an empty or missing plan, because a
    callee's memory traffic still feeds the caller's loop conflict
    tracking. ``False`` selects the zero-callback uninstrumented variant.
    """
    return runtime is not None


def build_instrumentation(static_info):
    """Return ``{function_name: FunctionInstrumentation}`` for a module."""
    plans = {}
    for function in static_info.module.defined_functions():
        plan = _plan_function(function, static_info)
        if not plan.is_empty:
            plans[function.name] = plan
    return plans


def _plan_function(function, static_info):
    plan = FunctionInstrumentation()
    loop_info = static_info.loop_infos[function.name]
    cfg = loop_info.cfg

    def add_action(pred, succ, kind, loop, priority):
        key = (id(pred), id(succ))
        plan.edge_actions.setdefault(key, []).append((priority, kind, loop.loop_id))

    # Collect per-edge actions with sortable priorities: exits first
    # (innermost loop first), then iteration, then entry.
    for loop in loop_info.loops_in_postorder():  # innermost first
        static = static_info.loops[loop.loop_id]
        if not static.trackable:
            continue
        preheader = loop.preheader(cfg)
        latch = loop.single_latch()
        add_action(preheader, loop.header, "enter", loop, (2, loop.depth))
        add_action(latch, loop.header, "iter", loop, (1, 0))
        for inside, outside in loop.exit_edges(cfg):
            add_action(inside, outside, "exit", loop, (0, -loop.depth))

        # Register-LCD tracking for non-computable phis (incl. reductions).
        latch_specs = []
        for position, phi in enumerate(loop.header.phis()):
            key = phi_key_for(loop.loop_id, position, phi)
            if static.phi_classes.get(key, PHI_COMPUTABLE) == PHI_COMPUTABLE:
                continue
            latch_value = phi.incoming_for_block(latch)
            latch_specs.append((key, latch_value))
            if isinstance(latch_value, Instruction):
                plan.def_hooks.setdefault(id(latch_value), []).append(
                    (loop.loop_id, key)
                )
            for user in phi.users():
                if user is phi:
                    continue
                plan.use_hooks.setdefault(id(user), []).append(
                    (loop.loop_id, key)
                )
        if latch_specs:
            plan.latch_values[(id(latch), id(loop.header))] = latch_specs

    # Sort each edge's actions by priority and strip the sort key.
    plan.edge_actions = {
        key: [(kind, loop_id) for _, kind, loop_id in sorted(actions)]
        for key, actions in plan.edge_actions.items()
    }

    _plan_call_sites(function, plan)
    return plan


def _plan_call_sites(function, plan):
    """Instrument every direct call to a *defined* user function for the
    call/continuation TLS estimator: the call itself (start/end) and every
    instruction consuming its return value (a continuation dependence)."""
    from ..ir.instructions import Call

    counter = 0
    for block in function.blocks:
        for instruction in block.instructions:
            if not isinstance(instruction, Call):
                continue
            callee = instruction.callee
            if callee.is_intrinsic or callee.is_declaration:
                continue
            site_id = f"{function.name}@{callee.name}#{counter}"
            counter += 1
            plan.call_sites[id(instruction)] = site_id
            for user in instruction.users():
                plan.call_use_hooks.setdefault(id(user), []).append(site_id)
