"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``run FILE``        — compile and execute a MiniC program, print result,
  cost, and any ``print_*`` output.
* ``census FILE``     — the Table-I view: per-loop phi and call-site
  classification.
* ``lint``            — run the static diagnostics (IR well-formedness,
  instrumentation consistency, suspicious loop shapes) on a MiniC file or
  on shipped benchmarks (``--bench all`` / ``--bench suite/name``); exits
  non-zero iff any error-severity diagnostic fires.
* ``crosscheck``      — join static dependence verdicts against dynamic
  profiles (a FILE or the bench suites) and print the agreement table;
  exits non-zero if any statically-proved DOALL loop conflicted
  dynamically.
* ``transform``       — before/after view of the structural-transform
  pipeline (loop fission/peeling/fusion) on a FILE or the bench suites:
  the "parallelism unlocked by transformation" figure, per-loop joins via
  loop provenance (``--loops``), and optional dynamic re-verification of
  every post-transform DOALL proof (``--crosscheck``).
* ``fuzz``            — differential fuzzing: generate seeded MiniC
  programs (``--seed --count --profile``), run the four-way oracle on
  each (closure/jit/vec byte-equality, transform observational safety,
  static-DOALL soundness, per-stage IR verification), delta-minimize and
  quarantine any disagreement under ``fuzz_corpus/``; ``--replay CASE``
  re-runs one quarantined reproducer.
* ``evaluate FILE``   — evaluate one or more configurations (``--config``,
  repeatable; defaults to the paper's 14).
* ``diagnose FILE``   — per-loop relaxation ladder: the first configuration
  at which each loop parallelizes.
* ``calltls FILE``    — function-call/continuation TLS estimate (§I
  extension): per call site, how much callee time the continuation hides.
* ``figures``         — regenerate the paper's figures over the bundled
  synthetic suites (optionally ``--suite`` to restrict; ``--jobs N`` fans
  the sweep out over a process pool, ``--cache-dir`` relocates the
  profile store).
* ``bench``           — list the bundled benchmarks; with ``--tiers
  closure,jit,vec,par`` time them on each execution tier instead
  (``--loops`` switches to the loop-throughput kernel suite, ``--json``
  appends the speedup table to a BENCH file).
* ``parexec``         — parallel tier: predicted-vs-achieved speedup
  report over the loop kernels (``--workers 1,2,4``), whole programs
  (``--programs``), or the ``--suite`` determinism gate (every bundled
  program byte-identical at every worker count).
* ``vec-report``      — per-loop vectorizer decisions (a FILE or
  ``--bench``): which innermost loops the vector tier takes, each
  bailout's reason, and the aggregate histogram.
* ``cache``           — inspect (``info``), wipe (``clear``), or summarize
  (``stats``) the persistent caches: the profile store plus the JIT code
  cache, with hit/miss tallies from the most recent recorded run.
* ``runs``            — inspect recorded sweep runs: ``list`` (default),
  ``show RUN_ID`` (the run manifest: retries, cache hits, quarantines,
  outcome tallies), ``clean``. Runs are written by ``figures --jobs``/
  ``--resume`` and ``examples/full_paper_run.py``.
"""

from __future__ import annotations

import argparse
import os
import sys

from .core.config import LPConfig, paper_configurations
from .core.framework import Loopapalooza
from .core.static_info import (
    PHI_COMPUTABLE,
    PHI_NONCOMPUTABLE,
    PHI_REDUCTION,
)
from .errors import ReproError

_LADDER = [
    ("doall:reduc0-dep0-fn0", "plain DOALL"),
    ("doall:reduc1-dep0-fn0", "+ reduction hardware"),
    ("pdoall:reduc1-dep0-fn0", "+ transactional restart"),
    ("pdoall:reduc1-dep2-fn0", "+ value prediction"),
    ("pdoall:reduc1-dep2-fn2", "+ parallel calls (fn2)"),
    ("helix:reduc1-dep1-fn2", "+ per-LCD synchronization (HELIX)"),
    ("pdoall:reduc0-dep3-fn3", "+ oracle prediction, all calls"),
]

_CLASS_SHORT = {
    PHI_COMPUTABLE: "computable",
    PHI_REDUCTION: "reduction",
    PHI_NONCOMPUTABLE: "non-computable",
}


def _load(path, fuel):
    with open(path) as handle:
        source = handle.read()
    return Loopapalooza(source, name=path, fuel=fuel)


def _cmd_run(args, out):
    lp = _load(args.file, args.fuel)
    profile = lp.profile()
    print(f"result: {profile.result}", file=out)
    print(f"dynamic IR instructions: {profile.total_cost}", file=out)
    if lp.output:
        print("program output:", file=out)
        for value in lp.output:
            print(f"  {value}", file=out)
    return 0


def _cmd_census(args, out):
    lp = _load(args.file, args.fuel)
    for loop_id in lp.loop_ids():
        static = lp.describe_loop(loop_id)
        print(f"loop {loop_id} (depth {static.depth})", file=out)
        if not static.trackable:
            print("  not trackable (unsimplified form)", file=out)
            continue
        for key, cls in sorted(static.phi_classes.items()):
            name = key.rsplit(":", 1)[1]
            print(f"  phi %{name}: {_CLASS_SHORT[cls]}", file=out)
        if static.call_classes:
            print(f"  calls: {', '.join(sorted(static.call_classes))}",
                  file=out)
    return 0


def _cmd_evaluate(args, out):
    lp = _load(args.file, args.fuel)
    configs = (
        [LPConfig.parse(text) for text in args.config]
        if args.config else paper_configurations()
    )
    print(f"{'configuration':30s}{'speedup':>10s}{'coverage':>10s}", file=out)
    for config in configs:
        result = lp.evaluate(config)
        print(
            f"{config.name:30s}{result.speedup:>9.2f}x"
            f"{result.coverage * 100:>9.1f}%",
            file=out,
        )
    return 0


def _cmd_diagnose(args, out):
    lp = _load(args.file, args.fuel)
    lp.profile()
    verdicts = {loop_id: None for loop_id in lp.loop_ids()}
    for config_name, label in _LADDER:
        result = lp.evaluate(config_name)
        for loop_id, summary in result.loops.items():
            if verdicts.get(loop_id) is None and summary.is_parallel \
                    and summary.speedup > 1.05:
                verdicts[loop_id] = (label, summary.speedup)
    for loop_id in lp.loop_ids():
        verdict = verdicts.get(loop_id)
        if verdict is None:
            print(f"{loop_id:28s} never parallel", file=out)
        else:
            label, speedup = verdict
            print(f"{loop_id:28s} unlocks at {label} ({speedup:.1f}x)",
                  file=out)
    return 0


def _cmd_figures(args, out):
    from .bench.suites import SuiteRunner
    from .reporting import (
        figure2_nonnumeric,
        figure3_numeric,
        figure5_coverage,
        format_coverage,
        format_speedup_figure,
    )
    from .runtime.telemetry import RunTelemetry, format_run_summary

    runner = SuiteRunner(cache_dir=args.cache_dir)
    jobs = args.jobs
    if args.suite:
        from .reporting.stats import geomean

        print(f"{'configuration':30s}{'geomean speedup':>18s}", file=out)
        for config in paper_configurations():
            speedups = runner.suite_speedups(args.suite, config)
            print(f"{config.name:30s}{geomean(speedups.values()):>17.2f}x",
                  file=out)
        return 0
    if args.resume:
        telemetry = RunTelemetry.resume(args.resume, root=args.runs_dir)
    else:
        telemetry = RunTelemetry.create(root=args.runs_dir)
    print(f"run id: {telemetry.run_id} "
          f"(resume an interrupted run with --resume {telemetry.run_id})",
          file=out)
    sweep = {
        "telemetry": telemetry,
        "task_timeout": args.task_timeout,
        "retries": args.retries,
    }
    try:
        print(format_speedup_figure(
            figure2_nonnumeric(runner, jobs=jobs, sweep=sweep),
            "Fig. 2 — non-numeric"), file=out)
        print(file=out)
        print(format_speedup_figure(
            figure3_numeric(runner, jobs=jobs, sweep=sweep),
            "Fig. 3 — numeric"), file=out)
        print(file=out)
        print(format_coverage(
            figure5_coverage(runner, jobs=jobs, sweep=sweep)), file=out)
    except BaseException:
        telemetry.finish(status="interrupted")
        raise
    telemetry.finish()
    print(file=out)
    print(format_run_summary(telemetry.summary()), file=out)
    return 0


def _cmd_cache(args, out):
    from .runtime.profile_store import ProfileStore, default_store

    store = (
        ProfileStore(args.cache_dir) if args.cache_dir else default_store()
    )
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} cached profile(s) from {store.root}",
              file=out)
        return 0
    if args.action == "stats":
        return _cache_stats(args, out, store)
    info = store.info()
    print(f"profile cache at {info['root']}", file=out)
    print(f"  schema:  {info['schema']}", file=out)
    print(f"  entries: {info['entries']}", file=out)
    print(f"  size:    {info['size_bytes']} bytes", file=out)
    return 0


def _cache_stats(args, out, store):
    """``repro cache stats`` — both persistent caches side by side, plus
    the hit/miss tallies recorded by the most recent run."""
    from .runtime.profile_store import CodeCache, default_code_cache_root
    from .runtime.telemetry import list_runs

    code_cache = CodeCache(default_code_cache_root())
    for label, info in (
        ("profile store", store.info()),
        ("code cache", code_cache.info()),
    ):
        print(f"{label} at {info['root']}", file=out)
        print(f"  schema:  {info['schema']}", file=out)
        print(f"  entries: {info['entries']}", file=out)
        print(f"  size:    {info['size_bytes']} bytes", file=out)
        if "cap" in info:
            print(f"  cap:     {info['cap']} entries "
                  f"({info.get('evictions', 0)} evicted this process)",
                  file=out)
    from .interp.codegen import codegen_memo_stats
    from .interp.veccodegen import vec_runtime_stats

    memo = codegen_memo_stats()
    window = vec_runtime_stats()
    print("in-process bounds", file=out)
    print(f"  jit memo:      {memo['memo_entries']}/{memo['memo_cap']} "
          f"entries, {memo['memo_evictions']} evictions", file=out)
    print(f"  gather windows: cap {window['window_cap']}/invocation, "
          f"{window['window_evictions']} evictions", file=out)
    runs = list_runs(args.runs_dir)
    if not runs:
        print("no recorded runs (hit/miss tallies appear after a sweep)",
              file=out)
        return 0
    manifest = runs[0]
    print(f"last run {manifest.get('run_id', '?')} "
          f"[{manifest.get('status', '?')}]", file=out)
    print(f"  profile cache: {manifest.get('cache_hits', 0)} hits, "
          f"{manifest.get('cache_misses', 0)} misses", file=out)
    for name, stats in sorted((manifest.get("cache_stats") or {}).items()):
        print(f"  {name}: {stats.get('entries', 0)} entries, "
              f"{stats.get('size_bytes', 0)} bytes, "
              f"{stats.get('hits', 0)} hits, {stats.get('misses', 0)} misses",
              file=out)
    return 0


def _cmd_runs(args, out):
    from .runtime.telemetry import (
        format_run_summary,
        format_runs_table,
        list_runs,
        load_manifest,
        purge_runs,
        runs_root,
    )

    root = args.runs_dir if args.runs_dir else runs_root()
    if args.action == "clean":
        removed = purge_runs(root)
        print(f"removed {removed} recorded run(s) from {root}", file=out)
        return 0
    if args.action == "show":
        if not args.run_id:
            print("error: `repro runs show` needs a RUN_ID", file=sys.stderr)
            return 1
        manifest = load_manifest(args.run_id, root)
        if manifest is None:
            print(f"error: no run {args.run_id!r} under {root}",
                  file=sys.stderr)
            return 1
        print(format_run_summary(manifest), file=out)
        return 0
    print(f"runs at {root}", file=out)
    print(format_runs_table(list_runs(root)), file=out)
    return 0


def _cmd_calltls(args, out):
    from .core.call_tls import estimate_call_tls, format_call_tls

    lp = _load(args.file, args.fuel)
    report = estimate_call_tls(lp.profile())
    print(format_call_tls(report), file=out)
    return 0


def _cmd_bench(args, out):
    from .bench import all_programs

    if not args.tiers:
        if args.loops:
            from .bench.loop_kernels import loop_kernels

            for kernel in loop_kernels():
                print(f"{kernel.name:20s} [{kernel.derived_from}] "
                      f"{kernel.description}", file=out)
            return 0
        for program in all_programs():
            print(f"{program.full_name:36s} {program.description}", file=out)
        return 0

    from .bench.tiers import (
        bench_loop_kernels,
        bench_programs,
        bench_row,
        format_tier_table,
        parse_tiers,
    )

    try:
        tiers = parse_tiers(args.tiers)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.loops:
        result = bench_loop_kernels(tiers, repeats=args.repeats,
                                    par_workers=args.par_workers)
    else:
        result = bench_programs(tiers, suite=args.suite, repeats=args.repeats,
                                par_workers=args.par_workers)
    print(format_tier_table(result), file=out)
    if args.json:
        import json

        row = bench_row(result, args.repeats)
        try:
            with open(args.json) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
        data.setdefault("tier_bench_rows", []).append(row)
        with open(args.json, "w") as handle:
            json.dump(data, handle, indent=2)
            handle.write("\n")
        print(f"appended tier_bench row to {args.json}", file=out)
    return 0


def _cmd_parexec(args, out):
    """Parallel tier: predicted-vs-achieved speedup report, or the
    ``--suite`` determinism gate (byte-identical at every worker count)."""
    from .reporting.speedup_report import (
        format_kernel_report,
        format_program_report,
        format_soundness_report,
        kernel_speedup_report,
        parexec_soundness,
        program_speedup_report,
    )

    workers_list = tuple(
        int(part) for part in str(args.workers).split(",") if part.strip()
    )
    if not workers_list or any(n < 1 for n in workers_list):
        print("error: --workers needs a comma-separated list of counts >= 1",
              file=sys.stderr)
        return 2
    if args.suite_check:
        report = parexec_soundness(
            workers_list=workers_list, suite=args.suite,
            min_trip=args.min_trip,
        )
        print(format_soundness_report(report), file=out)
        return 1 if report["mismatches"] else 0
    if args.programs:
        report = program_speedup_report(
            suite=args.suite, workers_list=workers_list,
            repeats=args.repeats, min_trip=args.min_trip,
        )
        print(format_program_report(report), file=out)
    else:
        report = kernel_speedup_report(
            workers_list=workers_list, repeats=args.repeats,
            min_trip=args.min_trip,
        )
        print(format_kernel_report(report), file=out)
    if args.json:
        import json

        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote report to {args.json}", file=out)
    return 0


def _cmd_vec_report(args, out):
    """Per-loop vectorizer decisions: which loops the vector tier takes,
    and why the rest bail out."""
    from .frontend.codegen import compile_source
    from .interp.veccodegen import summarize_vec_decisions, vector_decisions

    if args.bench:
        from .bench import all_programs, find_program
        from .bench.suites import ALL_SUITES, suite_programs

        if args.bench == "all":
            programs = all_programs()
        elif args.bench in ALL_SUITES:
            programs = suite_programs(args.bench)
        else:
            programs = [find_program(args.bench)]
        targets = [
            (p.full_name, compile_source(p.source)) for p in programs
        ]
    elif args.file:
        with open(args.file) as handle:
            source = handle.read()
        targets = [(args.file, compile_source(source))]
    else:
        print("error: `repro vec-report` needs a FILE or --bench",
              file=sys.stderr)
        return 2

    combined = []
    for name, module in targets:
        decisions = vector_decisions(module)
        combined.extend(decisions)
        print(name, file=out)
        if not decisions:
            print("  (no innermost loops)", file=out)
        for decision in decisions:
            if decision["status"] == "vectorized":
                print(f"  {decision['loop_id']:32s} vectorized "
                      f"(trip {decision['trip']})", file=out)
            else:
                print(f"  {decision['loop_id']:32s} bailout: "
                      f"{decision['reason']}", file=out)
    summary = summarize_vec_decisions(combined)
    print(file=out)
    print(f"{summary['loops']} innermost loop(s): "
          f"{summary['vectorized']} vectorized "
          f"({summary['static_trip']} static trip, "
          f"{summary['runtime_trip']} runtime trip)", file=out)
    for reason, count in sorted(
        summary["bailouts"].items(), key=lambda item: (-item[1], item[0])
    ):
        print(f"  {reason:32s} {count}", file=out)
    return 0


def _lint_targets(args):
    """``(name, Loopapalooza)`` pairs for lint/crosscheck file-or-bench
    selection."""
    if args.bench:
        from .bench import SuiteRunner, all_programs, find_program
        from .bench.suites import ALL_SUITES, suite_programs

        runner = SuiteRunner()
        if args.bench == "all":
            programs = all_programs()
        elif args.bench in ALL_SUITES:
            programs = suite_programs(args.bench)
        else:
            programs = [find_program(args.bench)]
        return [(p.full_name, runner.instance(p)) for p in programs]
    if args.file:
        return [(args.file, _load(args.file, args.fuel))]
    return None


def _cmd_lint(args, out):
    from .analysis.lint import (
        ERROR,
        LintContext,
        format_diagnostics,
        run_lint,
    )

    targets = _lint_targets(args)
    if targets is None:
        print("error: `repro lint` needs a FILE or --bench", file=sys.stderr)
        return 2
    exit_code = 0
    for name, lp in targets:
        diagnostics = run_lint(LintContext.for_program(lp))
        if args.errors_only:
            diagnostics = [d for d in diagnostics if d.severity == ERROR]
        print(format_diagnostics(diagnostics, name=name), file=out)
        if any(d.severity == ERROR for d in diagnostics):
            exit_code = 1
    return exit_code


def _cmd_transform(args, out):
    """Before/after view of the structural-transform pipeline
    (fission/peeling/fusion): which loops gained a DOALL proof."""
    from .reporting.transform_report import (
        TransformReport,
        format_transform_figure,
        transform_program,
        transform_suites,
    )

    if args.file:
        with open(args.file) as handle:
            source = handle.read()
        rows, log = transform_program(source, args.file)
        report = TransformReport(rows, log)
        sources = [(args.file, source)]
    else:
        from .bench.suites import ALL_SUITES, suite_programs

        suites = [args.suite] if args.suite else None
        report = transform_suites(suites=suites)
        sources = [
            (program.full_name, program.source)
            for suite in (suites if suites else list(ALL_SUITES))
            for program in suite_programs(suite)
        ]
    print(format_transform_figure(report, verbose=args.loops), file=out)
    if not args.crosscheck:
        return 0

    # Re-verification: profile the *transformed* programs and join their
    # static verdicts against observed conflicts. Any post-transform
    # STATIC_DOALL with a dynamic conflict is a soundness bug in a
    # transform pass (or in the dependence engine it leaned on).
    from .reporting.crosscheck import (
        CrosscheckReport,
        crosscheck_program,
        format_crosscheck,
    )

    rows = []
    for name, source in sources:
        lp = Loopapalooza(source, name=name, fuel=args.fuel, transform=True)
        rows.extend(crosscheck_program(lp, name))
    crosscheck = CrosscheckReport(rows)
    print(file=out)
    print("post-transform re-verification", file=out)
    print(format_crosscheck(crosscheck), file=out)
    return 1 if crosscheck.unsound else 0


def _cmd_fuzz(args, out):
    """Differential fuzzing: generate seeded MiniC programs, run the
    four-way oracle on each, shrink and quarantine any disagreement."""
    from .fuzz.corpus import load_case, replay_case
    from .fuzz.harness import fuzz_campaign
    from .runtime.telemetry import RunTelemetry, format_run_summary

    if args.replay:
        case = load_case(args.replay, root=args.corpus_dir)
        if case is None:
            print(f"error: no quarantined case {args.replay!r} "
                  f"(looked in the corpus and as a path)", file=sys.stderr)
            return 2
        print(f"replaying {case.case_id} "
              f"(seed {case.seed}, profile {case.profile}, "
              f"quarantined oracle: {case.oracle})", file=out)
        report = replay_case(case, fuel=args.fuel)
        print(report.describe(), file=out)
        if report.ok:
            print("case no longer reproduces on this pipeline — the "
                  "corpus entry can be kept as a regression guard",
                  file=out)
            return 0
        return 1

    telemetry = RunTelemetry.create(root=args.runs_dir)
    print(f"run id: {telemetry.run_id}", file=out)
    summary = fuzz_campaign(
        seed=args.seed,
        count=args.count,
        profile=args.profile,
        time_budget=args.time_budget,
        corpus_dir=args.corpus_dir,
        telemetry=telemetry,
        shrink=not args.no_shrink,
        log=lambda message: print(message, file=out),
    )
    telemetry.finish(status="complete" if summary.ok else "quarantined")
    print(summary.describe(), file=out)
    print(file=out)
    print(format_run_summary(telemetry.summary()), file=out)
    return 0 if summary.ok else 1


def _cmd_crosscheck(args, out):
    from .reporting.crosscheck import (
        CrosscheckReport,
        crosscheck_program,
        crosscheck_suites,
        format_crosscheck,
    )

    if args.file:
        lp = _load(args.file, args.fuel)
        report = CrosscheckReport(crosscheck_program(lp))
    else:
        from .bench import SuiteRunner

        runner = SuiteRunner()
        suites = [args.suite] if args.suite else None
        report = crosscheck_suites(runner, suites=suites)
    print(format_crosscheck(report, verbose=args.loops), file=out)
    return 1 if report.unsound else 0


def _cmd_advise(args, out):
    """Per-loop parallelizability advice with an evidence chain; with
    ``--crosscheck`` every advised-parallel loop is gated on a
    conflict-free dynamic profile."""
    from .reporting.advisor import (
        AdvisorReport,
        advise_program,
        advise_suites,
        format_advice,
    )

    if args.file:
        lp = _load(args.file, args.fuel)
        report = AdvisorReport(
            advise_program(lp, crosscheck=args.crosscheck))
    else:
        from .bench import SuiteRunner

        runner = SuiteRunner()
        suites = None if args.suite in (None, "all") else [args.suite]
        report = advise_suites(runner, suites=suites,
                               crosscheck=args.crosscheck)
    print(format_advice(report, verbose=args.loops), file=out)
    return 1 if report.unsound else 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Loopapalooza: compiler-driven loop-level parallelism "
                    "limit study (ISPASS 2021 reproduction)",
    )
    parser.add_argument("--fuel", type=int, default=200_000_000,
                        help="dynamic IR instruction budget")
    parser.add_argument(
        "--no-jit", action="store_true",
        help="run on the closure interpreter instead of the JIT backend "
             "(equivalent to REPRO_NO_JIT=1; profiles are identical either "
             "way, this only trades speed for simplicity)",
    )
    parser.add_argument(
        "--no-vec", action="store_true",
        help="disable the vectorized kernel tier and run the scalar JIT "
             "(equivalent to REPRO_NO_VEC=1; profiles are identical either "
             "way)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    for name, handler, needs_file in (
        ("run", _cmd_run, True),
        ("census", _cmd_census, True),
        ("evaluate", _cmd_evaluate, True),
        ("diagnose", _cmd_diagnose, True),
        ("calltls", _cmd_calltls, True),
        ("lint", _cmd_lint, False),
        ("crosscheck", _cmd_crosscheck, False),
        ("advise", _cmd_advise, False),
        ("fuzz", _cmd_fuzz, False),
        ("transform", _cmd_transform, False),
        ("figures", _cmd_figures, False),
        ("bench", _cmd_bench, False),
        ("parexec", _cmd_parexec, False),
        ("vec-report", _cmd_vec_report, False),
        ("cache", _cmd_cache, False),
        ("runs", _cmd_runs, False),
    ):
        sub = commands.add_parser(name)
        sub.set_defaults(handler=handler)
        if needs_file:
            sub.add_argument("file", help="MiniC source file")
        if name == "lint":
            sub.add_argument("file", nargs="?", default=None,
                             help="MiniC source file")
            sub.add_argument(
                "--bench", default=None, metavar="NAME",
                help="lint shipped benchmarks instead of a file: "
                     "'suite/name', a whole suite, or 'all'",
            )
            sub.add_argument(
                "--errors-only", action="store_true",
                help="show only error-severity diagnostics",
            )
        if name == "transform":
            sub.add_argument("file", nargs="?", default=None,
                             help="MiniC source file (default: all bench "
                                  "suites)")
            sub.add_argument(
                "--suite", default=None,
                help="restrict the bench comparison to one suite",
            )
            sub.add_argument(
                "--loops", action="store_true",
                help="print the per-loop before/after join, not just the "
                     "figure",
            )
            sub.add_argument(
                "--crosscheck", action="store_true",
                help="also profile the transformed programs and re-verify "
                     "every post-transform STATIC_DOALL against observed "
                     "conflicts; exits non-zero on any unsound verdict",
            )
        if name == "crosscheck":
            sub.add_argument("file", nargs="?", default=None,
                             help="MiniC source file (default: all bench "
                                  "suites)")
            sub.add_argument(
                "--suite", default=None,
                help="restrict the bench crosscheck to one suite",
            )
            sub.add_argument(
                "--loops", action="store_true",
                help="print the per-loop join, not just the tallies",
            )
        if name == "advise":
            sub.add_argument("file", nargs="?", default=None,
                             help="MiniC source file (default: all bench "
                                  "suites)")
            sub.add_argument(
                "--suite", nargs="?", const="all", default=None,
                help="advise the shipped benchmarks: a suite name, or no "
                     "value for all suites (this is also the default when "
                     "no FILE is given)",
            )
            sub.add_argument(
                "--crosscheck", action="store_true",
                help="profile each program and require every advised "
                     "@parallel/@reduce loop to have run conflict-free; "
                     "exits non-zero on any violation",
            )
            sub.add_argument(
                "--loops", action="store_true",
                help="also print unadvised loops with their blocking "
                     "evidence",
            )
        if name == "fuzz":
            sub.add_argument(
                "--seed", type=int, default=0,
                help="first generator seed (default: 0)",
            )
            sub.add_argument(
                "--count", type=int, default=100,
                help="number of consecutive seeds to fuzz (default: 100)",
            )
            sub.add_argument(
                "--time-budget", type=float, default=None, metavar="SECONDS",
                help="stop starting new cases after this much wall time",
            )
            sub.add_argument(
                "--profile", default="mixed",
                choices=("affine", "calls", "transforms", "mixed"),
                help="generator grammar bias (default: mixed)",
            )
            sub.add_argument(
                "--replay", default=None, metavar="CASE",
                help="re-run the oracle on one quarantined case (a case id "
                     "like mixed-s7-backends, or a path to its JSON file); "
                     "exits 1 while the case still reproduces",
            )
            sub.add_argument(
                "--corpus-dir", default=None,
                help="quarantine corpus directory (default: ./fuzz_corpus "
                     "or REPRO_FUZZ_CORPUS)",
            )
            sub.add_argument(
                "--no-shrink", action="store_true",
                help="quarantine the original program without "
                     "delta-minimizing it first",
            )
            sub.add_argument(
                "--runs-dir", default=None,
                help="run-ledger directory (default: ~/.cache/repro/runs "
                     "or REPRO_RUNS_DIR)",
            )
        if name == "evaluate":
            sub.add_argument(
                "--config", action="append", default=[],
                help="configuration like helix:reduc1-dep1-fn2 (repeatable; "
                     "default: the paper's 14)",
            )
        if name == "figures":
            sub.add_argument("--suite", help="restrict to one suite")
            sub.add_argument(
                "--jobs", type=int, default=None,
                help="fan the sweep out over N worker processes",
            )
            sub.add_argument(
                "--cache-dir", default=None,
                help="profile-store directory (default: shared user cache)",
            )
            sub.add_argument(
                "--resume", default=None, metavar="RUN_ID",
                help="resume an interrupted run from its ledger "
                     "(see `repro runs`)",
            )
            sub.add_argument(
                "--task-timeout", type=float, default=None, metavar="SECONDS",
                help="per-task result timeout; a timed-out task is retried "
                     "and eventually quarantined to the serial path",
            )
            sub.add_argument(
                "--retries", type=int, default=2,
                help="retry attempts (with exponential backoff) before a "
                     "failing task is quarantined (default: 2)",
            )
            sub.add_argument(
                "--runs-dir", default=None,
                help="run-ledger directory (default: ~/.cache/repro/runs "
                     "or REPRO_RUNS_DIR)",
            )
        if name == "runs":
            sub.add_argument(
                "action", choices=("list", "show", "clean"), nargs="?",
                default="list", help="list runs, show one manifest, or "
                "delete all recorded runs",
            )
            sub.add_argument("run_id", nargs="?", default=None,
                             help="run id (for `show`)")
            sub.add_argument(
                "--runs-dir", default=None,
                help="run-ledger directory (default: ~/.cache/repro/runs "
                     "or REPRO_RUNS_DIR)",
            )
        if name == "bench":
            sub.add_argument(
                "--tiers", default=None, metavar="TIERS",
                help="time execution tiers instead of listing benchmarks: "
                     "a comma-separated subset of closure,jit,vec,par",
            )
            sub.add_argument(
                "--par-workers", type=int, default=None, metavar="N",
                help="worker-pool width for the par tier (default: auto)",
            )
            sub.add_argument(
                "--loops", action="store_true",
                help="use the loop-throughput kernel suite (isolated "
                     "proved-DOALL loops from the Fig. 3 numeric "
                     "benchmarks) instead of whole programs",
            )
            sub.add_argument(
                "--suite", default=None,
                help="restrict whole-program timing to one suite",
            )
            sub.add_argument(
                "--repeats", type=int, default=3,
                help="repetitions per (benchmark, tier); best time wins "
                     "(default: 3)",
            )
            sub.add_argument(
                "--json", default=None, metavar="PATH",
                help="append the result as a tier_bench row to this JSON "
                     "file (BENCH_infrastructure.json schema)",
            )
        if name == "parexec":
            sub.add_argument(
                "--workers", default="1,2,4", metavar="LIST",
                help="comma-separated worker counts to measure/check "
                     "(default: 1,2,4)",
            )
            sub.add_argument(
                "--suite", dest="suite_check", action="store_true",
                help="determinism gate: run every bundled program under "
                     "the par backend at every worker count and require "
                     "byte-identical profiles and outputs vs the vec "
                     "baseline (exit 1 on any mismatch)",
            )
            sub.add_argument(
                "--suite-name", dest="suite", default=None, metavar="NAME",
                help="restrict --suite / --programs to one benchmark suite",
            )
            sub.add_argument(
                "--programs", action="store_true",
                help="whole-program predicted-vs-achieved report instead "
                     "of the loop-kernel report",
            )
            sub.add_argument(
                "--repeats", type=int, default=3,
                help="repetitions per timing; best time wins (default: 3)",
            )
            sub.add_argument(
                "--min-trip", type=int, default=1,
                help="REPRO_PAR_MIN_TRIP override while the command runs "
                     "(default: 1, so every proved loop reaches the pool)",
            )
            sub.add_argument(
                "--json", default=None, metavar="PATH",
                help="also write the raw report dict as JSON",
            )
        if name == "vec-report":
            sub.add_argument("file", nargs="?", default=None,
                             help="MiniC source file")
            sub.add_argument(
                "--bench", default=None, metavar="NAME",
                help="report on shipped benchmarks instead of a file: "
                     "'suite/name', a whole suite, or 'all'",
            )
        if name == "cache":
            sub.add_argument(
                "action", choices=("info", "clear", "stats"), nargs="?",
                default="info", help="inspect or wipe the profile store, or "
                "summarize both caches with the last run's hit/miss tallies",
            )
            sub.add_argument(
                "--cache-dir", default=None,
                help="profile-store directory (default: shared user cache)",
            )
            sub.add_argument(
                "--runs-dir", default=None,
                help="run-ledger directory consulted by `stats` (default: "
                     "~/.cache/repro/runs or REPRO_RUNS_DIR)",
            )
    return parser


def main(argv=None, out=None):
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.no_jit:
        # Environment, not a constructor argument: worker processes spawned
        # by `figures --jobs` must inherit the backend choice too.
        os.environ["REPRO_NO_JIT"] = "1"
    if args.no_vec:
        os.environ["REPRO_NO_VEC"] = "1"
    try:
        return args.handler(args, out)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
