"""Exception hierarchy shared across the repro packages.

Every error raised by the compiler, interpreter, runtime, or framework derives
from :class:`ReproError` so callers can catch the whole family with one
``except`` clause while tests can assert on the precise subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class IRError(ReproError):
    """Malformed IR construction or use (wrong types, detached blocks...)."""


class VerificationError(IRError):
    """The IR verifier found a structural or type violation.

    Carries the list of individual findings so tests and tools can inspect
    every problem at once instead of fixing them one re-run at a time.
    """

    def __init__(self, problems):
        self.problems = list(problems)
        super().__init__("IR verification failed:\n" + "\n".join(self.problems))


class ParseError(ReproError):
    """Syntax error in MiniC source or textual IR.

    ``line`` and ``column`` are 1-based positions of the offending token.
    """

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", col {column}" if column is not None else "")
        super().__init__(message + location)


class SemanticError(ReproError):
    """MiniC semantic analysis rejected the program (type errors, etc.)."""

    def __init__(self, message, line=None):
        self.line = line
        suffix = f" at line {line}" if line is not None else ""
        super().__init__(message + suffix)


class InterpError(ReproError):
    """Run-time fault while interpreting IR (bad memory access, traps...)."""


class TrapError(InterpError):
    """The interpreted program performed an operation with undefined behaviour

    (out-of-bounds access, division by zero, use of a dangling frame address).
    """


class FuelExhausted(InterpError):
    """The interpreter hit its dynamic instruction budget.

    Used to bound runaway benchmark programs; carries the budget that was
    exceeded.
    """

    def __init__(self, budget):
        self.budget = budget
        super().__init__(f"dynamic instruction budget of {budget} exhausted")


class StaleAnalysisError(ReproError):
    """A CFG/LoopInfo snapshot was queried after the IR it describes changed.

    Analyses are immutable snapshots; CFG-mutating passes must rebuild them.
    The pass manager invalidates every live snapshot between pipeline stages,
    so reusing one across a stage boundary raises instead of silently
    answering from blocks that may no longer exist.
    """


class ConfigError(ReproError):
    """Invalid Loopapalooza configuration (unknown flag, illegal combination)."""


class FrameworkError(ReproError):
    """Driver-level failure (unknown benchmark, missing profile data...)."""
