"""The parallelizability advisor: per-loop source annotations with an
evidence chain.

For every trackable loop the advisor distills the static analyses into one
actionable MiniC annotation:

* ``@parallel``      — STATIC_DOALL and every header phi is computable:
  iterations are fully independent, the loop may be dispatched as-is.
* ``@reduce(kinds)`` — STATIC_DOALL whose only loop-carried registers are
  recognized reductions: parallel with a combining step per kind.
* ``@lcd(dist=k)``   — a proven loop-carried dependence at exact distance
  ``k``: pipeline/skew at that distance (the TLS tier's stride).
* *(none)*           — UNKNOWN memory verdict or a non-computable scalar
  recurrence; the blocking reasons become the evidence chain instead.

Every advice carries its full evidence chain — SCEV trip form, subscript
test summary, direction vectors, call summary involvement, and (when
joined) dynamic profile agreement — so an advised annotation is never an
oracle pronouncement: each line is checkable against ``repro crosscheck``.
The join is the advisor's soundness gate: an advised-parallel loop that
showed a dynamic conflict is a bug by construction, and both the report
object and the CLI surface it as non-zero ``unsound``.
"""

from __future__ import annotations

from ..analysis.depend import VERDICT_DOALL, VERDICT_LCD

#: Annotation kinds, in report order.
ANNOTATION_ORDER = ("@parallel", "@reduce", "@lcd", None)


class LoopAdvice:
    """One loop's advised annotation plus its evidence chain."""

    __slots__ = ("program", "loop_id", "depth", "annotation", "evidence",
                 "conflicts", "invocations", "joined")

    def __init__(self, program, loop_id, depth, annotation, evidence,
                 conflicts=0, invocations=0, joined=False):
        self.program = program
        self.loop_id = loop_id
        self.depth = depth
        self.annotation = annotation  # "@parallel" | "@reduce(...)" | ...
        self.evidence = tuple(evidence)
        self.conflicts = conflicts
        self.invocations = invocations
        self.joined = joined

    @property
    def kind(self):
        """The annotation family (parameter-free), or ``None``."""
        if self.annotation is None:
            return None
        return self.annotation.split("(", 1)[0]

    @property
    def advises_parallel(self):
        return self.kind in ("@parallel", "@reduce")

    @property
    def unsound(self):
        """Advised parallel but the profile observed a conflict."""
        return self.advises_parallel and self.joined and self.conflicts > 0

    def to_dict(self):
        return {
            "program": self.program,
            "loop_id": self.loop_id,
            "depth": self.depth,
            "annotation": self.annotation,
            "evidence": list(self.evidence),
            "conflicts": self.conflicts,
            "invocations": self.invocations,
            "joined": self.joined,
        }

    def __repr__(self):
        return (f"<LoopAdvice {self.program}:{self.loop_id} "
                f"{self.annotation or '(none)'}>")


def advise_program(lp, program_name=None, crosscheck=False):
    """:class:`LoopAdvice` list for one program (sorted by loop id).

    ``crosscheck=True`` profiles the program and joins each advice against
    the observed conflict counts — the soundness backing for every
    ``@parallel``/``@reduce`` line.
    """
    name = program_name if program_name is not None else lp.name
    dependence = lp.static_info.dependence()
    conflicts = {}
    invocations = {}
    if crosscheck:
        profile = lp.profile()
        for invocation in profile.all_invocations():
            loop_id = invocation.loop_id
            conflicts[loop_id] = conflicts.get(loop_id, 0) \
                + invocation.conflict_count
            invocations[loop_id] = invocations.get(loop_id, 0) + 1
    advices = []
    for loop_id in sorted(dependence):
        static = lp.static_info.loops.get(loop_id)
        if static is None or not static.trackable:
            continue
        advices.append(_advise_loop(
            name, static, dependence[loop_id],
            conflicts.get(loop_id, 0), invocations.get(loop_id, 0),
            joined=crosscheck))
    return advices


def _advise_loop(program, static, dep, conflicts, invocations, joined):
    """Distill one loop's analyses into an annotation + evidence chain."""
    noncomputable = sorted(static.noncomputable_phis)
    reduction_kinds = sorted(set(static.reduction_kinds.values()))
    annotation = None
    if dep.verdict == VERDICT_DOALL and not noncomputable:
        if reduction_kinds:
            annotation = f"@reduce({', '.join(reduction_kinds)})"
        else:
            annotation = "@parallel"
    elif dep.verdict == VERDICT_LCD and dep.distance is not None \
            and not noncomputable:
        annotation = f"@lcd(dist={dep.distance})"

    evidence = []
    trip = static.trip_count_hint
    evidence.append(
        f"scev: trip {'unknown' if trip is None else trip}, "
        f"depth {static.depth}")
    evidence.append(
        f"subscripts: {dep.tested_pairs} pair(s) over "
        f"{dep.access_count} access(es) -> {dep.describe()}")
    for vector in dep.vectors:
        evidence.append(f"vector: {vector}")
    if dep.distances:
        evidence.append(
            "distances: "
            + ", ".join(str(d) for d in dep.distances))
    if static.call_classes:
        evidence.append(
            "calls: " + ", ".join(sorted(static.call_classes))
            + " (summarized bottom-up)")
    for phi_key, kind in sorted(static.reduction_kinds.items()):
        evidence.append(f"reduction: {phi_key} ({kind})")
    for phi_key in noncomputable:
        evidence.append(f"scalar recurrence blocks parallelism: {phi_key}")
    for reason in dep.reasons:
        evidence.append(f"blocked: {reason}")
    if joined:
        if invocations == 0:
            evidence.append("profile: loop never ran under this input")
        else:
            if annotation is not None and annotation.startswith("@lcd"):
                agreement = ("agrees (conflicts confirm the carried "
                             "dependence)" if conflicts
                             else "no conflict under this input")
            elif annotation is not None:
                agreement = "CONFLICTS" if conflicts else "agrees"
            else:
                agreement = "observed"
            evidence.append(
                f"profile: {invocations} invocation(s), "
                f"{conflicts} conflict(s) — {agreement}")
    return LoopAdvice(program, static.loop_id, static.depth, annotation,
                      evidence, conflicts, invocations, joined)


class AdvisorReport:
    """All advices of one run, with tallies and the soundness gate."""

    def __init__(self, advices):
        self.advices = sorted(
            advices, key=lambda a: (a.program, a.loop_id))

    def counts(self):
        tally = {"@parallel": 0, "@reduce": 0, "@lcd": 0, "unadvised": 0}
        for advice in self.advices:
            tally[advice.kind or "unadvised"] += 1
        return tally

    @property
    def unsound(self):
        """Advised-parallel loops the profile contradicted — must be
        empty."""
        return [a for a in self.advices if a.unsound]

    def __repr__(self):
        return f"<AdvisorReport {len(self.advices)} loops>"


def advise_suites(runner, suites=None, crosscheck=False):
    """Advise every program of the given suites (default: all)."""
    from ..bench.suites import ALL_SUITES, suite_programs

    wanted = list(suites) if suites is not None else list(ALL_SUITES)
    advices = []
    for suite in wanted:
        for program in suite_programs(suite):
            lp = runner.instance(program)
            advices.extend(advise_program(
                lp, program.full_name, crosscheck=crosscheck))
    return AdvisorReport(advices)


def format_advice(report, verbose=False):
    """Deterministic text rendering of an advisor report.

    The default view prints every *advised* loop with its annotation and
    evidence chain; ``verbose`` adds the unadvised loops (with the
    blocking evidence) as well.
    """
    lines = []
    counts = report.counts()
    total = len(report.advices)
    advised = total - counts["unadvised"]
    lines.append(
        f"parallelizability advisor — {total} loop(s), {advised} advised "
        f"(@parallel {counts['@parallel']}, @reduce {counts['@reduce']}, "
        f"@lcd {counts['@lcd']})")
    current = None
    for advice in report.advices:
        if advice.annotation is None and not verbose:
            continue
        if advice.program != current:
            current = advice.program
            lines.append(f"{current}:")
        marker = advice.annotation or "(no annotation)"
        lines.append(f"  {advice.loop_id:34s} {marker}")
        for item in advice.evidence:
            lines.append(f"    | {item}")
    if report.unsound:
        lines.append("  SOUNDNESS VIOLATIONS:")
        for advice in report.unsound:
            lines.append(
                f"    {advice.program} {advice.loop_id}: advised "
                f"{advice.annotation} but {advice.conflicts} dynamic "
                f"conflict(s)")
    elif any(a.joined for a in report.advices):
        lines.append(
            "  soundness: every advised-parallel loop ran conflict-free")
    return "\n".join(lines)
