"""repro.reporting — experiment harness regenerating the paper's figures."""

from .crosscheck import (
    CrosscheckReport,
    CrosscheckRow,
    crosscheck_program,
    crosscheck_suites,
    format_crosscheck,
)
from .dynamic_census import (
    FREQUENT_RATE,
    PREDICTABLE_ACCURACY,
    LoopDynamicCensus,
    dynamic_census_of,
    format_dynamic_census,
    suite_dynamic_census,
)
from .experiments import (
    COVERAGE_CONFIGS,
    figure2_nonnumeric,
    figure3_numeric,
    figure4_per_benchmark,
    figure5_coverage,
    format_census,
    format_coverage,
    format_figure4,
    format_speedup_figure,
    table1_census,
)
from .stats import arith_mean, geomean, speedup_percent
from .transform_report import (
    TransformReport,
    TransformRow,
    format_transform_figure,
    transform_program,
    transform_suites,
)

__all__ = [
    "COVERAGE_CONFIGS",
    "CrosscheckReport",
    "CrosscheckRow",
    "FREQUENT_RATE",
    "LoopDynamicCensus",
    "PREDICTABLE_ACCURACY",
    "crosscheck_program",
    "crosscheck_suites",
    "dynamic_census_of",
    "format_crosscheck",
    "format_dynamic_census",
    "suite_dynamic_census",
    "arith_mean",
    "figure2_nonnumeric",
    "figure3_numeric",
    "figure4_per_benchmark",
    "figure5_coverage",
    "format_census",
    "format_coverage",
    "format_figure4",
    "format_speedup_figure",
    "geomean",
    "speedup_percent",
    "table1_census",
    "TransformReport",
    "TransformRow",
    "format_transform_figure",
    "transform_program",
    "transform_suites",
]
