"""Predicted-vs-achieved speedup: the paper's cost model joined with
measured wall-clock on the parallel execution tier.

The Loopapalooza cost model predicts per-loop and whole-program speedup
under idealized execution models (unbounded workers, modeled overheads).
The parallel tier (:mod:`repro.interp.parexec`) actually runs proved-DOALL
loops on worker processes. This module joins the two:

* :func:`kernel_speedup_report` — per-loop: each loop-throughput kernel
  isolates one proved-DOALL loop, so its wall-clock ``jit / par`` ratio at
  ``N`` workers is directly comparable to the model's per-loop speedup
  (capped at ``N`` — the model assumes unbounded workers).
* :func:`program_speedup_report` — whole-program: model speedup under a
  configuration vs end-to-end wall-clock, plus the executor's
  dispatch/commit/rollback counters showing how much of the run actually
  reached the pool.
* :func:`parexec_soundness` — the determinism gate behind
  ``repro parexec --suite``: every bundled program must produce
  byte-identical profiles and outputs under the par backend at *every*
  worker count, instrumented and plain.

All wall-clock measurements are best-of-``repeats`` on pre-compiled
modules (warm code cache), matching :mod:`repro.bench.tiers`.
"""

from __future__ import annotations

import contextlib
import json
import os
import time

from ..core.config import LPConfig
from ..core.evaluator import evaluate_config
from ..core.framework import Loopapalooza
from ..frontend.codegen import compile_source
from ..interp.interpreter import Interpreter
from .stats import geomean

DEFAULT_WORKERS = (1, 2, 4)
DEFAULT_REPEATS = 3
DEFAULT_FUEL = 2_000_000_000


@contextlib.contextmanager
def _env(key, value):
    """Temporarily pin one environment variable (None = leave as-is)."""
    if value is None:
        yield
        return
    saved = os.environ.get(key)
    os.environ[key] = str(value)
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = saved


def _min_trip(value):
    return _env("REPRO_PAR_MIN_TRIP", value)


def _timed_run(module, backend, repeats, fuel, par_workers=None):
    """Best-of-``repeats`` plain run; returns ``(seconds, machine)`` with
    the machine of the final repeat (for its tier counters)."""
    best = float("inf")
    machine = None
    for _ in range(repeats):
        machine = Interpreter(module, fuel=fuel, backend=backend,
                              par_workers=par_workers)
        started = time.perf_counter()
        machine.run("main")
        best = min(best, time.perf_counter() - started)
    return best, machine


def _default_config():
    """The model configuration matching the par tier's capability: DOALL
    with function-call speculation (the tier executes pure intrinsic calls
    inside worker chunks, the analog of ``fn2`` in the paper's ladder)."""
    return LPConfig("doall", fn=2)


def predicted_speedups(source, name="program", config=None):
    """The paper model's :class:`EvaluationResult` for ``source``."""
    lp = Loopapalooza(source, name=name)
    config = config or _default_config()
    return evaluate_config(lp.profile(), lp.static_info, config)


def _dominant_loop(result):
    """The best-parallelizing loop, by modeled speedup then serial cost —
    in a loop-kernel program, the isolated kernel loop itself (the outer
    reps loop predicts ~reps, the kernel loop ~trip count)."""
    best = None
    for summary in result.loops.values():
        if best is None or (summary.speedup, summary.serial_cost) > (
                best.speedup, best.serial_cost):
            best = summary
    return best


def kernel_speedup_report(workers_list=DEFAULT_WORKERS,
                          repeats=DEFAULT_REPEATS, fuel=DEFAULT_FUEL,
                          config=None, min_trip=1):
    """Per-loop predicted-vs-achieved join over the loop-kernel suite."""
    from ..bench.loop_kernels import loop_kernels

    rows = []
    with _min_trip(min_trip):
        for kernel in loop_kernels():
            result = predicted_speedups(kernel.source, name=kernel.name,
                                        config=config)
            loop = _dominant_loop(result)
            module = compile_source(kernel.source)
            jit_seconds, _ = _timed_run(module, "jit", repeats, fuel)
            # Typed memory for the vec baseline: the par tier always runs
            # typed lanes, so vs-vec must not conflate the typed-memory
            # win with the pool's own effect.
            with _env("REPRO_TYPED_MEMORY", "1"):
                vec_seconds, _ = _timed_run(module, "vec", repeats, fuel)
            achieved = {}
            achieved_vs_vec = {}
            par_seconds = {}
            pool_commits = {}
            for workers in workers_list:
                seconds, machine = _timed_run(module, "par", repeats, fuel,
                                              par_workers=workers)
                par_seconds[workers] = seconds
                achieved[workers] = (
                    jit_seconds / seconds if seconds > 0 else float("inf")
                )
                achieved_vs_vec[workers] = (
                    vec_seconds / seconds if seconds > 0 else float("inf")
                )
                pool_commits[workers] = sum(machine.par_runs.values())
            rows.append({
                "name": kernel.name,
                "derived_from": kernel.derived_from,
                "loop_id": loop.loop_id if loop is not None else None,
                "predicted_model": round(loop.speedup, 3) if loop else None,
                "predicted_capped": {
                    workers: round(min(loop.speedup, workers), 3)
                    if loop else None
                    for workers in workers_list
                },
                "jit_s": jit_seconds,
                "vec_s": vec_seconds,
                "par_s": dict(par_seconds),
                "achieved": {
                    workers: round(value, 3)
                    for workers, value in achieved.items()
                },
                "achieved_vs_vec": {
                    workers: round(value, 3)
                    for workers, value in achieved_vs_vec.items()
                },
                "pool_commits": pool_commits,
            })
    return {
        "mode": "kernels",
        "workers": list(workers_list),
        "repeats": repeats,
        "config": (config or _default_config()).name,
        "rows": rows,
        "achieved_geomeans": {
            workers: round(geomean(
                row["achieved"][workers] for row in rows
            ), 3)
            for workers in workers_list
        },
        "achieved_vs_vec_geomeans": {
            workers: round(geomean(
                row["achieved_vs_vec"][workers] for row in rows
            ), 3)
            for workers in workers_list
        },
    }


def program_speedup_report(suite=None, workers_list=DEFAULT_WORKERS,
                           repeats=DEFAULT_REPEATS, fuel=DEFAULT_FUEL,
                           config=None, min_trip=None):
    """Whole-program predicted-vs-achieved join over bundled programs."""
    from ..bench.suites import all_programs, suite_programs

    programs = suite_programs(suite) if suite else all_programs()
    rows = []
    totals = {}
    with _min_trip(min_trip):
        for program in programs:
            result = predicted_speedups(program.source, name=program.name,
                                        config=config)
            module = compile_source(program.source)
            jit_seconds, _ = _timed_run(module, "jit", repeats, fuel)
            achieved = {}
            stats = {}
            for workers in workers_list:
                seconds, machine = _timed_run(module, "par", repeats, fuel,
                                              par_workers=workers)
                achieved[workers] = round(
                    jit_seconds / seconds if seconds > 0 else float("inf"), 3
                )
                stats[workers] = dict(machine.par.stats)
                for key, value in machine.par.stats.items():
                    bucket = totals.setdefault(workers, {})
                    bucket[key] = bucket.get(key, 0) + value
            rows.append({
                "name": program.full_name,
                "predicted_model": round(result.speedup, 3),
                "coverage": round(result.coverage, 4),
                "jit_s": jit_seconds,
                "achieved": achieved,
                "par_stats": stats,
            })
    return {
        "mode": "programs",
        "suite": suite,
        "workers": list(workers_list),
        "repeats": repeats,
        "config": (config or _default_config()).name,
        "rows": rows,
        "achieved_geomeans": {
            workers: round(geomean(
                row["achieved"][workers] for row in rows
            ), 3)
            for workers in workers_list
        },
        "par_stats_total": totals,
    }


# -- soundness gate ------------------------------------------------------------


def _canonical_par_run(module, instrumentation, name, workers):
    """(profile_json, profile_output, plain_result, plain_cost,
    plain_output, machines) for one par execution at ``workers``."""
    from ..runtime.recorder import ProfilingRuntime
    from ..runtime.serialize import profile_to_dict

    runtime = ProfilingRuntime(name)
    instrumented = Interpreter(module, runtime, instrumentation,
                               backend="par", par_workers=workers)
    runtime.attach(instrumented)
    result = instrumented.run("main")
    profile = json.dumps(
        profile_to_dict(runtime.finish(instrumented.cost, result)),
        sort_keys=True,
    )
    plain = Interpreter(module, None, None, backend="par",
                        par_workers=workers)
    plain_result = plain.run("main")
    return {
        "profile": profile,
        "profile_output": list(instrumented.output),
        "plain": (plain_result, plain.cost, tuple(plain.output)),
        "machines": (instrumented, plain),
    }


def parexec_soundness(workers_list=(1, 2), suite=None, min_trip=1,
                      baseline_backend="vec"):
    """Run every bundled program under the par backend at every worker
    count and compare byte-for-byte against the baseline backend.

    Returns a report dict; ``report["mismatches"]`` empty means the
    determinism guarantee held everywhere. ``doall_loops`` counts loops
    the static engine proved STATIC_DOALL across the suite (the
    population whose kernels the pool executes)."""
    from ..analysis.depend import VERDICT_DOALL
    from ..bench.suites import all_programs, suite_programs
    from ..runtime.serialize import profile_to_dict

    programs = suite_programs(suite) if suite else all_programs()
    mismatches = []
    doall_loops = 0
    pool_commits = 0
    tls_commits = 0
    tls_rollbacks = 0
    checked = 0
    with _min_trip(min_trip):
        for program in programs:
            lp = Loopapalooza(program.source, name=program.name,
                              backend=baseline_backend)
            for verdict in lp.static_info.dependence().values():
                if verdict.verdict == VERDICT_DOALL:
                    doall_loops += 1
            base_profile = json.dumps(
                profile_to_dict(lp.profile()), sort_keys=True,
            )
            base_output = list(lp.output)
            base_plain = lp.run_uninstrumented()
            base_plain = (base_plain[0], base_plain[1],
                          tuple(base_plain[2]))
            for workers in workers_list:
                run = _canonical_par_run(
                    lp.module, lp.instrumentation, program.name, workers
                )
                checked += 1
                if run["profile"] != base_profile \
                        or run["profile_output"] != base_output \
                        or run["plain"] != base_plain:
                    mismatches.append({
                        "program": program.full_name,
                        "workers": workers,
                        "profile_ok": run["profile"] == base_profile,
                        "output_ok": run["profile_output"] == base_output,
                        "plain_ok": run["plain"] == base_plain,
                    })
                for machine in run["machines"]:
                    pool_commits += sum(machine.par_runs.values())
                    tls_commits += machine.par.stats["tls_commits"]
                    tls_rollbacks += machine.par.stats["tls_rollbacks"]
    return {
        "programs": len(programs),
        "workers": list(workers_list),
        "runs_checked": checked,
        "doall_loops": doall_loops,
        "pool_commits": pool_commits,
        "tls_commits": tls_commits,
        "tls_rollbacks": tls_rollbacks,
        "mismatches": mismatches,
    }


# -- formatting ----------------------------------------------------------------


def format_kernel_report(report):
    """``model`` is the uncapped paper prediction; per worker count ``N``,
    ``pred@N`` caps it at N, ``jit@N`` is wall-clock vs the scalar JIT and
    ``vec@N`` vs the inline vector tier (the pool's own contribution)."""
    workers = report["workers"]
    lines = []
    header = f"{'kernel':22s}{'model':>9s}"
    for n in workers:
        header += f"{f'pred@{n}':>9s}{f'jit@{n}':>9s}{f'vec@{n}':>9s}"
    lines.append(header)
    for row in report["rows"]:
        line = f"{row['name']:22s}"
        model = row["predicted_model"]
        line += f"{model:>9.1f}" if model is not None else f"{'-':>9s}"
        for n in workers:
            predicted = (row["predicted_capped"] or {}).get(n)
            line += (f"{predicted:>8.2f}x" if predicted is not None
                     else f"{'-':>9s}")
            for key in ("achieved", "achieved_vs_vec"):
                value = row[key].get(n)
                line += (f"{value:>8.2f}x" if value is not None
                         else f"{'-':>9s}")
        lines.append(line)
    means = report["achieved_geomeans"]
    vec_means = report["achieved_vs_vec_geomeans"]
    line = f"{'geomean':22s}" + " " * 9
    for n in workers:
        line += " " * 9 + f"{means[n]:>8.2f}x{vec_means[n]:>8.2f}x"
    lines.append(line)
    return "\n".join(lines)


def format_program_report(report):
    workers = report["workers"]
    lines = []
    header = f"{'benchmark':24s}{'model':>9s}{'cover':>8s}"
    for n in workers:
        header += f"{f'ach@{n}':>9s}"
    lines.append(header)
    for row in report["rows"]:
        line = (f"{row['name']:24s}{row['predicted_model']:>9.2f}"
                f"{row['coverage'] * 100:>7.1f}%")
        for n in workers:
            line += f"{row['achieved'][n]:>8.2f}x"
        lines.append(line)
    means = report["achieved_geomeans"]
    line = f"{'geomean':24s}" + " " * 17
    for n in workers:
        line += f"{means[n]:>8.2f}x"
    lines.append(line)
    return "\n".join(lines)


def format_soundness_report(report):
    lines = [
        f"{report['programs']} programs x workers {report['workers']}: "
        f"{report['runs_checked']} par runs checked against the "
        f"baseline",
        f"  STATIC_DOALL loops in suite: {report['doall_loops']}",
        f"  pool/local kernel commits:   {report['pool_commits']}",
        f"  TLS chunk commits:           {report['tls_commits']} "
        f"({report['tls_rollbacks']} rollbacks)",
    ]
    if report["mismatches"]:
        lines.append(f"  MISMATCHES: {len(report['mismatches'])}")
        for entry in report["mismatches"]:
            lines.append(
                f"    {entry['program']} @ {entry['workers']} workers "
                f"(profile={entry['profile_ok']} "
                f"output={entry['output_ok']} plain={entry['plain_ok']})"
            )
    else:
        lines.append("  byte-identical everywhere")
    return "\n".join(lines)
