"""Static-vs-dynamic cross-validation of loop dependence verdicts.

Joins the static dependence engine's verdict for every loop
(:mod:`repro.analysis.depend`) against what the dynamic profile actually
observed, and buckets each loop:

* ``static-proved``     — ``STATIC_DOALL`` and no dynamic conflicts: the
  static tier alone certifies the loop, no profiling needed.
* ``dynamic-only``      — statically ``UNKNOWN`` but dynamically clean:
  parallelizable only on profile evidence (the paper's speculative tier).
* ``static-missed``     — ``STATIC_LCD`` predicted but no conflict ever
  manifested (the dependence is input-dependent, write-after-write only,
  or on a cold path).
* ``confirmed-lcd``     — ``STATIC_LCD`` and dynamic conflicts: both tiers
  agree the loop carries a memory dependence.
* ``dynamic-lcd``       — statically ``UNKNOWN`` with observed conflicts.
* ``unsound-static-doall`` — ``STATIC_DOALL`` *with* dynamic conflicts.
  This is a bug in the static engine by construction; ``repro crosscheck``
  exits non-zero if any loop lands here.
* ``unobserved``        — the loop never ran under the profiling input.

The joint view is the agreement table behind ``repro crosscheck`` and the
"Static crosscheck" section of ``examples/full_paper_run.py``.
"""

from __future__ import annotations

from ..analysis.depend import VERDICT_DOALL, VERDICT_LCD

CATEGORY_ORDER = (
    "static-proved",
    "dynamic-only",
    "static-missed",
    "confirmed-lcd",
    "dynamic-lcd",
    "unsound-static-doall",
    "unobserved",
)


class CrosscheckRow:
    """One loop's joined static verdict and dynamic observation."""

    __slots__ = ("program", "loop_id", "verdict", "distance", "conflicts",
                 "invocations", "iterations", "category")

    def __init__(self, program, loop_id, dependence, conflicts, invocations,
                 iterations):
        self.program = program
        self.loop_id = loop_id
        self.verdict = dependence.describe()
        self.distance = dependence.distance
        self.conflicts = conflicts
        self.invocations = invocations
        self.iterations = iterations
        self.category = _categorize(
            dependence.verdict, conflicts, invocations)

    def to_dict(self):
        return {
            "program": self.program,
            "loop_id": self.loop_id,
            "verdict": self.verdict,
            "conflicts": self.conflicts,
            "invocations": self.invocations,
            "iterations": self.iterations,
            "category": self.category,
        }

    def __repr__(self):
        return (f"<CrosscheckRow {self.program}:{self.loop_id} "
                f"{self.verdict} -> {self.category}>")


def _categorize(verdict, conflicts, invocations):
    if invocations == 0:
        return "unobserved"
    if verdict == VERDICT_DOALL:
        return "unsound-static-doall" if conflicts else "static-proved"
    if verdict == VERDICT_LCD:
        return "confirmed-lcd" if conflicts else "static-missed"
    return "dynamic-lcd" if conflicts else "dynamic-only"


class CrosscheckReport:
    """All rows of a crosscheck run, with agreement tallies."""

    def __init__(self, rows):
        self.rows = sorted(rows, key=lambda r: (r.program, r.loop_id))

    def counts(self):
        tally = {category: 0 for category in CATEGORY_ORDER}
        for row in self.rows:
            tally[row.category] += 1
        return tally

    @property
    def unsound(self):
        """Loops proving the static engine wrong — must be empty."""
        return [row for row in self.rows
                if row.category == "unsound-static-doall"]

    def __repr__(self):
        return f"<CrosscheckReport {len(self.rows)} loops>"


def crosscheck_program(lp, program_name=None):
    """Crosscheck rows for one profiled program."""
    name = program_name if program_name is not None else lp.name
    profile = lp.profile()
    conflicts = {}
    invocations = {}
    iterations = {}
    for invocation in profile.all_invocations():
        loop_id = invocation.loop_id
        conflicts[loop_id] = conflicts.get(loop_id, 0) \
            + invocation.conflict_count
        invocations[loop_id] = invocations.get(loop_id, 0) + 1
        iterations[loop_id] = iterations.get(loop_id, 0) \
            + invocation.num_iterations
    rows = []
    for loop_id, dependence in lp.static_info.dependence().items():
        rows.append(CrosscheckRow(
            name, loop_id, dependence,
            conflicts.get(loop_id, 0),
            invocations.get(loop_id, 0),
            iterations.get(loop_id, 0),
        ))
    return rows


def crosscheck_suites(runner, suites=None):
    """Crosscheck every program of the given suites (default: all)."""
    from ..bench.suites import ALL_SUITES, suite_programs

    wanted = list(suites) if suites is not None else list(ALL_SUITES)
    rows = []
    for suite in wanted:
        for program in suite_programs(suite):
            lp = runner.instance(program)
            rows.extend(crosscheck_program(lp, program.full_name))
    return CrosscheckReport(rows)


def format_crosscheck(report, verbose=False):
    """Deterministic text rendering of a crosscheck report."""
    lines = []
    counts = report.counts()
    total = len(report.rows)
    lines.append(f"static x dynamic dependence crosscheck — {total} loops")
    for category in CATEGORY_ORDER:
        count = counts[category]
        if count == 0 and category != "unsound-static-doall":
            continue
        lines.append(f"  {category:22s} {count:4d}")
    if report.unsound:
        lines.append("  SOUNDNESS VIOLATIONS:")
        for row in report.unsound:
            lines.append(
                f"    {row.program} {row.loop_id}: {row.verdict} but "
                f"{row.conflicts} dynamic conflict(s)")
    else:
        lines.append("  soundness: no statically-proved DOALL loop showed a "
                     "dynamic conflict")
    if verbose:
        lines.append(f"  {'program':28s}{'loop':30s}{'static':22s}"
                     f"{'conflicts':>10s}  category")
        for row in report.rows:
            lines.append(
                f"  {row.program:28s}{row.loop_id:30s}{row.verdict:22s}"
                f"{row.conflicts:>10d}  {row.category}")
    return "\n".join(lines)
