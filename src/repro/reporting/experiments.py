"""Experiment harness: regenerate every table and figure of the paper.

Each ``figure*`` function returns the underlying data structure; each
``format_*`` helper renders the paper-style text view. EXPERIMENTS.md is
produced from these (see ``examples/full_paper_run.py``).
"""

from __future__ import annotations

from ..bench.suites import (
    ALL_SUITES,
    NON_NUMERIC_SUITES,
    NUMERIC_SUITES,
    default_runner,
    suite_programs,
)
from ..core.config import BEST_HELIX, BEST_PDOALL, LPConfig, paper_configurations
from .stats import geomean

# The three configurations of the paper's coverage study (Fig. 5).
COVERAGE_CONFIGS = (
    LPConfig("pdoall", 0, 0, 2),
    LPConfig("helix", 0, 0, 2),
    LPConfig("helix", 0, 1, 2),
)


def figure2_nonnumeric(runner=None, jobs=None, sweep=None):
    """Fig. 2: GEOMEAN speedups for SpecINT2000/2006 per configuration.

    Returns ``{config_name: {suite: geomean_speedup}}`` in the paper's
    presentation order. ``jobs`` fans the underlying sweep out over a
    process pool (the aggregation below is unchanged, so the output is
    identical to a serial run). ``sweep`` carries the fault-tolerance
    options of :meth:`SuiteRunner.evaluate_many` — ``telemetry``,
    ``task_timeout``, ``retries`` — as a keyword dict.
    """
    return _figure_speedups(NON_NUMERIC_SUITES, runner, jobs, sweep)


def figure3_numeric(runner=None, jobs=None, sweep=None):
    """Fig. 3: GEOMEAN speedups for EEMBC and SpecFP2000/2006."""
    return _figure_speedups(NUMERIC_SUITES, runner, jobs, sweep)


def _figure_speedups(suites, runner, jobs=None, sweep=None):
    runner = runner or default_runner()
    _prefetch(
        runner,
        [p for suite in suites for p in suite_programs(suite)],
        paper_configurations(),
        jobs,
        sweep,
    )
    rows = {}
    for config in paper_configurations():
        row = {}
        for suite in suites:
            speedups = runner.suite_speedups(suite, config)
            row[suite] = geomean(speedups.values())
        rows[config.name] = row
    return rows


def figure4_per_benchmark(runner=None, jobs=None, sweep=None):
    """Fig. 4: per-benchmark speedups for the best PDOALL
    (``reduc1-dep2-fn2``) and best HELIX (``reduc1-dep1-fn2``) configs,
    across all four SPEC suites.

    Returns ``{suite/name: {"pdoall": s, "helix": s}}``.
    """
    runner = runner or default_runner()
    spec_suites = ("specint2000", "specint2006", "specfp2000", "specfp2006")
    _prefetch(
        runner,
        [p for suite in spec_suites for p in suite_programs(suite)],
        [BEST_PDOALL, BEST_HELIX],
        jobs,
        sweep,
    )
    result = {}
    for suite in spec_suites:
        for program in suite_programs(suite):
            result[program.full_name] = {
                "pdoall": runner.evaluate(program, BEST_PDOALL).speedup,
                "helix": runner.evaluate(program, BEST_HELIX).speedup,
            }
    return result


def figure5_coverage(runner=None, jobs=None, sweep=None):
    """Fig. 5: mean dynamic coverage (percent) for the three selected
    configurations, per suite.

    Returns ``{config_name: {suite: coverage_percent}}``. Coverage is a
    bounded fraction, so the suite aggregate uses the arithmetic mean
    (a geometric mean collapses whenever one benchmark has ~zero coverage).
    """
    runner = runner or default_runner()
    _prefetch(
        runner,
        [p for suite in ALL_SUITES for p in suite_programs(suite)],
        COVERAGE_CONFIGS,
        jobs,
        sweep,
    )
    rows = {}
    for config in COVERAGE_CONFIGS:
        row = {}
        for suite in ALL_SUITES:
            coverages = runner.suite_coverages(suite, config)
            values = [c * 100.0 for c in coverages.values()]
            row[suite] = sum(values) / len(values)
        rows[config.name] = row
    return rows


def table1_census(runner=None, jobs=None, sweep=None):
    """Table I as measured: dependence-category census per suite.

    With ``jobs``, workers profile the benchmarks in parallel and populate
    the shared disk store so the census pass below never re-profiles.
    """
    runner = runner or default_runner()
    _prefetch(
        runner,
        [p for suite in ALL_SUITES for p in suite_programs(suite)],
        [paper_configurations()[0]],
        jobs,
        sweep,
    )
    rows = {}
    for suite in ALL_SUITES:
        totals = {}
        for program in suite_programs(suite):
            census = runner.instance(program).census()
            for key, value in census.items():
                totals[key] = totals.get(key, 0) + value
        rows[suite] = totals
    return rows


def _prefetch(runner, programs, configs, jobs, sweep=None):
    """Warm the runner's result memo with a (possibly parallel) sweep.

    A no-op for plain serial runs: the figure loops below compute each
    cell on demand either way, so parallel and serial paths aggregate the
    exact same EvaluationResult values. With ``sweep`` telemetry attached
    the sweep always goes through ``evaluate_many`` — even serially — so
    every task lands in the run ledger and the run is resumable.
    """
    sweep = sweep or {}
    if (jobs is not None and jobs > 1) or sweep.get("telemetry") is not None:
        runner.evaluate_many(programs, configs, jobs=jobs, **sweep)


# -- formatting ------------------------------------------------------------------


def format_speedup_figure(rows, title):
    lines = [title, "=" * len(title)]
    suites = list(next(iter(rows.values())).keys())
    header = f"{'configuration':28s}" + "".join(f"{s:>14s}" for s in suites)
    lines.append(header)
    lines.append("-" * len(header))
    for config_name, row in rows.items():
        lines.append(
            f"{config_name:28s}"
            + "".join(f"{row[s]:>13.2f}x" for s in suites)
        )
    return "\n".join(lines)


def format_figure4(data):
    lines = [
        "Fig. 4 — per-benchmark speedups (best PDOALL vs best HELIX)",
        f"{'benchmark':32s}{'PDOALL':>12s}{'HELIX':>12s}{'winner':>10s}",
    ]
    for name, entry in data.items():
        winner = "PDOALL" if entry["pdoall"] > entry["helix"] else "HELIX"
        lines.append(
            f"{name:32s}{entry['pdoall']:>11.2f}x{entry['helix']:>11.2f}x"
            f"{winner:>10s}"
        )
    return "\n".join(lines)


def format_coverage(rows):
    lines = ["Fig. 5 — mean dynamic coverage (%)"]
    suites = list(next(iter(rows.values())).keys())
    header = f"{'configuration':28s}" + "".join(f"{s:>14s}" for s in suites)
    lines.append(header)
    for config_name, row in rows.items():
        lines.append(
            f"{config_name:28s}"
            + "".join(f"{row[s]:>13.1f}%" for s in suites)
        )
    return "\n".join(lines)


def format_census(rows):
    lines = ["Table I (measured) — dependence-category census per suite"]
    keys = [
        "loops", "computable_phis", "reduction_phis", "noncomputable_phis",
        "loops_with_calls", "loops_with_unsafe_calls",
    ]
    header = f"{'suite':14s}" + "".join(f"{k:>22s}" for k in keys)
    lines.append(header)
    for suite, totals in rows.items():
        lines.append(
            f"{suite:14s}" + "".join(f"{totals.get(k, 0):>22d}" for k in keys)
        )
    return "\n".join(lines)
