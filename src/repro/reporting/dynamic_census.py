"""Dynamic dependence census — the run-time half of Table I.

The paper's Table I splits dependencies along a *frequency* axis that only
execution can decide: memory LCDs are "frequent" or "infrequent" by how
often they manifest, and non-computable register LCDs divide into
"predictable" and "unpredictable" by how the value predictors fare on their
actual value streams. This module measures those splits from recorded
profiles.

Thresholds (documented knobs, not magic): a loop's memory LCDs count as
*frequent* when conflicts bind more than ``FREQUENT_RATE`` of its
iterations; a register LCD is *predictable* when the perfect hybrid
predicts at least ``PREDICTABLE_ACCURACY`` of its values.
"""

from __future__ import annotations

from ..core.static_info import PHI_NONCOMPUTABLE, PHI_REDUCTION
from ..predictors.hybrid import perfect_hybrid_flags
from ..runtime.cost_models import pdoall_phase_breaks

FREQUENT_RATE = 0.20
PREDICTABLE_ACCURACY = 0.90


class LoopDynamicCensus:
    """Dynamic classification of one static loop (aggregated invocations)."""

    __slots__ = (
        "loop_id", "invocations", "iterations", "conflicting_iterations",
        "predictable_lcds", "unpredictable_lcds", "reduction_lcds",
    )

    def __init__(self, loop_id):
        self.loop_id = loop_id
        self.invocations = 0
        self.iterations = 0
        self.conflicting_iterations = 0
        self.predictable_lcds = set()
        self.unpredictable_lcds = set()
        self.reduction_lcds = set()

    @property
    def memory_class(self):
        """'frequent' | 'infrequent' | 'none' per the paper's Table I."""
        if self.conflicting_iterations == 0:
            return "none"
        rate = self.conflicting_iterations / max(1, self.iterations)
        return "frequent" if rate > FREQUENT_RATE else "infrequent"

    def __repr__(self):
        return (
            f"<LoopDynamicCensus {self.loop_id} mem={self.memory_class} "
            f"pred={len(self.predictable_lcds)} "
            f"unpred={len(self.unpredictable_lcds)}>"
        )


def dynamic_census_of(lp):
    """Per-loop dynamic census for one profiled program
    (:class:`~repro.core.framework.Loopapalooza` instance)."""
    profile = lp.profile()
    census = {}
    reduction_keys = {
        key
        for static in lp.static_info.loops.values()
        for key in static.phis_of_class(PHI_REDUCTION)
    }
    noncomputable_keys = {
        key
        for static in lp.static_info.loops.values()
        for key in static.phis_of_class(PHI_NONCOMPUTABLE)
    }
    for invocation in profile.all_invocations():
        entry = census.get(invocation.loop_id)
        if entry is None:
            entry = census[invocation.loop_id] = LoopDynamicCensus(
                invocation.loop_id
            )
        entry.invocations += 1
        entry.iterations += invocation.num_iterations
        # Count the *binding* manifestations (restart semantics): a read
        # whose producer already committed does not manifest again.
        entry.conflicting_iterations += len(
            pdoall_phase_breaks(
                invocation.conflict_pairs, invocation.num_iterations
            )
        )
        for phi_key, values in invocation.lcd_values.items():
            if phi_key in reduction_keys:
                entry.reduction_lcds.add(phi_key)
                continue
            if phi_key not in noncomputable_keys or not values:
                continue
            flags = perfect_hybrid_flags(values)
            accuracy = sum(flags) / len(flags)
            if accuracy >= PREDICTABLE_ACCURACY:
                entry.predictable_lcds.add(phi_key)
            else:
                entry.unpredictable_lcds.add(phi_key)
    return census


def suite_dynamic_census(runner, suite):
    """Aggregate Table-I dynamic counts over one suite."""
    from ..bench.suites import suite_programs

    totals = {
        "loops_frequent_mem": 0,
        "loops_infrequent_mem": 0,
        "loops_no_mem_lcd": 0,
        "predictable_reg_lcds": 0,
        "unpredictable_reg_lcds": 0,
    }
    for program in suite_programs(suite):
        census = dynamic_census_of(runner.instance(program))
        for entry in census.values():
            key = {
                "frequent": "loops_frequent_mem",
                "infrequent": "loops_infrequent_mem",
                "none": "loops_no_mem_lcd",
            }[entry.memory_class]
            totals[key] += 1
            totals["predictable_reg_lcds"] += len(entry.predictable_lcds)
            totals["unpredictable_reg_lcds"] += len(entry.unpredictable_lcds)
    return totals


def format_dynamic_census(rows):
    """Render ``{suite: totals}`` as the Table-I dynamic view."""
    keys = [
        "loops_frequent_mem", "loops_infrequent_mem", "loops_no_mem_lcd",
        "predictable_reg_lcds", "unpredictable_reg_lcds",
    ]
    lines = ["Table I (measured, dynamic axis) — frequency/predictability"]
    header = f"{'suite':14s}" + "".join(f"{k:>24s}" for k in keys)
    lines.append(header)
    for suite, totals in rows.items():
        lines.append(
            f"{suite:14s}" + "".join(f"{totals[k]:>24d}" for k in keys)
        )
    return "\n".join(lines)
