"""Statistics helpers for the experiment harness."""

from __future__ import annotations

import math


def geomean(values):
    """Geometric mean. Empty input -> 1.0; values must be positive."""
    values = list(values)
    if not values:
        return 1.0
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def arith_mean(values):
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def speedup_percent(speedup):
    """Express a speedup factor the way Kejariwal et al. do (e.g. 1.18x ->
    18.18 %)."""
    return (speedup - 1.0) * 100.0
