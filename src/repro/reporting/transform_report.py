"""Parallelism unlocked by loop transformation — the before/after figure.

Compiles every program twice (structural-transform pipeline off and on),
joins the static dependence verdicts per *original* loop via the
provenance chain (:func:`~repro.analysis.loop_info.loop_origin_root`), and
reports what fission/peeling/fusion changed:

* the suite-wide verdict tally before and after,
* every original loop whose descendants gained a ``STATIC_DOALL`` proof
  (the "unlocked" set),
* which transform produced each unlocked loop.

This backs ``repro transform`` and the "Transform unlock" section of
``examples/full_paper_run.py``. The transformed modules are re-verified by
the regular crosscheck (``repro crosscheck`` with ``REPRO_TRANSFORM=1``):
a post-transform ``STATIC_DOALL`` that conflicts dynamically lands in
``unsound-static-doall`` exactly like an untransformed one.
"""

from __future__ import annotations

from ..analysis.depend import VERDICT_DOALL, analyze_module
from ..analysis.loop_info import loop_origin_of, loop_origin_root
from ..frontend.codegen import compile_source

VERDICT_RANK = {VERDICT_DOALL: 2, "STATIC_LCD": 1, "UNKNOWN": 0}


class TransformRow:
    """One original loop: its verdict before transforms, and the verdicts
    of every loop descending from it after transforms."""

    __slots__ = ("program", "loop_id", "before", "after", "unlocked")

    def __init__(self, program, loop_id, before, after):
        self.program = program
        self.loop_id = loop_id
        self.before = before          # verdict string (pipeline off)
        #: ``[(descendant_loop_id, verdict, origin_tag), ...]`` pipeline on,
        #: sorted by descendant id.
        self.after = sorted(after)
        self.unlocked = (
            before != VERDICT_DOALL
            and any(verdict == VERDICT_DOALL for _, verdict, _ in self.after)
        )

    @property
    def best_after(self):
        """The strongest verdict any descendant achieved."""
        if not self.after:
            return self.before
        return max(
            (verdict for _, verdict, _ in self.after),
            key=lambda v: VERDICT_RANK.get(v, -1),
        )

    def to_dict(self):
        return {
            "program": self.program,
            "loop_id": self.loop_id,
            "before": self.before,
            "after": [
                {"loop_id": lid, "verdict": verdict, "origin": tag}
                for lid, verdict, tag in self.after
            ],
            "unlocked": self.unlocked,
        }

    def __repr__(self):
        return (f"<TransformRow {self.program}:{self.loop_id} "
                f"{self.before} -> {self.best_after}>")


class TransformReport:
    """All rows of a before/after transform comparison."""

    def __init__(self, rows, transform_log=()):
        self.rows = sorted(rows, key=lambda r: (r.program, r.loop_id))
        #: Concatenated ``module.transform_log`` entries across programs.
        self.transform_log = list(transform_log)

    def counts_before(self):
        return _tally(row.before for row in self.rows)

    def counts_after(self):
        return _tally(row.best_after for row in self.rows)

    @property
    def unlocked(self):
        return [row for row in self.rows if row.unlocked]

    def __repr__(self):
        return (f"<TransformReport {len(self.rows)} loops, "
                f"{len(self.unlocked)} unlocked>")


def _tally(verdicts):
    counts = {VERDICT_DOALL: 0, "STATIC_LCD": 0, "UNKNOWN": 0}
    for verdict in verdicts:
        counts[verdict] = counts.get(verdict, 0) + 1
    return counts


def _module_verdicts(module):
    return {
        loop_id: dep.verdict
        for loop_id, dep in analyze_module(module).items()
    }


def transform_program(source, name):
    """Before/after rows for one program source.

    Compiles the program twice — the only honest way to diff: the
    transform pipeline mutates the module in place.
    """
    plain = compile_source(source, module_name=name, transform=False)
    transformed = compile_source(source, module_name=name, transform=True)
    before = _module_verdicts(plain)
    after = _module_verdicts(transformed)

    descendants = {loop_id: [] for loop_id in before}
    orphans = []
    for loop_id, verdict in after.items():
        root = loop_origin_root(transformed, loop_id)
        tag = loop_origin_of(transformed, loop_id).tag
        if root in descendants:
            descendants[root].append((loop_id, verdict, tag))
        else:
            # A transform product whose root predates the diff (should not
            # happen; kept so a provenance bug is visible, not silent).
            orphans.append((loop_id, verdict, tag))
    rows = [
        TransformRow(name, loop_id, before[loop_id], after_list)
        for loop_id, after_list in descendants.items()
    ]
    for loop_id, verdict, tag in orphans:
        rows.append(TransformRow(name, loop_id, "UNKNOWN",
                                 [(loop_id, verdict, tag)]))
    return rows, list(getattr(transformed, "transform_log", ()))


def transform_suites(suites=None):
    """Before/after report over the bench suites (default: all)."""
    from ..bench.suites import ALL_SUITES, suite_programs

    wanted = list(suites) if suites is not None else list(ALL_SUITES)
    rows = []
    log = []
    for suite in wanted:
        for program in suite_programs(suite):
            program_rows, program_log = transform_program(
                program.source, program.full_name)
            rows.extend(program_rows)
            log.extend(
                dict(entry, program=program.full_name)
                for entry in program_log
            )
    return TransformReport(rows, log)


def format_transform_figure(report, verbose=False):
    """Deterministic text rendering: the unlock figure plus details."""
    lines = []
    before = report.counts_before()
    after = report.counts_after()
    total = len(report.rows)
    lines.append(
        f"parallelism unlocked by transformation — {total} original loops")
    lines.append(f"  {'verdict':14s}{'before':>8s}{'after':>8s}")
    for verdict in (VERDICT_DOALL, "STATIC_LCD", "UNKNOWN"):
        lines.append(f"  {verdict:14s}{before[verdict]:>8d}"
                     f"{after[verdict]:>8d}")
    bar_before = "#" * before[VERDICT_DOALL]
    bar_after = "#" * after[VERDICT_DOALL]
    lines.append(f"  proved DOALL before |{bar_before}")
    lines.append(f"  proved DOALL after  |{bar_after}")
    passes = {}
    for entry in report.transform_log:
        passes[entry.get("pass", "?")] = \
            passes.get(entry.get("pass", "?"), 0) + 1
    if passes:
        applied = ", ".join(f"{name} x{count}"
                            for name, count in sorted(passes.items()))
        lines.append(f"  transforms applied: {applied}")
    else:
        lines.append("  transforms applied: none")
    if report.unlocked:
        lines.append("  unlocked loops:")
        for row in report.unlocked:
            winners = ", ".join(
                f"{lid} [{tag}]" for lid, verdict, tag in row.after
                if verdict == VERDICT_DOALL
            )
            lines.append(f"    {row.program} {row.loop_id}: "
                         f"{row.before} -> DOALL via {winners}")
    else:
        lines.append("  unlocked loops: none")
    if verbose:
        lines.append(f"  {'program':28s}{'loop':30s}{'before':14s}after")
        for row in report.rows:
            after_text = ", ".join(
                f"{lid}={verdict}" for lid, verdict, _ in row.after
            ) or "(removed)"
            lines.append(f"  {row.program:28s}{row.loop_id:30s}"
                         f"{row.before:14s}{after_text}")
    return "\n".join(lines)
