"""Library intrinsics: the "pre-compiled C library" of the study.

The paper classifies library calls for the ``fn`` flags (Table II):

* **pure** — read-only, no side effects (``sqrt``, ``fabs``...): callable in
  parallel loops from ``fn1`` up.
* **thread-safe** — re-entrant, touching memory only through pointer
  arguments (``memcpy``-style helpers): callable from ``fn2`` up. Unlike the
  paper (which cannot instrument pre-compiled libraries) our interpreter
  *does* observe their memory traffic, so conflict tracking through them is
  sound.
* **unsafe** — hidden global state or I/O (``rand``, ``print_*``): loops
  containing them serialize below ``fn3``.

Each intrinsic provides a native implementation plus a cost in abstract IR
instructions, so the sequential-time metric stays meaningful across calls.
"""

from __future__ import annotations

import math

from ..errors import TrapError
from ..ir.types import F64, I32, VOID, PointerType


class IntrinsicInfo:
    """Declaration + semantics of one library intrinsic.

    ``implementation`` receives ``(machine, args)`` — ``machine`` is the
    interpreter (giving access to memory and the I/O / PRNG state) — and
    returns the result value (or ``None`` for void).
    """

    def __init__(
        self,
        name,
        param_types,
        return_type,
        implementation,
        *,
        cost=1,
        reads_memory=False,
        writes_memory=False,
        side_effects=False,
        global_state=False,
    ):
        self.name = name
        self.param_types = tuple(param_types)
        self.return_type = return_type
        self.implementation = implementation
        self.cost = cost
        self.reads_memory = reads_memory
        self.writes_memory = writes_memory
        self.side_effects = side_effects
        self.global_state = global_state

    @property
    def is_pure(self):
        return not (
            self.writes_memory or self.side_effects or self.global_state
        )

    @property
    def is_thread_safe(self):
        """Re-entrant: no hidden state, memory only via pointer arguments."""
        return not (self.side_effects or self.global_state)

    def __repr__(self):
        kind = (
            "pure" if self.is_pure
            else "thread_safe" if self.is_thread_safe
            else "unsafe"
        )
        return f"<Intrinsic {self.name} ({kind})>"


def _guarded(fn, *args):
    try:
        result = fn(*args)
    except (ValueError, OverflowError) as exc:
        raise TrapError(f"math domain error: {exc}") from exc
    return result


def _hash32(x):
    """xorshift-style avalanche hash — pure, deterministic data generator."""
    x &= 0xFFFFFFFF
    x ^= x >> 16
    x = (x * 0x7FEB352D) & 0xFFFFFFFF
    x ^= x >> 15
    x = (x * 0x846CA68B) & 0xFFFFFFFF
    x ^= x >> 16
    return x


def _wrap_i32(value):
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value >= (1 << 31) else value


# -- implementations needing machine access -------------------------------------


def _impl_rand(machine, args):
    state = (machine.prng_state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
    machine.prng_state = state
    return _wrap_i32((state >> 33) & 0x7FFFFFFF)


def _impl_srand(machine, args):
    machine.prng_state = args[0] & 0xFFFFFFFFFFFFFFFF
    return None


def _impl_print_int(machine, args):
    machine.output.append(int(args[0]))
    return None


def _impl_print_float(machine, args):
    machine.output.append(float(args[0]))
    return None


def _impl_getchar(machine, args):
    value = machine.input_cursor
    machine.input_cursor += 1
    return _wrap_i32(_hash32(value) % 256)


def _impl_memset_i32(machine, args):
    base, value, count = int(args[0]), int(args[1]), int(args[2])
    for offset in range(count):
        machine.store_slot(base + offset, value)
    return None


def _impl_memcpy_i32(machine, args):
    dst, src, count = int(args[0]), int(args[1]), int(args[2])
    values = [machine.load_slot(src + offset) for offset in range(count)]
    for offset, value in enumerate(values):
        machine.store_slot(dst + offset, value)
    return None


def _impl_memset_f64(machine, args):
    base, value, count = int(args[0]), float(args[1]), int(args[2])
    for offset in range(count):
        machine.store_slot(base + offset, value)
    return None


def _impl_memcpy_f64(machine, args):
    dst, src, count = int(args[0]), int(args[1]), int(args[2])
    values = [machine.load_slot(src + offset) for offset in range(count)]
    for offset, value in enumerate(values):
        machine.store_slot(dst + offset, value)
    return None


def _registry():
    i32p = PointerType(I32)
    f64p = PointerType(F64)
    table = {}

    def add(info):
        table[info.name] = info

    # Pure math (float).
    add(IntrinsicInfo("sqrt", [F64], F64, lambda m, a: _guarded(math.sqrt, a[0]), cost=4))
    add(IntrinsicInfo("sin", [F64], F64, lambda m, a: math.sin(a[0]), cost=6))
    add(IntrinsicInfo("cos", [F64], F64, lambda m, a: math.cos(a[0]), cost=6))
    add(IntrinsicInfo("exp", [F64], F64, lambda m, a: _guarded(math.exp, min(a[0], 700.0)), cost=6))
    add(IntrinsicInfo("log", [F64], F64,
                      lambda m, a: _guarded(math.log, a[0]) if a[0] > 0 else -745.0, cost=6))
    add(IntrinsicInfo("pow", [F64, F64], F64,
                      lambda m, a: _guarded(pow, a[0], a[1]), cost=8))
    add(IntrinsicInfo("fabs", [F64], F64, lambda m, a: abs(a[0]), cost=1))
    add(IntrinsicInfo("floor", [F64], F64, lambda m, a: float(math.floor(a[0])), cost=1))
    add(IntrinsicInfo("fmin", [F64, F64], F64, lambda m, a: min(a[0], a[1]), cost=1))
    add(IntrinsicInfo("fmax", [F64, F64], F64, lambda m, a: max(a[0], a[1]), cost=1))

    # Pure integer helpers.
    add(IntrinsicInfo("iabs", [I32], I32, lambda m, a: _wrap_i32(abs(a[0])), cost=1))
    add(IntrinsicInfo("imin", [I32, I32], I32, lambda m, a: min(a[0], a[1]), cost=1))
    add(IntrinsicInfo("imax", [I32, I32], I32, lambda m, a: max(a[0], a[1]), cost=1))
    # Deterministic pure data generators (replace rand() in parallel-friendly
    # initialization; see DESIGN.md on workload synthesis).
    add(IntrinsicInfo("hash_i32", [I32], I32,
                      lambda m, a: _wrap_i32(_hash32(a[0])), cost=6))
    add(IntrinsicInfo("noise_f64", [I32], F64,
                      lambda m, a: (_hash32(a[0]) & 0xFFFFFF) / float(0x1000000), cost=8))

    # Unsafe: hidden global state or I/O.
    add(IntrinsicInfo("rand", [], I32, _impl_rand, cost=4,
                      global_state=True))
    add(IntrinsicInfo("srand", [I32], VOID, _impl_srand, cost=1,
                      global_state=True))
    add(IntrinsicInfo("print_int", [I32], VOID, _impl_print_int, cost=10,
                      side_effects=True))
    add(IntrinsicInfo("print_float", [F64], VOID, _impl_print_float, cost=10,
                      side_effects=True))
    add(IntrinsicInfo("getchar", [], I32, _impl_getchar, cost=4,
                      side_effects=True, global_state=True))

    # Thread-safe library helpers (memory through pointer args only).
    add(IntrinsicInfo("memset_i32", [i32p, I32, I32], VOID, _impl_memset_i32,
                      cost=1, writes_memory=True))
    add(IntrinsicInfo("memcpy_i32", [i32p, i32p, I32], VOID, _impl_memcpy_i32,
                      cost=1, reads_memory=True, writes_memory=True))
    add(IntrinsicInfo("memset_f64", [f64p, F64, I32], VOID, _impl_memset_f64,
                      cost=1, writes_memory=True))
    add(IntrinsicInfo("memcpy_f64", [f64p, f64p, I32], VOID, _impl_memcpy_f64,
                      cost=1, reads_memory=True, writes_memory=True))
    return table


INTRINSICS = _registry()


def declare_intrinsics(module):
    """Add every intrinsic declaration to ``module`` (idempotent)."""
    for info in INTRINSICS.values():
        if info.name not in module.functions:
            module.add_function(
                info.name, info.return_type, info.param_types, intrinsic=info
            )
