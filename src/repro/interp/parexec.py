"""Parallel execution tier: DOALL chunks on real workers, TLS speculation.

The ``par`` backend extends the vector tier with out-of-process execution.
For every loop the vector planner proves STATIC_DOALL, the emitter plants a
*parallel section* ahead of the inline vector section: the iteration space
is chunked across a persistent ``ProcessPoolExecutor``, each worker runs a
standalone *chunk kernel* against a ``multiprocessing.shared_memory`` view
of slot memory, and the parent commits the buffered scatter records after
every chunk succeeds. For structurally kernel-shaped loops that are *not*
proved DOALL, a TLS section runs the chunks speculatively with read/write
logging and the lazy-versioning commit protocol of
:mod:`repro.runtime.speculation`.

Chunk kernels are self-contained generated sources parameterized by an
``_inv`` tuple of loop-invariant values (registers, constants, global
bases) that the parent evaluates at loop entry, plus the chunk bounds
``[_lo, _hi)``. The kernel source is embedded as a string literal in the
parent's generated source (so it rides the persistent code cache) and is
content-addressed: workers compile it once per key and memoize.

Safety stacks the same way as the vector tier: kernels verify addresses at
runtime (``_vaddr``/``_vpre``), compute into private buffers, and raise
``_VBail`` before any observable mutation; any bail, worker death, hang, or
pool failure falls back to the inline vector section and, past that, the
scalar loop. Results and profiles are byte-identical for every worker count
because chunks cover disjoint iteration ranges (DOALL) or commit in
iteration order (TLS), and profile events are delivered closed-form by the
parent exactly as the vector tier does.
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing
import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError

from ..analysis.depend import DependenceAnalysis, module_memory_summaries
from ..analysis.loop_info import LoopInfo
from ..analysis.scev import ScalarEvolution
from ..ir.instructions import Br, Call, Load, Store
from ..ir.values import ConstantFloat, ConstantInt
from ..runtime.faults import PAR_FAULT_SENTINEL_ENV, maybe_inject_fault
from ..runtime.speculation import commit_chunks, tls_namespace
from .memory import TypedAddressSpace
from .veccodegen import (
    _MAX_VEC_TRIP,
    BAIL_CFG,
    BAIL_HEADER,
    BAIL_INNER,
    BAIL_IV,
    BAIL_MULTI_LATCH,
    BAIL_NOT_SIMPLIFIED,
    BAIL_TRIP,
    BAIL_TRIP_SIZE,
    BAIL_TRIP_WRAP,
    VecLoopPlan,
    _VBail,
    _VecEmitter,
    _body_chain,
    _c,
    _header_shape,
    _iv_chain_ok,
    _phi_step,
    _scan_ops,
    _trip_exact,
    _trip_runtime,
    emit_trip_prologue,
    vec_available,
    vec_namespace,
)

#: Bump whenever the parallel-section or chunk-kernel template changes;
#: folded into the code-cache tier tag so stale sources are never reused.
PAR_VERSION = 1

#: Exceptions that mean "this chunk bailed; fall back", never "crash".
_BAIL_EXCEPTIONS = (_VBail, OverflowError, ValueError, ZeroDivisionError,
                    TypeError)

WORKERS_ENV = "REPRO_PAR_WORKERS"
MIN_TRIP_ENV = "REPRO_PAR_MIN_TRIP"
TASK_TIMEOUT_ENV = "REPRO_PAR_TASK_TIMEOUT"
RETRIES_ENV = "REPRO_PAR_RETRIES"

DEFAULT_MIN_TRIP = 4096
DEFAULT_TASK_TIMEOUT = 120.0
DEFAULT_RETRIES = 2


def _env_int(name, default):
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


def _env_float(name, default):
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def default_workers():
    """Worker count for the par tier: env override, else host cores."""
    return max(1, _env_int(WORKERS_ENV, os.cpu_count() or 1))


def chunk_bounds(trip, chunks):
    """Split ``[0, trip)`` into at most ``chunks`` contiguous ranges."""
    chunks = max(1, min(chunks, trip))
    step, remainder = divmod(trip, chunks)
    bounds = []
    lo = 0
    for index in range(chunks):
        hi = lo + step + (1 if index < remainder else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


# -- TLS planning --------------------------------------------------------------


class TlsLoopPlan(VecLoopPlan):
    """A kernel-shaped loop runnable under speculation (any verdict)."""

    __slots__ = ("verdict",)


def _plan_tls_loop(loop, cfg, scev, dep):
    """Structural screen for TLS: the vector planner's shape checks minus
    everything specific to reordered vector execution (affine access
    footprints, intra-iteration alias, magnitude bounds, and the DOALL
    verdict itself — per-iteration speculative execution is faithful to
    program order within a chunk, and the commit protocol handles the
    cross-chunk order)."""
    if loop.subloops:
        return None, BAIL_INNER
    preheader = loop.preheader(cfg)
    latch = loop.single_latch()
    if latch is None and loop.latches:
        return None, BAIL_MULTI_LATCH
    if preheader is None or latch is None \
            or not isinstance(preheader.terminator, Br):
        return None, BAIL_NOT_SIMPLIFIED
    header = loop.header
    if latch is header:
        return None, BAIL_HEADER
    shape = _header_shape(loop, cfg)
    if shape is None:
        return None, BAIL_HEADER
    icmp, body_entry, exit_block = shape
    chain = _body_chain(loop, body_entry, latch)
    if chain is None:
        return None, BAIL_CFG
    reason = _scan_ops(chain)
    if reason is not None:
        return None, reason
    trip = scev.trip_count(loop)
    trip_runtime = None
    if trip is not None and not 1 <= trip <= _MAX_VEC_TRIP:
        return None, BAIL_TRIP_SIZE
    if trip is None or not _trip_exact(icmp, header, preheader, scev, loop,
                                       trip):
        had_static = trip is not None
        trip_runtime = _trip_runtime(icmp, header, preheader, scev, loop)
        if trip_runtime is None:
            return None, BAIL_TRIP_WRAP if had_static else BAIL_TRIP
        trip = None
    phis = list(header.phis())
    phi_steps = {}
    for phi in phis:
        step = _phi_step(phi, scev, loop)
        if step is None:
            return None, BAIL_IV
        if not _iv_chain_ok(phi.incoming_for_block(latch), loop, header):
            return None, BAIL_IV
        phi_steps[id(phi)] = step
    header_cost = len(header.instructions)
    iter_cost = header_cost
    for block in chain:
        extras = sum(
            max(0, instruction.callee.intrinsic.cost - 1)
            for instruction in block.instructions
            if isinstance(instruction, Call)
        )
        iter_cost += len(block.instructions) + extras
    tls = TlsLoopPlan(
        loop, preheader, header, latch, exit_block, chain, phis, phi_steps,
        trip, trip_runtime, header_cost, iter_cost, [], icmp,
    )
    tls.verdict = dep.loop_verdict(loop).verdict
    return tls, None


def plan_tls_loops(function, vec_loops):
    """Plan TLS sections for every innermost loop the vector planner did
    *not* claim. Returns ``(kernels, decisions)`` shaped like
    :func:`~repro.interp.veccodegen.plan_vector_loops`."""
    kernels = {}
    decisions = []
    if not vec_available():
        return kernels, decisions
    loop_info = LoopInfo(function)
    loops = [
        loop for loop in loop_info.loops_in_postorder() if not loop.subloops
    ]
    if not loops:
        return kernels, decisions
    scev = ScalarEvolution(function, loop_info)
    dep = DependenceAnalysis(
        function, loop_info=loop_info, scev=scev,
        summaries=module_memory_summaries(function.module),
    )
    for loop in loops:
        preheader = loop.preheader(loop_info.cfg)
        if preheader is not None and id(preheader) in vec_loops:
            continue  # proved DOALL: the parallel DOALL section owns it
        tls_plan, reason = _plan_tls_loop(loop, loop_info.cfg, scev, dep)
        if tls_plan is not None:
            kernels[id(tls_plan.preheader)] = tls_plan
            decisions.append({
                "loop_id": loop.loop_id,
                "status": "tls",
                "reason": None,
                "verdict": tls_plan.verdict,
            })
        else:
            decisions.append({
                "loop_id": loop.loop_id,
                "status": "bailout",
                "reason": reason,
                "verdict": None,
            })
    return kernels, decisions


# -- chunk-kernel emission -----------------------------------------------------


class _ChunkEmitter(_VecEmitter):
    """Kernel-side emitter: same op lowering as the vector section, but
    every out-of-loop operand is captured as an ``_inv`` tuple slot whose
    parent-side expression is recorded in ``self.inv`` (evaluation order =
    slot order). Constants stay inline literals."""

    def __init__(self, emitter, plan):
        super().__init__(emitter, plan)
        self.inv = []         # parent-side expressions, slot order
        self._inv_index = {}  # id(value) -> slot

    def expr(self, value):
        name = self.names.get(id(value))
        if name is not None:
            return name
        if isinstance(value, (ConstantInt, ConstantFloat)):
            return self.em.expr(value)
        slot = self._inv_index.get(id(value))
        if slot is None:
            slot = len(self.inv)
            self._inv_index[id(value)] = slot
            self.inv.append(self.em.expr(value))
        return f"_inv[{slot}]"

    def kernel_phi_lines(self):
        """Header-phi closed forms over the kernel's ``_vi`` (the global
        iteration index: an int64 vector for DOALL chunks, a scalar in the
        TLS per-iteration loop — the dual helpers cover both)."""
        out = []
        plan = self.vec
        for phi in plan.phis:
            step = plan.phi_steps[id(phi)]
            start = self.expr(phi.incoming_for_block(plan.preheader))
            name = self._name(phi)
            if step == 0:
                out.append(f"{name} = {start}")
            elif phi.type.is_pointer:
                out.append(f"{name} = {start} + {_c(step)} * _vi")
            elif step == 1:
                out.append(f"{name} = _vw({start} + _vi)")
            else:
                out.append(f"{name} = _vw({start} + {_c(step)} * _vi)")
        return out

    def inv_tuple(self):
        """Parent-side source for the ``_inv`` argument."""
        if not self.inv:
            return "()"
        return "(" + ", ".join(self.inv) + ",)"


class _DoallKernelEmitter(_ChunkEmitter):
    """Standalone DOALL chunk kernel: gather/compute/verify over iteration
    range ``[_lo, _hi)``, returning buffered scatter records plus the
    iteration-0-normalized base address of every access (for the parent's
    closed-form profile events)."""

    def kernel_body_lines(self):
        out = []
        plan = self.vec
        strides = {id(a.instruction): a for a in plan.accesses}
        store_index = 0
        for block in plan.chain:
            for instruction in block.instructions:
                if isinstance(instruction, Br):
                    continue
                if isinstance(instruction, Store):
                    access = strides[id(instruction)]
                    pointer = self.expr(instruction.pointer)
                    stride = _c(access.stride)
                    out.append(
                        f"_vsb{store_index} = _vpre(_space, {pointer}, "
                        f"{stride}, _vn)"
                    )
                    out.append(
                        f"_pb.append(_vsb{store_index} - {stride} * _lo)"
                    )
                    out.append(
                        f"_sc.append((_vsb{store_index}, {stride}, _vn, "
                        f"{self.expr(instruction.value)}))"
                    )
                    store_index += 1
                    continue
                out.append(self._op_line(instruction, strides))
                if isinstance(instruction, Load):
                    access = strides[id(instruction)]
                    pointer = self.expr(instruction.pointer)
                    out.append(
                        f"_pb.append(_vbase({pointer}) - "
                        f"{_c(access.stride)} * _lo)"
                    )
        return out

    def kernel_source(self):
        lines = [(0, "def _par_chunk(_space, _inv, _lo, _hi):")]
        lines.append((1, "_vn = _hi - _lo"))
        lines.append((1, "with _np.errstate(all='ignore'):"))
        lines.append((2, "_vi = _np.arange(_lo, _hi, dtype=_np.int64)"))
        lines.append((2, "_vgf = []; _vgi = []"))
        lines.append((2, "_pb = []; _sc = []"))
        for text in self.kernel_phi_lines():
            lines.append((2, text))
        for text in self.kernel_body_lines():
            lines.append((2, text))
        lines.append((1, "return (_sc, _pb)"))
        return "\n".join("    " * indent + text for indent, text in lines) \
            + "\n"


class _TlsKernelEmitter(_ChunkEmitter):
    """Standalone TLS chunk kernel: per-iteration scalar execution with a
    read log and a private write buffer (see
    :mod:`repro.runtime.speculation` for the commit protocol)."""

    def kernel_body_lines(self):
        out = []
        plan = self.vec
        for block in plan.chain:
            for instruction in block.instructions:
                if isinstance(instruction, Br):
                    continue
                if isinstance(instruction, Store):
                    out.append(
                        f"_tst(_space, _writes, "
                        f"{self.expr(instruction.pointer)}, "
                        f"{self.expr(instruction.value)})"
                    )
                    continue
                if isinstance(instruction, Load):
                    helper = "_tldf" if instruction.type.is_float else "_tldi"
                    dst = self._name(instruction)
                    out.append(
                        f"{dst} = {helper}(_space, _reads, _writes, _over, "
                        f"{self.expr(instruction.pointer)}, _spec)"
                    )
                    continue
                out.append(self._op_line(instruction, {}))
        return out

    def kernel_source(self):
        lines = [(0, "def _par_chunk(_space, _inv, _lo, _hi, _spec, _over):")]
        lines.append((1, "_reads = set()"))
        lines.append((1, "_writes = {}"))
        lines.append((1, "for _vi in range(_lo, _hi):"))
        for text in self.kernel_phi_lines():
            lines.append((2, text))
        for text in self.kernel_body_lines():
            lines.append((2, text))
        lines.append((1, "return (_reads, _writes)"))
        return "\n".join("    " * indent + text for indent, text in lines) \
            + "\n"


def _kernel_key(prefix, source):
    return prefix + hashlib.sha256(source.encode("utf-8")).hexdigest()[:20]


# -- parallel-section emission (parent side) -----------------------------------


def emit_par_doall_section(emitter, vec_plan):
    """Source lines for one parallel DOALL section. Structure::

        <trip prologue and fuel check (as the vector section)>
        _pr = machine.par.run_doall(key, src, _vn, (invariants...))
        if _pr is not None:   # pool commit: apply scatter records
            ...closed-form epilogue with worker-reported event bases...
        else:                 # pool declined/failed/bailed: inline vector
            ...the unchanged vector section body...

    Falling out of every arm continues into the untouched scalar edge
    code, so the fallback ladder is par -> vec -> scalar."""
    emitter.needs.add("space")
    kernel = _DoallKernelEmitter(emitter, vec_plan)
    source = kernel.kernel_source()  # populates kernel.inv
    key = _kernel_key("d", source)
    loop_id = vec_plan.loop_id
    lines, guard = emit_trip_prologue(emitter, vec_plan)
    lines.append((guard + 1, f"_vt = _cost + _vn * {vec_plan.iter_cost} "
                             f"+ {vec_plan.header_cost}"))
    lines.append((guard + 1, "if _vt <= _fuel:"))
    lines.append((guard + 2, f"_pr = machine.par.run_doall({key!r}, "
                             f"{source!r}, _vn, {kernel.inv_tuple()})"))
    lines.append((guard + 2, "if _pr is not None:"))
    lines.append((guard + 3, "for _pc in _pr[0]:"))
    lines.append((guard + 4, "_vput(_space, _pc[0], _pc[1], _pc[2], _pc[3])"))
    lines.append((guard + 3, f"machine.par_runs[{loop_id!r}] = "
                             f"machine.par_runs.get({loop_id!r}, 0) + 1"))
    section = _VecEmitter(emitter, vec_plan)
    event_bases = [f"_pr[1][{index}]"
                   for index in range(len(vec_plan.accesses))]
    for text in section.epilogue_lines(event_bases=event_bases):
        lines.append((guard + 3, text))
    lines.append((guard + 2, "else:"))
    lines.append((guard + 3, "try:"))
    lines.append((guard + 4, "with _np.errstate(all='ignore'):"))
    lines.append((guard + 5, "_vi = _np.arange(_vn, dtype=_np.int64)"))
    lines.append((guard + 5, "_vgf = []; _vgi = []"))
    for text in section.phi_lines():
        lines.append((guard + 5, text))
    for text in section.body_lines():
        lines.append((guard + 5, text))
    lines.append((guard + 3, "except (_VBail, OverflowError, ValueError, "
                             "ZeroDivisionError, TypeError):"))
    lines.append((guard + 4,
                  f"machine.vec_bailouts[{loop_id!r}] = "
                  f"machine.vec_bailouts.get({loop_id!r}, 0) + 1"))
    lines.append((guard + 3, "else:"))
    for text in section.commit_lines():
        lines.append((guard + 4, text))
    return lines


def emit_tls_section(emitter, tls_plan):
    """Source lines for one TLS section (plain variant only). On commit
    the executor has already applied the overlay to slot memory, so the
    section only materializes the loop's closed-form live-outs and jumps
    to the exit; on abort it falls through to the scalar loop."""
    kernel = _TlsKernelEmitter(emitter, tls_plan)
    source = kernel.kernel_source()
    key = _kernel_key("t", source)
    loop_id = tls_plan.loop_id
    lines, guard = emit_trip_prologue(emitter, tls_plan)
    lines.append((guard + 1, f"_vt = _cost + _vn * {tls_plan.iter_cost} "
                             f"+ {tls_plan.header_cost}"))
    lines.append((guard + 1, "if _vt <= _fuel:"))
    lines.append((guard + 2, f"if machine.par.run_tls({key!r}, {source!r}, "
                             f"_vn, {kernel.inv_tuple()}):"))
    lines.append((guard + 3, f"machine.par_tls_runs[{loop_id!r}] = "
                             f"machine.par_tls_runs.get({loop_id!r}, 0) + 1"))
    section = _VecEmitter(emitter, tls_plan)
    for text in section.epilogue_lines():
        lines.append((guard + 3, text))
    return lines


# -- kernel compilation (parent and workers share this cache) ------------------

_KERNELS = {}  # key -> compiled chunk-kernel callable


def _kernel_namespace():
    namespace = vec_namespace()
    namespace.update(tls_namespace())
    return namespace


def _compile_kernel(key, source):
    kernel = _KERNELS.get(key)
    if kernel is None:
        namespace = _kernel_namespace()
        exec(compile(source, f"<par:{key}>", "exec"), namespace)
        kernel = namespace["_par_chunk"]
        _KERNELS[key] = kernel
    return kernel


# -- worker side ---------------------------------------------------------------

_WORKER_SPACE = None
_WORKER_SPACE_KEY = None
# Whether attach() should drop the resource-tracker registration. Fork
# workers share the parent's tracker process, where unregistering would
# erase the parent's own registration; spawn workers have a private
# tracker that must be told not to unlink the parent's segment.
_ATTACH_UNTRACK = True


def _worker_init(start_method):
    global _ATTACH_UNTRACK
    _ATTACH_UNTRACK = start_method != "fork"


def _worker_run_chunk(task):
    """Process-pool task: one chunk of one loop invocation.

    The shared-memory attachment is cached per (segment, generation); the
    stack pointer and global limit travel with every task because they are
    per-invocation. Kernels are compiled once per content key."""
    maybe_inject_fault(PAR_FAULT_SENTINEL_ENV)
    mode, key, source, handle, stack_pointer, global_limit, inv, lo, hi = task
    global _WORKER_SPACE, _WORKER_SPACE_KEY
    name, capacity, generation = handle
    space_key = (name, generation)
    if _WORKER_SPACE_KEY != space_key:
        if _WORKER_SPACE is not None:
            _WORKER_SPACE.detach()
        _WORKER_SPACE = TypedAddressSpace.attach(
            name, capacity, stack_pointer, global_limit,
            untrack=_ATTACH_UNTRACK,
        )
        _WORKER_SPACE_KEY = space_key
    else:
        _WORKER_SPACE._stack_pointer = stack_pointer
        _WORKER_SPACE._length = stack_pointer
        _WORKER_SPACE.global_limit = global_limit
    kernel = _compile_kernel(key, source)
    try:
        if mode == "doall":
            return ("ok", kernel(_WORKER_SPACE, inv, lo, hi))
        return ("ok", kernel(_WORKER_SPACE, inv, lo, hi, True, None))
    except _BAIL_EXCEPTIONS:
        return ("bail", None)


# -- pool management -----------------------------------------------------------

_POOLS = {}  # worker count -> ProcessPoolExecutor


def _get_pool(workers):
    pool = _POOLS.get(workers)
    if pool is None:
        methods = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in methods else None
        context = multiprocessing.get_context(method)
        pool = ProcessPoolExecutor(
            max_workers=workers, mp_context=context,
            initializer=_worker_init,
            initargs=(method or multiprocessing.get_start_method(),),
        )
        _POOLS[workers] = pool
    return pool


def _discard_pool(workers):
    """Tear down a (possibly broken or hung) pool, killing its workers."""
    pool = _POOLS.pop(workers, None)
    if pool is None:
        return
    try:
        for process in list(getattr(pool, "_processes", {}).values()):
            process.kill()
    except Exception:
        pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass


def shutdown_pools():
    """Shut down every persistent worker pool (atexit + tests)."""
    for workers in list(_POOLS):
        _discard_pool(workers)


atexit.register(shutdown_pools)


# -- the executor --------------------------------------------------------------


class ParExecutor:
    """Per-interpreter facade over the persistent worker pools.

    Owns dispatch policy (minimum trip, chunking, retries, timeouts), the
    serial in-process path (1 worker, or memory that cannot be shared),
    and the telemetry counters surfaced in run manifests."""

    def __init__(self, machine, workers=None):
        self.machine = machine
        self.workers = max(1, int(workers) if workers else default_workers())
        self.min_trip = max(1, _env_int(MIN_TRIP_ENV, DEFAULT_MIN_TRIP))
        self.task_timeout = _env_float(TASK_TIMEOUT_ENV, DEFAULT_TASK_TIMEOUT)
        self.retries = max(0, _env_int(RETRIES_ENV, DEFAULT_RETRIES))
        self.stats = {
            "doall_dispatches": 0,
            "doall_chunks": 0,
            "doall_bails": 0,
            "doall_fallbacks": 0,
            "tls_dispatches": 0,
            "tls_commits": 0,
            "tls_rollbacks": 0,
            "tls_aborts": 0,
            "retries": 0,
            "pool_rebuilds": 0,
            "failures": 0,
        }

    # -- dispatch plumbing -----------------------------------------------------

    def _pool_capable(self):
        space = self.machine.space
        return (
            self.workers > 1
            and getattr(space, "shared", False)
            and getattr(space, "_shm", None) is not None
        )

    def _tasks(self, mode, key, source, inv, bounds):
        space = self.machine.space
        handle = space.export_handle()
        stack_pointer = space._stack_pointer
        global_limit = space.global_limit
        return [
            (mode, key, source, handle, stack_pointer, global_limit, inv,
             lo, hi)
            for lo, hi in bounds
        ]

    def _dispatch(self, tasks):
        """Run tasks on the pool; retry across pool rebuilds on worker
        death (BrokenExecutor) or hang (timeout). Returns the result list
        in task order, or None after exhausting retries."""
        for attempt in range(self.retries + 1):
            if attempt:
                self.stats["retries"] += 1
            pool = _get_pool(self.workers)
            futures = [pool.submit(_worker_run_chunk, task) for task in tasks]
            deadline = time.monotonic() + self.task_timeout
            results = []
            try:
                for future in futures:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise FuturesTimeoutError()
                    results.append(future.result(timeout=remaining))
                return results
            except (BrokenExecutor, FuturesTimeoutError, OSError):
                self.stats["pool_rebuilds"] += 1
                _discard_pool(self.workers)
            except Exception:
                self.stats["failures"] += 1
                return None
        self.stats["failures"] += 1
        return None

    # -- DOALL -----------------------------------------------------------------

    def run_doall(self, key, source, trip, inv):
        """Execute a proved-DOALL loop invocation on the worker tier.

        Returns ``(scatter_records, event_bases)`` on success or None —
        the generated section then falls back to the inline vector body.
        """
        if trip < self.min_trip:
            return None
        self.stats["doall_dispatches"] += 1
        if not self._pool_capable():
            kernel = _compile_kernel(key, source)
            try:
                records, bases = kernel(self.machine.space, inv, 0, trip)
            except _BAIL_EXCEPTIONS:
                self.stats["doall_bails"] += 1
                return None
            self.stats["doall_chunks"] += 1
            return (records, bases)
        bounds = chunk_bounds(trip, self.workers)
        tasks = self._tasks("doall", key, source, inv, bounds)
        results = self._dispatch(tasks)
        if results is None:
            self.stats["doall_fallbacks"] += 1
            return None
        records = []
        bases = None
        for status, payload in results:
            if status != "ok":
                self.stats["doall_bails"] += 1
                return None
            records.extend(payload[0])
            if bases is None:
                bases = payload[1]
        self.stats["doall_chunks"] += len(results)
        return (records, bases)

    # -- TLS -------------------------------------------------------------------

    def run_tls(self, key, source, trip, inv):
        """Speculatively execute a non-DOALL kernel-shaped loop. True
        means every chunk committed (memory updated, possibly after
        rollbacks); False means the speculation aborted with memory
        untouched and the scalar loop must run."""
        if trip < self.min_trip:
            return False
        self.stats["tls_dispatches"] += 1
        space = self.machine.space
        kernel = _compile_kernel(key, source)
        if not self._pool_capable():
            # Serial chunks against the committed overlay: identical
            # memory effect, no conflicts possible, zero rollbacks.
            overlay = {}
            bounds = chunk_bounds(trip, self.workers)
            try:
                for lo, hi in bounds:
                    _, writes = kernel(space, inv, lo, hi, False, overlay)
                    overlay.update(writes)
            except _BAIL_EXCEPTIONS:
                self.stats["tls_aborts"] += 1
                return False
            for addr, value in overlay.items():
                space.store(addr, value)
            self.stats["tls_commits"] += len(bounds)
            return True
        bounds = chunk_bounds(trip, self.workers)
        tasks = self._tasks("tls", key, source, inv, bounds)
        results = self._dispatch(tasks)
        if results is None or any(
            status != "ok" for status, _ in results
        ):
            self.stats["tls_aborts"] += 1
            return False

        def rerun(index, overlay):
            lo, hi = bounds[index]
            _, writes = kernel(space, inv, lo, hi, False, overlay)
            return writes

        try:
            commits, rollbacks = commit_chunks(
                space, [payload for _, payload in results], rerun
            )
        except _BAIL_EXCEPTIONS:
            self.stats["tls_aborts"] += 1
            return False
        self.stats["tls_commits"] += commits
        self.stats["tls_rollbacks"] += rollbacks
        return True
