"""Flat, slot-addressed memory for the IR interpreter.

One address = one scalar slot. Globals occupy the bottom of the address
space; above them grows a bump-allocated stack of frames and allocas.

Every allocation (frame or alloca) is tagged with *birth marks* — a snapshot
of ``{loop-invocation id: iteration index}`` for the tracked loop invocations
active when the allocation happened. The Loopapalooza runtime uses these to
implement the paper's cactus-stack privatization (§II-E): an access to
storage born inside the current iteration of a loop can never be a
loop-carried dependency of that loop.
"""

from __future__ import annotations

from bisect import bisect_right

from ..errors import TrapError


class AddressSpace:
    """Slot memory with allocation provenance tracking."""

    def __init__(self):
        self.slots = []
        self.global_limit = 0
        # Parallel arrays of allocation start addresses and their birth
        # marks, always sorted ascending (bump allocation).
        self._alloc_starts = []
        self._alloc_marks = []
        self._stack_pointer = 0

    # -- initialization --------------------------------------------------------

    def add_global(self, variable):
        """Reserve and initialize storage for a global; returns its base."""
        base = len(self.slots)
        self.slots.extend(variable.flat_initializer())
        self.global_limit = len(self.slots)
        self._stack_pointer = self.global_limit
        return base

    # -- stack ------------------------------------------------------------------

    def frame_base(self):
        return self._stack_pointer

    def allocate(self, size, zero_value, marks):
        """Bump-allocate ``size`` slots tagged with ``marks``; returns base."""
        base = self._stack_pointer
        self._stack_pointer = base + size
        needed = self._stack_pointer - len(self.slots)
        if needed > 0:
            self.slots.extend([zero_value] * needed)
        else:
            for offset in range(size):
                self.slots[base + offset] = zero_value
        self._alloc_starts.append(base)
        self._alloc_marks.append(marks)
        return base

    def release_to(self, base):
        """Pop the stack back to ``base`` (frame exit)."""
        self._stack_pointer = base
        index = bisect_right(self._alloc_starts, base - 1)
        del self._alloc_starts[index:]
        del self._alloc_marks[index:]

    # -- access ------------------------------------------------------------------

    def load(self, address):
        if address < 0 or address >= self._stack_pointer:
            raise TrapError(f"load from invalid address {address}")
        return self.slots[address]

    def store(self, address, value):
        if address < 0 or address >= self._stack_pointer:
            raise TrapError(f"store to invalid address {address}")
        self.slots[address] = value

    def marks_for(self, address):
        """Birth marks of the allocation owning ``address`` (None = global)."""
        if address < self.global_limit:
            return None
        index = bisect_right(self._alloc_starts, address) - 1
        if index < 0:
            return None
        return self._alloc_marks[index]
