"""Flat, slot-addressed memory for the IR interpreter.

One address = one scalar slot. Globals occupy the bottom of the address
space; above them grows a bump-allocated stack of frames and allocas.

Every allocation (frame or alloca) is tagged with *birth marks* — a snapshot
of ``{loop-invocation id: iteration index}`` for the tracked loop invocations
active when the allocation happened. The Loopapalooza runtime uses these to
implement the paper's cactus-stack privatization (§II-E): an access to
storage born inside the current iteration of a loop can never be a
loop-carried dependency of that loop.
"""

from __future__ import annotations

import weakref
from bisect import bisect_right

from ..errors import TrapError

TAG_INT = 0
TAG_FLOAT = 1

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


class AddressSpace:
    """Slot memory with allocation provenance tracking."""

    typed = False

    def __init__(self):
        self.slots = []
        self.global_limit = 0
        # Parallel arrays of allocation start addresses and their birth
        # marks, always sorted ascending (bump allocation).
        self._alloc_starts = []
        self._alloc_marks = []
        self._stack_pointer = 0

    # -- initialization --------------------------------------------------------

    def add_global(self, variable):
        """Reserve and initialize storage for a global; returns its base."""
        base = len(self.slots)
        self.slots.extend(variable.flat_initializer())
        self.global_limit = len(self.slots)
        self._stack_pointer = self.global_limit
        return base

    # -- stack ------------------------------------------------------------------

    def frame_base(self):
        return self._stack_pointer

    def allocate(self, size, zero_value, marks):
        """Bump-allocate ``size`` slots tagged with ``marks``; returns base."""
        base = self._stack_pointer
        self._stack_pointer = base + size
        needed = self._stack_pointer - len(self.slots)
        if needed > 0:
            self.slots.extend([zero_value] * needed)
        else:
            for offset in range(size):
                self.slots[base + offset] = zero_value
        self._alloc_starts.append(base)
        self._alloc_marks.append(marks)
        return base

    def release_to(self, base):
        """Pop the stack back to ``base`` (frame exit)."""
        self._stack_pointer = base
        index = bisect_right(self._alloc_starts, base - 1)
        del self._alloc_starts[index:]
        del self._alloc_marks[index:]

    # -- access ------------------------------------------------------------------

    def load(self, address):
        if address < 0 or address >= self._stack_pointer:
            raise TrapError(f"load from invalid address {address}")
        return self.slots[address]

    def store(self, address, value):
        if address < 0 or address >= self._stack_pointer:
            raise TrapError(f"store to invalid address {address}")
        self.slots[address] = value

    def marks_for(self, address):
        """Birth marks of the allocation owning ``address`` (None = global)."""
        if address < self.global_limit:
            return None
        index = bisect_right(self._alloc_starts, address) - 1
        if index < 0:
            return None
        return self._alloc_marks[index]


class TypedAddressSpace:
    """Slot memory over typed NumPy lanes (int64 / float64 / tag byte).

    Drop-in replacement for :class:`AddressSpace` with identical observable
    semantics, including the stack-reuse quirk: ``allocate`` zeroes only the
    slots beyond the historical high-water mark when growing; slots reused
    below it are zeroed only via the ``needed <= 0`` path.

    With ``shared=True`` the three lanes live inside one
    ``multiprocessing.shared_memory`` segment so worker processes can attach
    read-only views. Growth reallocates a fresh segment (capacity doubles)
    and bumps ``generation`` so workers know to re-attach.
    """

    typed = True

    INITIAL_CAPACITY = 1 << 12

    def __init__(self, shared=False, capacity=None):
        import numpy as np

        self._np = np
        self.shared = bool(shared)
        self.generation = 0
        self._shm = None
        self._finalizer = None
        self._length = 0  # mirrors len(slots) of the list-backed store
        self.global_limit = 0
        self._alloc_starts = []
        self._alloc_marks = []
        self._stack_pointer = 0
        self._allocate_backing(int(capacity or self.INITIAL_CAPACITY))

    # -- backing storage ---------------------------------------------------------

    def _allocate_backing(self, capacity):
        np = self._np
        if self.shared:
            from multiprocessing import shared_memory

            tag_pad = (capacity + 7) & ~7
            nbytes = tag_pad + 16 * capacity
            shm = shared_memory.SharedMemory(create=True, size=nbytes)
            tag = np.frombuffer(shm.buf, dtype=np.uint8, count=capacity, offset=0)
            ival = np.frombuffer(shm.buf, dtype=np.int64, count=capacity, offset=tag_pad)
            fval = np.frombuffer(
                shm.buf, dtype=np.float64, count=capacity, offset=tag_pad + 8 * capacity
            )
            tag[:] = TAG_INT
            ival[:] = 0
            fval[:] = 0.0
            self._shm = shm
            # The finalizer owns the lane views too: they must be dropped
            # before the mmap can close (else "exported pointers exist").
            self._views = [tag, ival, fval]
            self._finalizer = weakref.finalize(
                self, _release_segment, shm, self._views
            )
        else:
            tag = np.zeros(capacity, dtype=np.uint8)
            ival = np.zeros(capacity, dtype=np.int64)
            fval = np.zeros(capacity, dtype=np.float64)
        self._capacity = capacity
        self._tag = tag
        self._ival = ival
        self._fval = fval

    def _ensure(self, needed):
        if needed <= self._capacity:
            return
        capacity = self._capacity
        while capacity < needed:
            capacity *= 2
        old_tag, old_ival, old_fval = self._tag, self._ival, self._fval
        old_shm, old_fin = self._shm, self._finalizer
        old_views = getattr(self, "_views", None)
        length = self._length
        self._allocate_backing(capacity)
        self._tag[:length] = old_tag[:length]
        self._ival[:length] = old_ival[:length]
        self._fval[:length] = old_fval[:length]
        if old_shm is not None:
            del old_tag, old_ival, old_fval  # drop views before unmapping
            if old_fin is not None:
                old_fin.detach()
            _release_segment(old_shm, old_views)
            self.generation += 1

    def __del__(self):
        # Deterministic ordering: drop the lane views while the object is
        # still intact, THEN close the segment — weakref.finalize alone
        # cannot order view teardown before SharedMemory.__del__.
        try:
            if not self.shared or self._shm is None:
                return
            if self.generation is None:
                self.detach()  # non-owning worker-side view
            else:
                self.close()
        except Exception:
            pass

    def close(self):
        """Release the shared segment (no-op for process-private storage)."""
        if self._shm is not None:
            self._tag = self._ival = self._fval = None
            if self._finalizer is not None:
                self._finalizer.detach()
                self._finalizer = None
            _release_segment(self._shm, getattr(self, "_views", None))
            self._shm = None

    def export_handle(self):
        """(segment name, capacity, generation) for worker attachment."""
        if self._shm is None:
            raise RuntimeError("export_handle requires shared=True")
        return (self._shm.name, self._capacity, self.generation)

    @classmethod
    def attach(cls, name, capacity, stack_pointer, global_limit, untrack=True):
        """Attach a worker-side view of a shared segment.

        The returned space supports loads/gathers and bounds checks but not
        allocation; chunk kernels never allocate. The caller owns closing it.

        ``untrack`` drops the attach-time resource-tracker registration
        (CPython < 3.13 registers on *attach* too, and a worker's private
        tracker would unlink the parent's segment at worker exit). Pass
        ``False`` for fork-context workers: they share the parent's tracker
        process, and unregistering there would erase the parent's own
        registration.
        """
        import numpy as np
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name, create=False)
        if untrack:  # the parent owns the segment; must not unlink it here
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
        space = cls.__new__(cls)
        space._np = np
        space.shared = True
        space.generation = None
        space._shm = shm
        space._finalizer = None
        tag_pad = (capacity + 7) & ~7
        space._capacity = capacity
        space._tag = np.frombuffer(shm.buf, dtype=np.uint8, count=capacity, offset=0)
        space._ival = np.frombuffer(shm.buf, dtype=np.int64, count=capacity, offset=tag_pad)
        space._fval = np.frombuffer(
            shm.buf, dtype=np.float64, count=capacity, offset=tag_pad + 8 * capacity
        )
        space._length = stack_pointer
        space.global_limit = global_limit
        space._alloc_starts = []
        space._alloc_marks = []
        space._stack_pointer = stack_pointer
        space._views = [space._tag, space._ival, space._fval]
        space._finalizer = weakref.finalize(
            space, _close_view, shm, space._views
        )
        return space

    def detach(self):
        """Close a worker-side view without unlinking the segment."""
        self._tag = self._ival = self._fval = None
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self._shm is not None:
            _close_view(self._shm, getattr(self, "_views", None))
            self._shm = None

    # -- initialization ----------------------------------------------------------

    def add_global(self, variable):
        base = self._length
        values = variable.flat_initializer()
        self._ensure(base + len(values))
        for offset, value in enumerate(values):
            self._write(base + offset, value)
        self._length = base + len(values)
        self.global_limit = self._length
        self._stack_pointer = self._length
        return base

    # -- stack -------------------------------------------------------------------

    def frame_base(self):
        return self._stack_pointer

    def allocate(self, size, zero_value, marks):
        base = self._stack_pointer
        self._stack_pointer = base + size
        needed = self._stack_pointer - self._length
        if needed > 0:
            self._ensure(self._stack_pointer)
            self._fill(self._length, self._stack_pointer, zero_value)
            self._length = self._stack_pointer
        else:
            self._fill(base, base + size, zero_value)
        self._alloc_starts.append(base)
        self._alloc_marks.append(marks)
        return base

    def release_to(self, base):
        self._stack_pointer = base
        index = bisect_right(self._alloc_starts, base - 1)
        del self._alloc_starts[index:]
        del self._alloc_marks[index:]

    # -- access ------------------------------------------------------------------

    def _write(self, address, value):
        if isinstance(value, float):
            self._tag[address] = TAG_FLOAT
            self._fval[address] = value
        else:
            value = int(value)
            if value < _INT64_MIN or value > _INT64_MAX:
                raise TrapError(f"integer slot value out of int64 range: {value}")
            self._tag[address] = TAG_INT
            self._ival[address] = value

    def _fill(self, start, stop, zero_value):
        if isinstance(zero_value, float):
            self._tag[start:stop] = TAG_FLOAT
            self._fval[start:stop] = zero_value
        else:
            self._tag[start:stop] = TAG_INT
            self._ival[start:stop] = zero_value

    def load(self, address):
        if address < 0 or address >= self._stack_pointer:
            raise TrapError(f"load from invalid address {address}")
        if self._tag[address] == TAG_FLOAT:
            return float(self._fval[address])
        return int(self._ival[address])

    def store(self, address, value):
        if address < 0 or address >= self._stack_pointer:
            raise TrapError(f"store to invalid address {address}")
        self._write(address, value)

    def marks_for(self, address):
        if address < self.global_limit:
            return None
        index = bisect_right(self._alloc_starts, address) - 1
        if index < 0:
            return None
        return self._alloc_marks[index]


def _close_segment(shm):
    """Close ``shm``, tolerating still-live lane views: if the space sat in
    a reference cycle its ``__del__`` never ran, and only the finalizer
    fires — with the lane arrays still reachable the mmap cannot close, so
    disarm ``SharedMemory.__del__`` instead and let refcounting reclaim the
    mapping (the segment itself is already unlinked by then)."""
    try:
        shm.close()
    except BufferError:
        shm._buf = None
        shm._mmap = None
    except Exception:
        pass


def _close_view(shm, views=None):
    """Close a non-owning attachment (never unlinks the segment)."""
    if views is not None:
        views.clear()
    _close_segment(shm)


def _release_segment(shm, views=None):
    if views is not None:
        views.clear()  # drop lane arrays so the mmap has no exported pointers
    _close_segment(shm)
    try:
        shm.unlink()
    except Exception:
        pass


def make_space(typed=False, shared=False):
    """Construct the slot store: list-backed by default, typed on request."""
    if typed or shared:
        return TypedAddressSpace(shared=shared)
    return AddressSpace()
